//! Offline shim for `serde_json`: renders and parses the serde shim's
//! [`Value`] tree as JSON text. Covers `to_string`, `to_string_pretty`,
//! `from_str`, `to_value`, the [`json!`] macro, and the [`Value`] alias.

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// Error from JSON parsing or value reshaping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Renders any serializable value into its [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    serde::__private::to_value(value)
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&to_value(value), &mut out, None, 0);
    Ok(out)
}

/// Serializes to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&to_value(value), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<'a, T: Deserialize<'a>>(text: &'a str) -> Result<T, Error> {
    let value = Parser { bytes: text.as_bytes(), pos: 0 }.parse_document()?;
    T::deserialize(value).map_err(Into::into)
}

/// Builds a [`Value`] from an object/array literal whose values are
/// arbitrary serializable expressions (the subset of serde_json's `json!`
/// this workspace uses).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($element:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $( $crate::to_value(&$element) ),* ])
    };
    ({ $($key:tt : $value:expr),* $(,)? }) => {
        $crate::Value::Map(vec![ $( ($key.to_string(), $crate::to_value(&$value)) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) if x.is_finite() => out.push_str(&format!("{x:?}")),
        Value::F64(_) => out.push_str("null"),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            write_break(out, indent, level);
            out.push(']');
        }
        Value::Map(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_break(out, indent, level + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            write_break(out, indent, level);
            out.push('}');
        }
    }
}

fn write_break(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * level));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn parse_document(mut self) -> Result<Value, Error> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(value)
    }

    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'n') if self.eat_word("null") => Ok(Value::Null),
            Some(b't') if self.eat_word("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Seq(items));
            }
            self.expect(b',')?;
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Map(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Map(fields));
            }
            self.expect(b',')?;
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Copy the longest run without escapes or terminators.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: uncommon in this workspace's
                            // data; combine when a low surrogate follows.
                            let code = if (0xD800..0xDC00).contains(&hex)
                                && self.bytes.get(self.pos) == Some(&b'\\')
                                && self.bytes.get(self.pos + 1) == Some(&b'u')
                            {
                                let low = self
                                    .bytes
                                    .get(self.pos + 2..self.pos + 6)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or_else(|| self.err("bad \\u escape"))?;
                                self.pos += 6;
                                0x10000 + ((hex - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                hex
                            };
                            s.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad codepoint"))?,
                            );
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.eat(b'-') {}
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.eat(b'.') {
            is_float = true;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8"))?;
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(|_| self.err("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::I64).map_err(|_| self.err("bad number"))
        } else {
            match text.parse::<u64>() {
                Ok(n) => Ok(Value::U64(n)),
                Err(_) => text.parse::<f64>().map(Value::F64).map_err(|_| self.err("bad number")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn compact_round_trip() {
        let orig: BTreeMap<String, Vec<i64>> =
            [("a\nb".to_string(), vec![-1, 2, 3])].into_iter().collect();
        let text = to_string(&orig).unwrap();
        assert_eq!(text, "{\"a\\nb\":[-1,2,3]}");
        let back: BTreeMap<String, Vec<i64>> = from_str(&text).unwrap();
        assert_eq!(back, orig);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = json!({"k": [1], "s": "x"});
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"k\": [\n    1\n  ],\n  \"s\": \"x\"\n}");
    }

    #[test]
    fn parses_numbers_strings_and_nesting() {
        let v: Value = from_str(r#"{"a": 1.5, "b": [true, null, "A"], "c": -7}"#).unwrap();
        assert_eq!(
            v,
            Value::Map(vec![
                ("a".into(), Value::F64(1.5)),
                (
                    "b".into(),
                    Value::Seq(vec![Value::Bool(true), Value::Null, Value::Str("A".into())])
                ),
                ("c".into(), Value::I64(-7)),
            ])
        );
    }

    #[test]
    fn json_macro_accepts_exprs() {
        let rows = vec![vec!["x".to_string()]];
        let v = json!({"title": format!("t{}", 1), "rows": rows});
        assert_eq!(to_string(&v).unwrap(), "{\"title\":\"t1\",\"rows\":[[\"x\"]]}");
    }

    #[test]
    fn floats_round_trip() {
        let text = to_string(&vec![0.3f64, 2.0]).unwrap();
        assert_eq!(text, "[0.3,2.0]");
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, vec![0.3, 2.0]);
    }
}
