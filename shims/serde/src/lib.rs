//! Offline shim for `serde`: the trait names this workspace uses, backed by
//! an owned [`Value`] tree instead of serde's visitor machinery.
//!
//! A [`Serializer`] here is anything that can accept a finished [`Value`];
//! a [`Deserializer`] is anything that can hand one over. The shimmed
//! `serde_derive` macros generate code against these traits, and the
//! shimmed `serde_json` renders/parses the `Value` tree as JSON text.
//! Manual `impl Serialize`/`impl Deserialize` blocks written against real
//! serde (via `serialize_str`, `String::deserialize`, `collect_seq`)
//! compile unchanged.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data tree every (de)serialization passes through.
/// Mirrors the JSON data model; maps preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

/// Uninhabited error for infallible serializers.
#[derive(Debug)]
pub enum Never {}

impl fmt::Display for Never {
    fn fmt(&self, _f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {}
    }
}

impl std::error::Error for Never {}

/// Deserialization error: a message describing the shape mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

pub mod ser {
    use super::{Serialize, Value};

    /// Accepts a finished [`Value`]. Default methods cover the entry
    /// points manual impls in this workspace use.
    pub trait Serializer: Sized {
        type Ok;
        type Error: std::fmt::Display;

        /// The single required method: consume a complete value tree.
        fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

        fn serialize_str(self, s: &str) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::Str(s.to_owned()))
        }

        fn collect_seq<I>(self, iter: I) -> Result<Self::Ok, Self::Error>
        where
            I: IntoIterator,
            I::Item: Serialize,
        {
            let seq = iter.into_iter().map(|item| super::__private::to_value(&item)).collect();
            self.serialize_value(Value::Seq(seq))
        }
    }
}

pub mod de {
    use super::Value;

    /// Errors constructible from a message, as in serde's `de::Error`.
    /// The `From<DeError>` bound lets derive-generated code run nested
    /// deserializations (whose error is the concrete [`super::DeError`])
    /// inside a function generic over the deserializer.
    pub trait Error: Sized + std::fmt::Display + From<super::DeError> {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    impl Error for super::DeError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            super::DeError(msg.to_string())
        }
    }

    /// Hands over a complete value tree. The `'de` lifetime exists only so
    /// impls written against real serde keep their signatures.
    pub trait Deserializer<'de>: Sized {
        type Error: Error;

        fn take_value(self) -> Result<Value, Self::Error>;
    }

    impl<'de> Deserializer<'de> for Value {
        type Error = super::DeError;

        fn take_value(self) -> Result<Value, Self::Error> {
            Ok(self)
        }
    }

    impl<'de> Deserializer<'de> for &Value {
        type Error = super::DeError;

        fn take_value(self) -> Result<Value, Self::Error> {
            Ok(self.clone())
        }
    }
}

pub use de::Deserializer;
pub use ser::Serializer;

/// A type that can render itself into a [`Value`] via any [`Serializer`].
pub trait Serialize {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error>;
}

/// A type reconstructible from a [`Value`] via any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error>;
}

/// Support code for the derive macros and sibling shims. Not a stable API.
pub mod __private {
    use super::de::Error as DeErrorTrait;
    use super::{Never, Serialize, Serializer, Value};

    /// The infallible serializer: returns the value tree itself.
    pub struct ValueSerializer;

    impl Serializer for ValueSerializer {
        type Ok = Value;
        type Error = Never;

        fn serialize_value(self, value: Value) -> Result<Value, Never> {
            Ok(value)
        }
    }

    /// Renders any serializable value into its tree (infallible).
    pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
        ok(value.serialize(ValueSerializer))
    }

    /// Unwraps an infallible serialization result.
    pub fn ok(result: Result<Value, Never>) -> Value {
        match result {
            Ok(v) => v,
            Err(never) => match never {},
        }
    }

    /// Extracts the key/value pairs of a map-shaped value.
    pub fn take_map<'de, D: super::Deserializer<'de>>(
        de: D,
    ) -> Result<Vec<(String, Value)>, D::Error> {
        match de.take_value()? {
            Value::Map(fields) => Ok(fields),
            other => Err(D::Error::custom(format!("expected map, got {other:?}"))),
        }
    }

    /// Removes a required field from a decoded map.
    pub fn take_field<E: DeErrorTrait>(
        fields: &mut Vec<(String, Value)>,
        name: &str,
    ) -> Result<Value, E> {
        take_field_opt(fields, name)
            .ok_or_else(|| E::custom(format!("missing field `{name}`")))
    }

    /// Removes an optional field from a decoded map.
    pub fn take_field_opt(fields: &mut Vec<(String, Value)>, name: &str) -> Option<Value> {
        let idx = fields.iter().position(|(k, _)| k == name)?;
        Some(fields.remove(idx).1)
    }

    /// Decodes an externally tagged enum: either `"Variant"` or
    /// `{"Variant": payload}`. Returns the variant name and its payload.
    pub fn take_variant<'de, D: super::Deserializer<'de>>(
        de: D,
    ) -> Result<(String, Option<Value>), D::Error> {
        match de.take_value()? {
            Value::Str(name) => Ok((name, None)),
            Value::Map(mut fields) if fields.len() == 1 => {
                let (name, payload) = fields.pop().expect("len checked");
                Ok((name, Some(payload)))
            }
            other => Err(D::Error::custom(format!("expected enum, got {other:?}"))),
        }
    }

    /// Extracts a fixed-arity sequence (tuple payloads).
    pub fn take_seq<E: DeErrorTrait>(value: Value, len: usize) -> Result<Vec<Value>, E> {
        match value {
            Value::Seq(items) if items.len() == len => Ok(items),
            Value::Seq(items) => {
                Err(E::custom(format!("expected {len} elements, got {}", items.len())))
            }
            other => Err(E::custom(format!("expected sequence, got {other:?}"))),
        }
    }

    /// Stringifies a map key the way serde_json does (strings verbatim,
    /// integers and bools via Display).
    pub fn key_string(value: Value) -> String {
        match value {
            Value::Str(s) => s,
            Value::U64(n) => n.to_string(),
            Value::I64(n) => n.to_string(),
            Value::Bool(b) => b.to_string(),
            other => panic!("map key must be a string-like value, got {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! serialize_via {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
                ser.serialize_value(Value::$variant(*self as $conv))
            }
        }
    )*};
}

serialize_via!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    isize => I64 as i64,
    f32 => F64 as f64, f64 => F64 as f64,
);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_value(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(ser)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(ser)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(ser),
            None => ser.serialize_value(Value::Null),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.collect_seq(self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.collect_seq(self.iter())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        let pair = vec![__private::to_value(&self.0), __private::to_value(&self.1)];
        ser.serialize_value(Value::Seq(pair))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        let triple = vec![
            __private::to_value(&self.0),
            __private::to_value(&self.1),
            __private::to_value(&self.2),
        ];
        ser.serialize_value(Value::Seq(triple))
    }
}

fn serialize_map_pairs<'a, K, V, S, I>(iter: I, ser: S) -> Result<S::Ok, S::Error>
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    S: Serializer,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let fields = iter
        .map(|(k, v)| (__private::key_string(__private::to_value(k)), __private::to_value(v)))
        .collect();
    ser.serialize_value(Value::Map(fields))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        serialize_map_pairs(self.iter(), ser)
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        serialize_map_pairs(self.iter(), ser)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------------

use de::Error as _;

macro_rules! deserialize_int {
    ($($t:ty),* $(,)?) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
                match de.take_value()? {
                    Value::U64(n) => <$t>::try_from(n)
                        .map_err(|_| D::Error::custom(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(n)
                        .map_err(|_| D::Error::custom(format!("{n} out of range"))),
                    // Map keys arrive stringified; accept parseable strings.
                    Value::Str(s) => s
                        .parse::<$t>()
                        .map_err(|_| D::Error::custom(format!("`{s}` is not an integer"))),
                    other => Err(D::Error::custom(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}

deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        match de.take_value()? {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            other => Err(D::Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        f64::deserialize(de).map(|x| x as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        match de.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        match de.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(D::Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        let s = String::deserialize(de)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(D::Error::custom(format!("expected single char, got `{s}`"))),
        }
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        de.take_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        T::deserialize(de).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        match de.take_value()? {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some).map_err(Into::into),
        }
    }
}

fn take_seq_items<'de, D: Deserializer<'de>>(de: D) -> Result<Vec<Value>, D::Error> {
    match de.take_value()? {
        Value::Seq(items) => Ok(items),
        other => Err(D::Error::custom(format!("expected sequence, got {other:?}"))),
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        take_seq_items(de)?
            .into_iter()
            .map(|item| T::deserialize(item).map_err(Into::into))
            .collect()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(de)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| D::Error::custom(format!("expected {N} elements, got {got}")))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(de).map(Into::into)
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        take_seq_items(de)?
            .into_iter()
            .map(|item| T::deserialize(item).map_err(Into::into))
            .collect()
    }
}

impl<'de, T: Deserialize<'de> + Eq + Hash> Deserialize<'de> for HashSet<T> {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        take_seq_items(de)?
            .into_iter()
            .map(|item| T::deserialize(item).map_err(Into::into))
            .collect()
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        let mut items = __private::take_seq::<D::Error>(de.take_value()?, 2)?.into_iter();
        let a = A::deserialize(items.next().expect("len checked"))?;
        let b = B::deserialize(items.next().expect("len checked"))?;
        Ok((a, b))
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        let mut items = __private::take_seq::<D::Error>(de.take_value()?, 3)?.into_iter();
        let a = A::deserialize(items.next().expect("len checked"))?;
        let b = B::deserialize(items.next().expect("len checked"))?;
        let c = C::deserialize(items.next().expect("len checked"))?;
        Ok((a, b, c))
    }
}

fn deserialize_map_pairs<'de, K, V, D>(de: D) -> Result<Vec<(K, V)>, D::Error>
where
    K: Deserialize<'de>,
    V: Deserialize<'de>,
    D: Deserializer<'de>,
{
    match de.take_value()? {
        Value::Map(fields) => fields
            .into_iter()
            .map(|(k, v)| {
                let key = K::deserialize(Value::Str(k))?;
                let value = V::deserialize(v)?;
                Ok((key, value))
            })
            .collect::<Result<_, DeError>>()
            .map_err(Into::into),
        other => Err(D::Error::custom(format!("expected map, got {other:?}"))),
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        Ok(deserialize_map_pairs(de)?.into_iter().collect())
    }
}

impl<'de, K: Deserialize<'de> + Eq + Hash, V: Deserialize<'de>> Deserialize<'de>
    for HashMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        Ok(deserialize_map_pairs(de)?.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::__private::to_value;
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(to_value(&7u64)).unwrap(), 7);
        assert_eq!(String::deserialize(to_value(&"hi".to_string())).unwrap(), "hi");
        assert_eq!(Option::<u8>::deserialize(Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::deserialize(to_value(&3u8)).unwrap(), Some(3));
    }

    #[test]
    fn maps_stringify_integer_keys() {
        let mut m = HashMap::new();
        m.insert(5u64, "x".to_string());
        let v = to_value(&m);
        assert_eq!(v, Value::Map(vec![("5".into(), Value::Str("x".into()))]));
        let back: HashMap<u64, String> = Deserialize::deserialize(v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn nested_containers_round_trip() {
        let orig: BTreeMap<String, Vec<(u32, bool)>> =
            [("k".to_string(), vec![(1, true), (2, false)])].into_iter().collect();
        let back: BTreeMap<String, Vec<(u32, bool)>> =
            Deserialize::deserialize(to_value(&orig)).unwrap();
        assert_eq!(back, orig);
    }
}
