//! Offline shim for `rand`: a deterministic SplitMix64 generator behind the
//! `rand 0.8` trait names this workspace uses (`Rng::gen`, `Rng::gen_range`
//! over integer ranges, `SeedableRng::seed_from_u64`, `rngs::StdRng`).
//!
//! The streams differ from upstream `rand`, but every consumer in this
//! workspace only requires *seed determinism* (same seed → same stream),
//! which this shim guarantees.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `u64` entry point is needed here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a (half-open or inclusive) integer range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples a value of `T` from its standard distribution
    /// (`f64` in `[0,1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable via [`Rng::gen`].
pub trait Standard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free bounded sampling via 128-bit multiply (Lemire's method).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64). Stands in for rand's `StdRng`;
    /// the stream differs from upstream but is stable across runs.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..7);
            assert!((3..7).contains(&v));
            let w: usize = r.gen_range(0..=4);
            assert!(w <= 4);
            let x: i64 = r.gen_range(-5..5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        let mut acc = 0.0;
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            acc += v;
        }
        // Mean of 1000 uniform draws should be near 0.5.
        assert!((acc / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn works_through_unsized_rng() {
        fn via_dynlike<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(3);
        let v = via_dynlike(&mut r);
        assert!((0.0..1.0).contains(&v));
    }
}
