//! Offline shim for `proptest`: deterministic random testing behind the
//! proptest API surface this workspace uses. No shrinking — a failing case
//! reports its generated inputs and reproduction seed instead.
//!
//! Supported: `proptest!` (with `#![proptest_config]`), `prop_assert*!`,
//! `prop_assume!`, `prop_oneof!`, `Just`, `any::<T>()`, integer-range
//! strategies, regex-subset string strategies, `prop::collection::vec`,
//! tuple strategies, `prop_map`/`prop_flat_map`/`prop_filter`,
//! `boxed`/`BoxedStrategy`, and `prop_recursive`.

use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::rc::Rc;

/// Deterministic RNG handed to strategies.
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { inner: rand::rngs::StdRng::seed_from_u64(seed) }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// Input rejected by `prop_assume!`; the case is re-drawn.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Drives one property over `config.cases` deterministic cases. The
/// callback returns `Err(Reject)` to re-draw and `Err(Fail)` to stop.
pub fn run_proptest(
    config: &test_runner::Config,
    name: &str,
    mut case_fn: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let base = fnv1a(name);
    let mut passed = 0u32;
    let mut draws = 0u64;
    let max_draws = config.cases as u64 * 16 + 1024;
    while passed < config.cases {
        let seed = base ^ draws.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        draws += 1;
        if draws > max_draws {
            panic!("proptest {name}: too many rejected cases ({passed}/{} passed)", config.cases);
        }
        let mut rng = TestRng::from_seed(seed);
        match case_fn(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {name} failed after {passed} passing cases (seed {seed:#x}):\n{msg}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, pred }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Depth-bounded recursion: each level is an even split between the
    /// leaf strategy and one application of `recurse` to the level below.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            level = Union::new_weighted(vec![
                (1, leaf.clone()),
                (2, recurse(level).boxed()),
            ])
            .boxed();
        }
        level
    }
}

/// Clone-able type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 consecutive values", self.reason);
    }
}

/// Weighted choice between strategies of one value type.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T: fmt::Debug> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Union { arms: arms.into_iter().map(|s| (1, s)).collect() }
    }

    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
        let mut pick = rng.gen_range(0..total);
        for (weight, strat) in &self.arms {
            if pick < *weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick within total")
    }
}

// Integer ranges are strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuples of strategies are strategies over tuples.
macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

// String literals are regex-subset strategies.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_from_regex(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_from_regex(self, rng)
    }
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-range strategy used by [`any`].
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for ArbitraryStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = ArbitraryStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                ArbitraryStrategy(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for ArbitraryStrategy<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for bool {
    type Strategy = ArbitraryStrategy<bool>;

    fn arbitrary() -> Self::Strategy {
        ArbitraryStrategy(std::marker::PhantomData)
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{fmt, Strategy, TestRng};
    use rand::Rng;

    /// Inclusive element-count bounds, built from `usize`, `a..b`, `a..=b`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Regex-subset string generation
// ---------------------------------------------------------------------------

pub mod string {
    use super::TestRng;
    use rand::Rng;

    /// Sorted, disjoint inclusive codepoint ranges.
    #[derive(Debug, Clone, PartialEq)]
    struct ClassSet(Vec<(u32, u32)>);

    impl ClassSet {
        fn single(c: char) -> Self {
            ClassSet(vec![(c as u32, c as u32)])
        }

        fn range(lo: char, hi: char) -> Self {
            assert!(lo <= hi, "inverted class range {lo:?}-{hi:?}");
            ClassSet(vec![(lo as u32, hi as u32)])
        }

        fn normalize(mut self) -> Self {
            self.0.sort_unstable();
            let mut merged: Vec<(u32, u32)> = Vec::new();
            for (lo, hi) in self.0 {
                match merged.last_mut() {
                    Some((_, prev_hi)) if lo <= *prev_hi + 1 => *prev_hi = (*prev_hi).max(hi),
                    _ => merged.push((lo, hi)),
                }
            }
            ClassSet(merged)
        }

        fn union(mut self, other: ClassSet) -> Self {
            self.0.extend(other.0);
            self.normalize()
        }

        fn complement(&self) -> Self {
            // Unicode scalar values minus the surrogate gap.
            let mut out = Vec::new();
            let mut next = 0u32;
            for &(lo, hi) in &self.0 {
                if lo > next {
                    out.push((next, lo - 1));
                }
                next = hi.saturating_add(1);
            }
            if next <= 0x10FFFF {
                out.push((next, 0x10FFFF));
            }
            let set = ClassSet(out);
            set.intersect(&ClassSet(vec![(0, 0xD7FF), (0xE000, 0x10FFFF)]))
        }

        fn intersect(&self, other: &ClassSet) -> Self {
            let mut out = Vec::new();
            let (mut i, mut j) = (0, 0);
            while i < self.0.len() && j < other.0.len() {
                let (alo, ahi) = self.0[i];
                let (blo, bhi) = other.0[j];
                let lo = alo.max(blo);
                let hi = ahi.min(bhi);
                if lo <= hi {
                    out.push((lo, hi));
                }
                if ahi < bhi {
                    i += 1;
                } else {
                    j += 1;
                }
            }
            ClassSet(out)
        }

        fn len(&self) -> u64 {
            self.0.iter().map(|(lo, hi)| (*hi - *lo + 1) as u64).sum()
        }

        fn sample(&self, rng: &mut TestRng) -> char {
            let total = self.len();
            assert!(total > 0, "empty character class in regex strategy");
            let mut k = rng.gen_range(0..total);
            for &(lo, hi) in &self.0 {
                let size = (hi - lo + 1) as u64;
                if k < size {
                    return char::from_u32(lo + k as u32).expect("surrogates excluded");
                }
                k -= size;
            }
            unreachable!("index within total")
        }
    }

    #[derive(Debug)]
    enum Atom {
        Class(ClassSet),
    }

    #[derive(Debug)]
    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    struct Parser<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
        pattern: &'a str,
    }

    impl Parser<'_> {
        fn fail(&self, msg: &str) -> ! {
            panic!("proptest shim: unsupported regex `{}`: {msg}", self.pattern)
        }

        fn parse_escape(&mut self) -> ClassSet {
            match self.chars.next() {
                Some('x') => {
                    let h1 = self.chars.next().and_then(|c| c.to_digit(16));
                    let h2 = self.chars.next().and_then(|c| c.to_digit(16));
                    match (h1, h2) {
                        (Some(a), Some(b)) => {
                            let code = a * 16 + b;
                            ClassSet::single(char::from_u32(code).expect("two hex digits"))
                        }
                        _ => self.fail("bad \\x escape"),
                    }
                }
                Some('d') => ClassSet::range('0', '9'),
                Some('w') => ClassSet::range('a', 'z')
                    .union(ClassSet::range('A', 'Z'))
                    .union(ClassSet::range('0', '9'))
                    .union(ClassSet::single('_')),
                Some('s') => ClassSet::single(' ')
                    .union(ClassSet::single('\t'))
                    .union(ClassSet::single('\n'))
                    .union(ClassSet::single('\r')),
                Some('n') => ClassSet::single('\n'),
                Some('r') => ClassSet::single('\r'),
                Some('t') => ClassSet::single('\t'),
                Some(c) if !c.is_alphanumeric() => ClassSet::single(c),
                other => self.fail(&format!("unsupported escape \\{other:?}")),
            }
        }

        /// Parses the interior of `[...]` after any leading `^`, up to the
        /// closing bracket or a `&&` intersection operator.
        fn parse_class_items(&mut self) -> ClassSet {
            let mut set = ClassSet(Vec::new());
            loop {
                match self.chars.peek() {
                    None => self.fail("unterminated character class"),
                    Some(']') | Some('&') => return set.normalize(),
                    _ => {}
                }
                let c = self.chars.next().expect("peeked");
                let lo = if c == '\\' {
                    let esc = self.parse_escape();
                    if esc.0.len() != 1 || esc.0[0].0 != esc.0[0].1 {
                        // Class escape like \d: union it in, no range allowed.
                        set = set.union(esc);
                        continue;
                    }
                    char::from_u32(esc.0[0].0).expect("single char escape")
                } else {
                    c
                };
                // Range `a-z`? A `-` right before `]` is a literal dash.
                if self.chars.peek() == Some(&'-') {
                    let mut lookahead = self.chars.clone();
                    lookahead.next();
                    if lookahead.peek().is_some_and(|c| *c != ']') {
                        self.chars.next(); // consume '-'
                        let hc = self.chars.next().expect("peeked");
                        let hi = if hc == '\\' {
                            let esc = self.parse_escape();
                            if esc.0.len() != 1 || esc.0[0].0 != esc.0[0].1 {
                                self.fail("class escape cannot end a range");
                            }
                            char::from_u32(esc.0[0].0).expect("single char escape")
                        } else {
                            hc
                        };
                        set = set.union(ClassSet::range(lo, hi));
                        continue;
                    }
                }
                set = set.union(ClassSet::single(lo));
            }
        }

        /// Parses a full `[...]` class (cursor after the opening bracket),
        /// handling leading `^` negation and `&&` intersections.
        fn parse_class(&mut self) -> ClassSet {
            let negated = if self.chars.peek() == Some(&'^') {
                self.chars.next();
                true
            } else {
                false
            };
            let mut set = self.parse_class_items();
            if negated {
                set = set.complement();
            }
            loop {
                match self.chars.next() {
                    Some(']') => return set,
                    Some('&') => {
                        if self.chars.next() != Some('&') {
                            self.fail("single & in class");
                        }
                        // Operand: either a nested class or more items.
                        let rhs = if self.chars.peek() == Some(&'[') {
                            self.chars.next();
                            self.parse_class()
                        } else {
                            let negated = if self.chars.peek() == Some(&'^') {
                                self.chars.next();
                                true
                            } else {
                                false
                            };
                            let items = self.parse_class_items();
                            if negated {
                                items.complement()
                            } else {
                                items
                            }
                        };
                        set = set.intersect(&rhs);
                    }
                    other => self.fail(&format!("unexpected {other:?} in class")),
                }
            }
        }

        fn parse_quantifier(&mut self) -> (u32, u32) {
            match self.chars.peek() {
                Some('{') => {
                    self.chars.next();
                    let mut min = String::new();
                    while self.chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                        min.push(self.chars.next().expect("peeked"));
                    }
                    let min: u32 = min.parse().unwrap_or_else(|_| self.fail("bad {m,n}"));
                    let max = match self.chars.next() {
                        Some('}') => min,
                        Some(',') => {
                            let mut max = String::new();
                            while self.chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                                max.push(self.chars.next().expect("peeked"));
                            }
                            if self.chars.next() != Some('}') {
                                self.fail("unterminated {m,n}");
                            }
                            max.parse().unwrap_or_else(|_| self.fail("bad {m,n}"))
                        }
                        _ => self.fail("unterminated {m,n}"),
                    };
                    (min, max)
                }
                Some('?') => {
                    self.chars.next();
                    (0, 1)
                }
                Some('*') => {
                    self.chars.next();
                    (0, 8)
                }
                Some('+') => {
                    self.chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            }
        }

        fn parse(mut self) -> Vec<Piece> {
            let mut pieces = Vec::new();
            while let Some(c) = self.chars.next() {
                let class = match c {
                    '[' => self.parse_class(),
                    '\\' => self.parse_escape(),
                    '.' => ClassSet::range(' ', '~'),
                    '(' | ')' | '|' | '^' | '$' => {
                        self.fail("groups/alternation/anchors not supported")
                    }
                    c => ClassSet::single(c),
                };
                let (min, max) = self.parse_quantifier();
                pieces.push(Piece { atom: Atom::Class(class), min, max });
            }
            pieces
        }
    }

    /// Generates one string matching the regex subset.
    pub fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
        let pieces = Parser { chars: pattern.chars().peekable(), pattern }.parse();
        let mut out = String::new();
        for piece in &pieces {
            let n = rng.gen_range(piece.min..=piece.max);
            let Atom::Class(class) = &piece.atom;
            for _ in 0..n {
                out.push(class.sample(rng));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            #[allow(unused_variables, unused_mut)]
            $crate::run_proptest(&__config, stringify!($name), |__rng| {
                let mut __inputs: Vec<String> = Vec::new();
                $(
                    let $arg = $crate::Strategy::generate(&($strat), __rng);
                    __inputs.push(format!(
                        concat!(stringify!($arg), " = {:?}"), &$arg
                    ));
                )*
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __outcome {
                    ::std::result::Result::Err(__payload) => {
                        eprintln!(
                            "proptest {} panicked with inputs:\n  {}",
                            stringify!($name),
                            __inputs.join("\n  ")
                        );
                        ::std::panic::resume_unwind(__payload);
                    }
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {
                        ::std::result::Result::Ok(())
                    }
                    ::std::result::Result::Ok(::std::result::Result::Err(
                        $crate::TestCaseError::Fail(__msg),
                    )) => ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                        "{}\ninputs:\n  {}",
                        __msg,
                        __inputs.join("\n  ")
                    ))),
                    ::std::result::Result::Ok(__reject) => __reject,
                }
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), __l, __r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "{}\n  both: {:?}",
            format!($($fmt)+), __l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn regex_class_range_and_quantifier() {
        let mut r = rng();
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{1,3}", &mut r);
            assert!((1..=3).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn regex_intersection_and_negation() {
        let mut r = rng();
        for _ in 0..200 {
            let s = Strategy::generate(&"[ -~&&[^\\\\]]{1,10}", &mut r);
            assert!(s.chars().all(|c| (' '..='~').contains(&c) && c != '\\'), "{s:?}");
        }
    }

    #[test]
    fn regex_literals_escapes_optional() {
        let mut r = rng();
        let mut saw_minus = false;
        for _ in 0..100 {
            let s = Strategy::generate(&"-?[0-9]{1,9}", &mut r);
            let rest = s.strip_prefix('-').inspect(|_| saw_minus = true).unwrap_or(&s);
            assert!(!rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit()), "{s:?}");
        }
        assert!(saw_minus);
        let s = Strategy::generate(&"[\\x00-\\x7f]{0,40}", &mut r);
        assert!(s.chars().all(|c| (c as u32) <= 0x7f));
        let s = Strategy::generate(&"[α-ω]{1,4}", &mut r);
        assert!(s.chars().all(|c| ('α'..='ω').contains(&c)));
        let s = Strategy::generate(&"[a-zA-Z][a-zA-Z0-9-]{0,8}", &mut r);
        assert!(s.chars().next().expect("nonempty").is_ascii_alphabetic());
    }

    #[test]
    fn vec_and_tuple_strategies() {
        let mut r = rng();
        let strat = prop::collection::vec(("[a-b]", 0usize..5), 2..4);
        for _ in 0..50 {
            let v = Strategy::generate(&strat, &mut r);
            assert!((2..=3).contains(&v.len()));
            for (s, n) in v {
                assert!(s == "a" || s == "b");
                assert!(n < 5);
            }
        }
        let fixed = prop::collection::vec(any::<bool>(), 6);
        assert_eq!(Strategy::generate(&fixed, &mut r).len(), 6);
    }

    #[test]
    fn recursive_strategy_terminates_and_varies() {
        let leaf = (0u8..10).prop_map(|n| n.to_string());
        let strat = leaf.prop_recursive(3, 16, 3, |inner| {
            prop::collection::vec(inner, 1..3).prop_map(|xs| format!("({})", xs.join("+")))
        });
        let mut r = rng();
        let mut saw_nested = false;
        let mut saw_leaf = false;
        for _ in 0..100 {
            let s = Strategy::generate(&strat, &mut r);
            if s.starts_with('(') {
                saw_nested = true;
            } else {
                saw_leaf = true;
            }
        }
        assert!(saw_nested && saw_leaf);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn runner_draws_in_range(x in 3u32..7, flag in any::<bool>()) {
            prop_assert!((3..7).contains(&x), "x out of range: {}", x);
            let _ = flag;
        }

        #[test]
        fn assume_rejects_and_redraws(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }
}
