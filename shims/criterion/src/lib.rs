//! Offline shim for `criterion`: a minimal timing harness behind the
//! criterion names this workspace uses. Each benchmark closure is warmed
//! up briefly, then timed over a fixed iteration budget and reported as
//! mean ns/iter on stdout — no statistics, plots, or CLI parsing.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-exported identity function that defeats constant propagation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier combining a function name and a parameter, as in
/// `BenchmarkId::new("hit", 64)`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing state handed to benchmark closures.
pub struct Bencher {
    /// Mean duration of one iteration, filled in by [`Bencher::iter`].
    elapsed_per_iter: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: let caches/allocators settle and estimate cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            warmup_iters += 1;
        }
        // Pick an iteration count targeting ~100ms of measurement.
        let per_iter = warmup_start.elapsed().as_nanos().max(1) / warmup_iters.max(1) as u128;
        let iters = (100_000_000 / per_iter.max(1)).clamp(10, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed_per_iter = start.elapsed() / iters as u32;
    }

    /// Times `routine` over fresh input from `setup`; only the routine is
    /// measured. The iteration budget is fixed (setup cost is unknown), so
    /// expensive-setup benchmarks stay bounded.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
    ) {
        black_box(routine(setup())); // warm-up
        let iters: u64 = 30;
        let mut measured = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.elapsed_per_iter = measured / iters as u32;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _criterion: self }
    }

    /// Criterion's post-run hook; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, mut f: F) {
    let mut b = Bencher { elapsed_per_iter: Duration::ZERO };
    f(&mut b);
    println!("{id:<50} {:>12.1} ns/iter", b.elapsed_per_iter.as_nanos() as f64);
}

/// Builds the group functions `criterion_main!` invokes.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("hit", 64).to_string(), "hit/64");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
