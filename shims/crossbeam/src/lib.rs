//! Offline shim for `crossbeam`: an unbounded MPMC channel with the
//! `crossbeam-channel` surface this workspace uses (`unbounded`, `send`
//! failing once all receivers are gone, `try_iter`, disconnect probing).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver has been
    /// dropped; carries the rejected message like crossbeam's `SendError`.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.is_disconnected() {
                return Err(SendError(msg));
            }
            self.shared.queue.lock().expect("channel poisoned").push_back(msg);
            Ok(())
        }

        /// True once every receiver has been dropped: sends would fail.
        pub fn is_disconnected(&self) -> bool {
            self.shared.receivers.load(Ordering::SeqCst) == 0
        }

        /// Number of messages waiting in the channel.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel poisoned").len()
        }

        /// True if no messages are waiting.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.shared.senders.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Pops the next waiting message, if any.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().expect("channel poisoned");
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.shared.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Iterator draining currently queued messages without blocking.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { receiver: self }
        }

        /// Number of messages waiting in the channel.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel poisoned").len()
        }

        /// True if no messages are waiting.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.try_recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_try_iter() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![1, 2]);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            assert!(!tx.is_disconnected());
            drop(rx);
            assert!(tx.is_disconnected());
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn recv_reports_disconnect_after_sender_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
