//! Offline shim for `parking_lot`: the subset this workspace uses, backed
//! by `std::sync` primitives. Poisoning is absorbed (a poisoned lock still
//! hands out its guard), matching parking_lot's panic-transparent behaviour.

use std::fmt;
use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.inner.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock whose accessors never return poison errors.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
