//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` without syn/quote. The input item is parsed
//! directly from its token tree (only the shapes this workspace uses:
//! non-generic structs and enums, `#[serde(skip)]`, `#[serde(default)]`,
//! `#[serde(with = "path")]`), and the generated code targets the shimmed
//! `serde` crate's `Value` model.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    skip: bool,
    default: bool,
    with: Option<String>,
}

#[derive(Debug)]
struct Field {
    /// `None` for tuple fields.
    name: Option<String>,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum Payload {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    payload: Payload,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, payload: Payload },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Token-tree parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde shim derive: expected {what}, got {other:?}"),
        }
    }

    /// Consumes leading `#[...]` attributes, folding any `#[serde(...)]`
    /// metas into the returned `FieldAttrs`.
    fn take_attrs(&mut self) -> FieldAttrs {
        let mut attrs = FieldAttrs::default();
        while self.at_punct('#') {
            self.next();
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("serde shim derive: malformed attribute, got {other:?}"),
            };
            let mut inner = Cursor::new(group.stream());
            if inner.at_ident("serde") {
                inner.next();
                let args = match inner.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
                    other => panic!("serde shim derive: malformed #[serde], got {other:?}"),
                };
                parse_serde_metas(Cursor::new(args.stream()), &mut attrs);
            }
        }
        attrs
    }

    /// Consumes `pub` / `pub(crate)`-style visibility if present.
    fn skip_visibility(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }

    /// Skips a type (or any token run) up to a top-level comma, tracking
    /// angle-bracket depth so commas inside generics don't split fields.
    fn skip_to_comma(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_serde_metas(mut cursor: Cursor, attrs: &mut FieldAttrs) {
    while let Some(token) = cursor.next() {
        let word = match token {
            TokenTree::Ident(i) => i.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => continue,
            other => panic!("serde shim derive: unexpected token in #[serde(..)]: {other:?}"),
        };
        match word.as_str() {
            "skip" => attrs.skip = true,
            "default" => attrs.default = true,
            "with" => {
                match cursor.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
                    other => panic!("serde shim derive: expected `=` after with, got {other:?}"),
                }
                match cursor.next() {
                    Some(TokenTree::Literal(l)) => {
                        let raw = l.to_string();
                        attrs.with = Some(raw.trim_matches('"').to_string());
                    }
                    other => panic!("serde shim derive: expected path literal, got {other:?}"),
                }
            }
            other => panic!(
                "serde shim derive: unsupported #[serde({other})] — the shim knows \
                 skip/default/with only"
            ),
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    while cursor.peek().is_some() {
        let attrs = cursor.take_attrs();
        cursor.skip_visibility();
        let name = cursor.expect_ident("field name");
        match cursor.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after field name, got {other:?}"),
        }
        cursor.skip_to_comma();
        cursor.next(); // consume the comma, if any
        fields.push(Field { name: Some(name), attrs });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    while cursor.peek().is_some() {
        let attrs = cursor.take_attrs();
        cursor.skip_visibility();
        cursor.skip_to_comma();
        cursor.next();
        fields.push(Field { name: None, attrs });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cursor = Cursor::new(stream);
    let mut variants = Vec::new();
    while cursor.peek().is_some() {
        let _attrs = cursor.take_attrs();
        let name = cursor.expect_ident("variant name");
        let payload = match cursor.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = parse_tuple_fields(g.stream());
                cursor.next();
                Payload::Tuple(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cursor.next();
                Payload::Named(fields)
            }
            _ => Payload::Unit,
        };
        // Skip an explicit discriminant (`= expr`).
        if cursor.at_punct('=') {
            cursor.skip_to_comma();
        }
        if cursor.at_punct(',') {
            cursor.next();
        }
        variants.push(Variant { name, payload });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cursor = Cursor::new(input);
    cursor.take_attrs();
    cursor.skip_visibility();
    let kind = cursor.expect_ident("struct/enum keyword");
    let name = cursor.expect_ident("type name");
    if cursor.at_punct('<') {
        panic!("serde shim derive: generic types are not supported (deriving on `{name}`)");
    }
    match kind.as_str() {
        "struct" => {
            let payload = match cursor.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Payload::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Payload::Tuple(parse_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Payload::Unit,
                other => panic!("serde shim derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, payload }
        }
        "enum" => {
            let body = match cursor.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde shim derive: expected enum body, got {other:?}"),
            };
            Item::Enum { name, variants: parse_variants(body.stream()) }
        }
        other => panic!("serde shim derive: cannot derive on `{other}` items"),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// Serialization expression for one field value reachable as `{access}`.
fn ser_field_expr(access: &str, attrs: &FieldAttrs) -> String {
    match &attrs.with {
        Some(path) => format!(
            "::serde::__private::ok({path}::serialize({access}, \
             ::serde::__private::ValueSerializer))"
        ),
        None => format!("::serde::__private::to_value({access})"),
    }
}

/// Deserialization expression producing a field from a `::serde::Value`
/// expression `{value}` (errors convert into the outer `__D::Error`).
fn de_field_expr(value: &str, attrs: &FieldAttrs) -> String {
    match &attrs.with {
        Some(path) => format!("{path}::deserialize({value})?"),
        None => format!("::serde::Deserialize::deserialize({value})?"),
    }
}

fn gen_struct_serialize(name: &str, payload: &Payload) -> String {
    let body = match payload {
        Payload::Unit => "ser.serialize_value(::serde::Value::Null)".to_string(),
        Payload::Tuple(fields) if fields.len() == 1 => {
            // Newtype structs are transparent, as in serde_json.
            "::serde::Serialize::serialize(&self.0, ser)".to_string()
        }
        Payload::Tuple(fields) => {
            let items: Vec<String> = fields
                .iter()
                .enumerate()
                .filter(|(_, f)| !f.attrs.skip)
                .map(|(i, f)| ser_field_expr(&format!("&self.{i}"), &f.attrs))
                .collect();
            format!(
                "ser.serialize_value(::serde::Value::Seq(::std::vec![{}]))",
                items.join(", ")
            )
        }
        Payload::Named(fields) => {
            let pushes: Vec<String> = fields
                .iter()
                .filter(|f| !f.attrs.skip)
                .map(|f| {
                    let fname = f.name.as_deref().expect("named field");
                    let expr = ser_field_expr(&format!("&self.{fname}"), &f.attrs);
                    format!("__fields.push((\"{fname}\".to_string(), {expr}));")
                })
                .collect();
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{}\n\
                 ser.serialize_value(::serde::Value::Map(__fields))",
                pushes.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, ser: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn gen_named_field_inits(fields: &[Field], map_var: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let fname = f.name.as_deref().expect("named field");
            if f.attrs.skip {
                return format!("{fname}: ::core::default::Default::default(),");
            }
            if f.attrs.default {
                let inner = de_field_expr("__v", &f.attrs);
                return format!(
                    "{fname}: match ::serde::__private::take_field_opt(&mut {map_var}, \
                     \"{fname}\") {{ Some(__v) => {inner}, None => \
                     ::core::default::Default::default() }},"
                );
            }
            let value = format!(
                "::serde::__private::take_field::<__D::Error>(&mut {map_var}, \"{fname}\")?"
            );
            format!("{fname}: {},", de_field_expr(&value, &f.attrs))
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn gen_struct_deserialize(name: &str, payload: &Payload) -> String {
    let body = match payload {
        Payload::Unit => format!(
            "let _ = ::serde::Deserializer::take_value(de)?;\n\
             ::core::result::Result::Ok({name})"
        ),
        Payload::Tuple(fields) if fields.len() == 1 => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(de)?))"
        ),
        Payload::Tuple(fields) => {
            let n = fields.len();
            let elems: Vec<String> = (0..n)
                .map(|_| {
                    "::serde::Deserialize::deserialize(__items.next().expect(\"len checked\"))?"
                        .to_string()
                })
                .collect();
            format!(
                "let mut __items = ::serde::__private::take_seq::<__D::Error>(\
                 ::serde::Deserializer::take_value(de)?, {n})?.into_iter();\n\
                 ::core::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Payload::Named(fields) => {
            let inits = gen_named_field_inits(fields, "__fields");
            format!(
                "let mut __fields = ::serde::__private::take_map(de)?;\n\
                 let _ = &mut __fields;\n\
                 ::core::result::Result::Ok({name} {{\n{inits}\n}})"
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(de: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.payload {
                Payload::Unit => format!(
                    "{name}::{vname} => ser.serialize_value(\
                     ::serde::Value::Str(\"{vname}\".to_string())),"
                ),
                Payload::Tuple(fields) if fields.len() == 1 => format!(
                    "{name}::{vname}(__f0) => ser.serialize_value(::serde::Value::Map(\
                     ::std::vec![(\"{vname}\".to_string(), \
                     ::serde::__private::to_value(__f0))])),"
                ),
                Payload::Tuple(fields) => {
                    let binders: Vec<String> =
                        (0..fields.len()).map(|i| format!("__f{i}")).collect();
                    let items: Vec<String> = binders
                        .iter()
                        .map(|b| format!("::serde::__private::to_value({b})"))
                        .collect();
                    format!(
                        "{name}::{vname}({}) => ser.serialize_value(::serde::Value::Map(\
                         ::std::vec![(\"{vname}\".to_string(), \
                         ::serde::Value::Seq(::std::vec![{}]))])),",
                        binders.join(", "),
                        items.join(", ")
                    )
                }
                Payload::Named(fields) => {
                    let fnames: Vec<&str> =
                        fields.iter().map(|f| f.name.as_deref().expect("named")).collect();
                    let pairs: Vec<String> = fnames
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), ::serde::__private::to_value({f}))"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vname} {{ {} }} => ser.serialize_value(::serde::Value::Map(\
                         ::std::vec![(\"{vname}\".to_string(), \
                         ::serde::Value::Map(::std::vec![{}]))])),",
                        fnames.join(", "),
                        pairs.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, ser: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
         match self {{\n{}\n}}\n}}\n}}\n",
        arms.join("\n")
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let need_payload = format!(
        "__payload.ok_or_else(|| <__D::Error as ::serde::de::Error>::custom(\
         \"missing enum payload\"))?"
    );
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.payload {
                Payload::Unit => {
                    format!("\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),")
                }
                Payload::Tuple(fields) if fields.len() == 1 => format!(
                    "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::deserialize({need_payload})?)),"
                ),
                Payload::Tuple(fields) => {
                    let n = fields.len();
                    let elems: Vec<String> = (0..n)
                        .map(|_| {
                            "::serde::Deserialize::deserialize(\
                             __items.next().expect(\"len checked\"))?"
                                .to_string()
                        })
                        .collect();
                    format!(
                        "\"{vname}\" => {{\n\
                         let mut __items = ::serde::__private::take_seq::<__D::Error>(\
                         {need_payload}, {n})?.into_iter();\n\
                         ::core::result::Result::Ok({name}::{vname}({}))\n}},",
                        elems.join(", ")
                    )
                }
                Payload::Named(fields) => {
                    let inits = gen_named_field_inits(fields, "__vfields");
                    format!(
                        "\"{vname}\" => {{\n\
                         let mut __vfields = ::serde::__private::take_map({need_payload})?;\n\
                         let _ = &mut __vfields;\n\
                         ::core::result::Result::Ok({name}::{vname} {{\n{inits}\n}})\n}},"
                    )
                }
            }
        })
        .collect();
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(de: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n\
         let (__variant, __payload) = ::serde::__private::take_variant(de)?;\n\
         let _ = &__payload;\n\
         match __variant.as_str() {{\n{}\n\
         __other => ::core::result::Result::Err(\
         <__D::Error as ::serde::de::Error>::custom(\
         format!(\"unknown variant `{{__other}}`\"))),\n}}\n}}\n}}\n",
        arms.join("\n")
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let generated = match parse_item(input) {
        Item::Struct { name, payload } => gen_struct_serialize(&name, &payload),
        Item::Enum { name, variants } => gen_enum_serialize(&name, &variants),
    };
    generated.parse().expect("serde shim derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let generated = match parse_item(input) {
        Item::Struct { name, payload } => gen_struct_deserialize(&name, &payload),
        Item::Enum { name, variants } => gen_enum_deserialize(&name, &variants),
    };
    generated.parse().expect("serde shim derive: generated Deserialize impl parses")
}
