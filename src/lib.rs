#![warn(missing_docs)]
//! **fbdr** — Filter Based Directory Replication.
//!
//! A from-scratch Rust reproduction of *"Filter Based Directory
//! Replication: Algorithms and Performance"* (Apurva Kumar, ICDCS 2005):
//! instead of replicating whole subtrees of an LDAP Directory Information
//! Tree, a replica stores the entries matching one or more LDAP search
//! filters, decides answerability by **semantic query containment**,
//! keeps content consistent with the **ReSync** protocol, and adapts the
//! stored filter set to the access pattern by **benefit/size selection**.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`ldap`] | `fbdr-ldap` | DNs, entries, RFC 2254 filters, templates, search requests |
//! | [`dit`] | `fbdr-dit` | in-memory DIT store, indexes, updates, changelog, tombstones |
//! | [`containment`] | `fbdr-containment` | QC algorithm, Propositions 1–3, containment engine |
//! | [`net`] | `fbdr-net` | simulated distributed directory with referral chasing |
//! | [`resync`] | `fbdr-resync` | ReSync protocol + baseline synchronizers |
//! | [`replica`] | `fbdr-replica` | subtree and filter replicas |
//! | [`selection`] | `fbdr-selection` | filter generalization + selection |
//! | [`workload`] | `fbdr-workload` | enterprise directory + Table 1 traces |
//! | [`core`] | `fbdr-core` | the `Replicator` façade + experiment engine |
//! | [`obs`] | `fbdr-obs` | metrics registry, latency histograms, structured tracing |
//!
//! # Quickstart
//!
//! ```
//! use fbdr::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A master directory with one person entry.
//! let mut master = SyncMaster::new();
//! master.dit_mut().add_suffix("o=xyz".parse()?);
//! master.dit_mut().add(Entry::new("o=xyz".parse()?))?;
//! master.dit_mut().add(
//!     Entry::new("cn=John Doe,o=xyz".parse()?)
//!         .with("objectclass", "inetOrgPerson")
//!         .with("serialNumber", "045612"),
//! )?;
//!
//! // A remote filter-based replica holding the 0456* serial region.
//! let mut replicator = Replicator::new(master, 50);
//! replicator.install_filter(SearchRequest::from_root(Filter::parse("(serialNumber=0456*)")?))?;
//!
//! // Contained queries are answered locally.
//! let q = SearchRequest::from_root(Filter::parse("(serialNumber=045612)")?);
//! let (entries, served) = replicator.search(&q);
//! assert_eq!(entries.len(), 1);
//! assert_eq!(served, ServedBy::Replica);
//! # Ok(())
//! # }
//! ```

pub use fbdr_containment as containment;
pub use fbdr_core as core;
pub use fbdr_dit as dit;
pub use fbdr_ldap as ldap;
pub use fbdr_net as net;
pub use fbdr_obs as obs;
pub use fbdr_replica as replica;
pub use fbdr_resync as resync;
pub use fbdr_selection as selection;
pub use fbdr_workload as workload;

/// Convenient re-exports of the most used types.
pub mod prelude {
    pub use fbdr_containment::{
        filter_contained, query_contained, Containment, ContainmentEngine, PreparedQuery,
    };
    pub use fbdr_core::{Replicator, ServedBy};
    pub use fbdr_dit::{DitStore, Modification, NamingContext, UpdateOp};
    pub use fbdr_ldap::{
        AttrName, AttrSelection, AttrValue, Dn, Entry, Filter, Rdn, Scope, SearchRequest, Template,
    };
    pub use fbdr_net::{Network, Server};
    pub use fbdr_obs::{MetricsRegistry, Obs, RingBuffer};
    pub use fbdr_replica::{FilterReplica, SubtreeReplica};
    pub use fbdr_resync::{
        ReSyncControl, ReplicaContent, SyncAction, SyncMaster, SyncMode, SyncTraffic,
    };
    pub use fbdr_selection::{FilterSelector, SelectorConfig};
    pub use fbdr_workload::{
        DirectoryConfig, EnterpriseDirectory, QueryKind, TraceConfig, TraceGenerator, UpdateConfig,
        UpdateGenerator,
    };
}
