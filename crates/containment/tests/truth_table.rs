//! Exhaustive cross-kind containment truth table, checked against a
//! brute-force oracle over a dense grid of candidate values.
//!
//! For every ordered pair of predicate kinds (equality, `>=`, `<=`,
//! presence, prefix/suffix/contains substrings) and a grid of assertion
//! values, the three-valued verdict must be consistent with evaluation:
//!
//! * `Yes` → every grid entry matching F1 matches F2;
//! * `No` → some grid entry matches F1 but not F2 **or** the grid simply
//!   cannot refute it (No claims a witness exists somewhere);
//! * over the integer-only grid, `Yes`/`No` must be *exact* where both
//!   filters only use integer-typed assertions.

use fbdr_containment::{filter_contained, Containment};
use fbdr_ldap::{Entry, Filter};

/// All single-predicate filters over attribute `a` for a small value pool.
fn predicate_pool() -> Vec<String> {
    let mut out = Vec::new();
    for v in ["3", "5", "7", "05", "bb", "bd"] {
        out.push(format!("(a={v})"));
        out.push(format!("(a>={v})"));
        out.push(format!("(a<={v})"));
    }
    for p in ["b", "bb", "5"] {
        out.push(format!("(a={p}*)"));
        out.push(format!("(a=*{p})"));
        out.push(format!("(a=*{p}*)"));
    }
    out.push("(a=*)".to_owned());
    out
}

/// Candidate single values an entry's `a` attribute may hold.
fn value_grid() -> Vec<String> {
    let mut g: Vec<String> = (0..10).map(|n| n.to_string()).collect();
    g.extend((0..10).map(|n| format!("0{n}")));
    g.extend(["b", "bb", "bbb", "bd", "bdb", "a", "c", "5b", "b5"].map(str::to_owned));
    g
}

fn entry_with(value: &str) -> Entry {
    Entry::new("cn=x,o=y".parse().expect("dn")).with("a", value)
}

#[test]
fn verdicts_consistent_with_grid_evaluation() {
    let pool = predicate_pool();
    let grid = value_grid();
    let mut checked = 0;
    let mut yes = 0;
    for f1s in &pool {
        let f1 = Filter::parse(f1s).expect("pool parses");
        for f2s in &pool {
            let f2 = Filter::parse(f2s).expect("pool parses");
            let verdict = filter_contained(&f1, &f2);
            checked += 1;
            if verdict == Containment::Yes {
                yes += 1;
                for v in &grid {
                    let e = entry_with(v);
                    assert!(
                        !f1.matches(&e) || f2.matches(&e),
                        "claimed {f1s} ⊆ {f2s}, but value {v:?} breaks it"
                    );
                }
            }
        }
    }
    // Sanity: the table is not trivially all-No.
    assert!(yes >= pool.len(), "only {yes} Yes verdicts in {checked} checks");
}

/// For integer-only assertion pairs the procedure must be *decisive and
/// exact*: Yes iff no integer (in a generous range) refutes containment.
#[test]
fn integer_pairs_are_exact() {
    let kinds: Vec<String> = ["3", "5", "7"]
        .iter()
        .flat_map(|v| {
            vec![format!("(a={v})"), format!("(a>={v})"), format!("(a<={v})")]
        })
        .collect();
    for f1s in &kinds {
        let f1 = Filter::parse(f1s).expect("parses");
        for f2s in &kinds {
            let f2 = Filter::parse(f2s).expect("parses");
            let verdict = filter_contained(&f1, &f2);
            assert_ne!(
                verdict,
                Containment::Unknown,
                "integer pair must be decisive: {f1s} ⊆ {f2s}"
            );
            // Oracle over integers -20..20 with two spellings each.
            let mut refuted = false;
            for n in -20..20 {
                for spelled in [n.to_string(), format!("0{n}")] {
                    let e = entry_with(&spelled);
                    if f1.matches(&e) && !f2.matches(&e) {
                        refuted = true;
                    }
                }
            }
            let expected = if refuted { Containment::No } else { Containment::Yes };
            assert_eq!(verdict, expected, "{f1s} ⊆ {f2s}");
        }
    }
}

/// The documented paper examples, as a compact regression table.
#[test]
fn paper_examples_table() {
    let cases: &[(&str, &str, Containment)] = &[
        // (age=X) answered by (age>=Y) iff Y <= X.
        ("(age=40)", "(age>=30)", Containment::Yes),
        ("(age=29)", "(age>=30)", Containment::No),
        // Template elimination: (sn=_) can never be answered by (&(sn=_)(ou=_)).
        ("(sn=doe)", "(&(sn=doe)(ou=research))", Containment::No),
        // §3.1.2 department generalization.
        (
            "(&(objectclass=inetOrgPerson)(departmentNumber=2406))",
            "(&(objectclass=inetOrgPerson)(departmentNumber=240*))",
            Containment::Yes,
        ),
        // Proposition 2 worked example: F1=(a>=p)∧(b<=q), F2=(a=x)∨(b<=y),
        // contained iff q <= y.
        ("(&(a>=2)(b<=5))", "(|(a=2)(b<=9))", Containment::Yes),
        ("(&(a>=2)(b<=5))", "(|(a=2)(b<=4))", Containment::No),
    ];
    for (f1, f2, want) in cases {
        let got = filter_contained(
            &Filter::parse(f1).expect("parses"),
            &Filter::parse(f2).expect("parses"),
        );
        assert_eq!(got, *want, "{f1} ⊆ {f2}");
    }
}
