//! Property tests: containment verdicts must be *sound* with respect to
//! actual filter evaluation over randomly generated (multi-valued) entries.
//!
//! * If any containment path says `F1 ⊆ F2`, then every sampled entry
//!   matching `F1` must match `F2`.
//! * `Containment::No` claims a witness exists — sampling cannot refute
//!   that, so only `Yes` verdicts are checked.

use fbdr_containment::{filter_contained, same_template_contained, Containment, ContainmentEngine, PreparedQuery};
use fbdr_ldap::{Entry, Filter, SearchRequest, Template};
use proptest::prelude::*;

/// Attribute names drawn from a small pool so filters collide often.
fn attr() -> impl Strategy<Value = String> {
    prop_oneof![Just("a".to_owned()), Just("b".to_owned()), Just("sn".to_owned())]
}

/// Values drawn from small integers and short strings so that ranges,
/// prefixes and equalities interact.
fn value() -> impl Strategy<Value = String> {
    prop_oneof![
        (0i64..10).prop_map(|n| n.to_string()),
        (0i64..10).prop_map(|n| format!("0{n}")),
        "[a-c]{1,3}",
    ]
}

fn predicate() -> impl Strategy<Value = String> {
    (attr(), value(), 0u8..5).prop_map(|(a, v, k)| match k {
        0 => format!("({a}={v})"),
        1 => format!("({a}>={v})"),
        2 => format!("({a}<={v})"),
        3 => format!("({a}={v}*)"),
        _ => format!("({a}=*)"),
    })
}

/// Filters up to depth 2 over the predicate pool.
fn filter_str() -> impl Strategy<Value = String> {
    let leaf = predicate();
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3)
                .prop_map(|fs| format!("(&{})", fs.join(""))),
            prop::collection::vec(inner.clone(), 1..3)
                .prop_map(|fs| format!("(|{})", fs.join(""))),
            inner.prop_map(|f| format!("(!{f})")),
        ]
    })
}

/// Random multi-valued entries over the same attribute/value pools.
fn entry() -> impl Strategy<Value = Entry> {
    prop::collection::vec((attr(), prop::collection::vec(value(), 1..3)), 0..4).prop_map(|attrs| {
        let mut e = Entry::new("cn=test,o=xyz".parse().expect("valid dn"));
        for (a, vs) in attrs {
            for v in vs {
                e.add(a.as_str(), v.as_str());
            }
        }
        e
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The general procedure's `Yes` implies semantic containment on every
    /// sampled entry.
    #[test]
    fn general_yes_is_sound(
        f1s in filter_str(),
        f2s in filter_str(),
        entries in prop::collection::vec(entry(), 16),
    ) {
        let f1 = Filter::parse(&f1s).expect("generated filters parse");
        let f2 = Filter::parse(&f2s).expect("generated filters parse");
        if filter_contained(&f1, &f2) == Containment::Yes {
            for e in &entries {
                prop_assert!(
                    !f1.matches(e) || f2.matches(e),
                    "claimed {f1s} ⊆ {f2s} but entry breaks it:\n{e}"
                );
            }
        }
    }

    /// Reflexivity: every filter is contained in itself (never `No`).
    #[test]
    fn reflexive_never_no(f in filter_str()) {
        let f = Filter::parse(&f).expect("generated filters parse");
        prop_assert_ne!(filter_contained(&f, &f), Containment::No);
    }

    /// The same-template fast path agrees with evaluation.
    #[test]
    fn same_template_yes_is_sound(
        f1s in filter_str(),
        f2s in filter_str(),
        entries in prop::collection::vec(entry(), 16),
    ) {
        let f1 = Filter::parse(&f1s).expect("generated filters parse");
        let f2 = Filter::parse(&f2s).expect("generated filters parse");
        let (t1, _) = Template::of(&f1);
        let (t2, _) = Template::of(&f2);
        if t1.id() == t2.id() && same_template_contained(&f1, &f2) {
            for e in &entries {
                prop_assert!(
                    !f1.matches(e) || f2.matches(e),
                    "same-template claimed {f1s} ⊆ {f2s} but entry breaks it:\n{e}"
                );
            }
        }
    }

    /// The engine dispatcher (whatever path it picks) stays sound.
    #[test]
    fn engine_yes_is_sound(
        f1s in filter_str(),
        f2s in filter_str(),
        entries in prop::collection::vec(entry(), 16),
    ) {
        let f1 = Filter::parse(&f1s).expect("generated filters parse");
        let f2 = Filter::parse(&f2s).expect("generated filters parse");
        let mut engine = ContainmentEngine::new();
        let q = PreparedQuery::new(SearchRequest::from_root(f1.clone()));
        let s = PreparedQuery::new(SearchRequest::from_root(f2.clone()));
        if engine.filter_contained(&q, &s) {
            for e in &entries {
                prop_assert!(
                    !f1.matches(e) || f2.matches(e),
                    "engine claimed {f1s} ⊆ {f2s} but entry breaks it:\n{e}"
                );
            }
        }
    }

    /// The engine's fast paths never contradict the general procedure: a
    /// fast-path `true` may not meet a general `No`.
    #[test]
    fn engine_agrees_with_general(f1s in filter_str(), f2s in filter_str()) {
        let f1 = Filter::parse(&f1s).expect("generated filters parse");
        let f2 = Filter::parse(&f2s).expect("generated filters parse");
        let mut engine = ContainmentEngine::new();
        let q = PreparedQuery::new(SearchRequest::from_root(f1.clone()));
        let s = PreparedQuery::new(SearchRequest::from_root(f2.clone()));
        if engine.filter_contained(&q, &s) {
            prop_assert_ne!(
                filter_contained(&f1, &f2),
                Containment::No,
                "engine says contained, general refutes: {} ⊆ {}", f1s, f2s
            );
        }
    }

    /// Parse/print round trip for generated filters.
    #[test]
    fn parse_print_round_trip(fs in filter_str()) {
        let f = Filter::parse(&fs).expect("generated filters parse");
        let printed = f.to_string();
        let reparsed = Filter::parse(&printed).expect("printed form parses");
        prop_assert_eq!(f, reparsed);
    }
}
