//! Cross-template containment — Proposition 2.
//!
//! For positive conjunctive templates over equality, range and
//! prefix-substring predicates, the condition for `F1 ⊆ F2` is a CNF whose
//! clauses correspond to the predicates of `F2`: each conjunct of
//! `F1 ∧ ¬F2` contains all of `F1`'s predicates plus one negated `F2`
//! predicate `¬q`, and it is inconsistent iff *some* `F1` predicate on the
//! same attribute clashes with `¬q`. The clash conditions depend only on
//! which value slots are compared how — so the CNF is compiled **once per
//! template pair** and then evaluated per query pair in O(#clauses ×
//! #literals) assertion-value comparisons.

use crate::same_template::{range_implies_ge, range_implies_le};
use fbdr_ldap::{AttrValue, Comparison, Filter, Predicate, Template, TemplateId};
use std::collections::HashMap;
use std::sync::Arc;

/// An atomic comparison between an `F1` value slot and an `F2` value slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Atom {
    /// `v1[i] == v2[j]` (normalized equality).
    EqEq(usize, usize),
    /// `v1[i]` satisfies `>= v2[j]` under typed range semantics.
    EqSatGe(usize, usize),
    /// `v1[i]` satisfies `<= v2[j]`.
    EqSatLe(usize, usize),
    /// Range-range: `(a >= v1[i])` implies `(a >= v2[j])`.
    GeGe(usize, usize),
    /// Range-range: `(a <= v1[i])` implies `(a <= v2[j])`.
    LeLe(usize, usize),
    /// `v1[i]` (an equality assertion) starts with prefix `v2[j]`.
    EqStartsWith(usize, usize),
    /// Prefix `v1[i]` extends prefix `v2[j]`.
    PrefixStartsWith(usize, usize),
}

impl Atom {
    fn eval(self, v1: &[AttrValue], v2: &[AttrValue]) -> bool {
        match self {
            Atom::EqEq(i, j) => v1[i] == v2[j],
            Atom::EqSatGe(i, j) => Comparison::Ge(v2[j].clone()).matches_value(&v1[i]),
            Atom::EqSatLe(i, j) => Comparison::Le(v2[j].clone()).matches_value(&v1[i]),
            Atom::GeGe(i, j) => range_implies_ge(&v1[i], &v2[j]),
            Atom::LeLe(i, j) => range_implies_le(&v1[i], &v2[j]),
            Atom::EqStartsWith(i, j) => v1[i].normalized().starts_with(v2[j].normalized()),
            Atom::PrefixStartsWith(i, j) => v1[i].normalized().starts_with(v2[j].normalized()),
        }
    }
}

/// A containment condition compiled for an ordered template pair.
#[derive(Debug, Clone)]
pub struct CompiledCondition {
    /// CNF: all clauses must have a true atom. A clause compiled empty
    /// makes the whole condition constant-false, represented eagerly.
    clauses: Vec<Vec<Atom>>,
    never: bool,
}

impl CompiledCondition {
    /// Evaluates the condition for a concrete pair of assertion-value
    /// vectors (in template slot order).
    pub fn eval(&self, v1: &[AttrValue], v2: &[AttrValue]) -> bool {
        !self.never && self.clauses.iter().all(|cl| cl.iter().any(|a| a.eval(v1, v2)))
    }

    /// True when the template pair can never contain (compiled to an empty
    /// clause), letting replicas skip these comparisons entirely — the
    /// "eliminating containment checks against templates which can not
    /// potentially answer the query" optimization of §3.4.2.
    pub fn is_never(&self) -> bool {
        self.never
    }
}

/// One predicate of a flattened conjunctive template, with the slot range
/// its assertion values occupy.
#[derive(Debug, Clone)]
struct FlatPred {
    attr_lower: String,
    kind: FlatKind,
    slot: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlatKind {
    Eq,
    Ge,
    Le,
    Present,
    /// Prefix-only substring (`x*`); slot points at the initial component.
    Prefix,
}

/// Flattens a template's shape if it is a supported conjunctive template:
/// a single predicate or an `And` of predicates, each of kind equality,
/// range, presence or prefix-substring.
fn flatten(shape: &Filter) -> Option<Vec<FlatPred>> {
    let preds: Vec<&Predicate> = match shape {
        Filter::Pred(p) => vec![p],
        Filter::And(fs) => {
            let mut ps = Vec::with_capacity(fs.len());
            for f in fs {
                match f {
                    Filter::Pred(p) => ps.push(p),
                    _ => return None,
                }
            }
            ps
        }
        _ => return None,
    };
    let mut out = Vec::with_capacity(preds.len());
    let mut slot = 0;
    for p in preds {
        let kind = match p.comparison() {
            Comparison::Eq(_) => FlatKind::Eq,
            Comparison::Ge(_) => FlatKind::Ge,
            Comparison::Le(_) => FlatKind::Le,
            Comparison::Present => FlatKind::Present,
            Comparison::Substring(pat) if pat.is_prefix_only() => FlatKind::Prefix,
            Comparison::Substring(_) => return None,
        };
        out.push(FlatPred { attr_lower: p.attr().lower().to_owned(), kind, slot });
        if kind != FlatKind::Present {
            slot += 1;
        }
    }
    Some(out)
}

/// The clash condition for `p ∧ ¬q` on the same attribute, as an atom over
/// value slots; `None` when the pair can never clash.
fn clash_atom(p: &FlatPred, q: &FlatPred) -> Option<Atom> {
    use FlatKind::*;
    match (p.kind, q.kind) {
        // ¬q forbids the attribute entirely only for q=Present — handled
        // by the caller (any positive p clashes).
        (_, Present) => unreachable!("present clauses handled by caller"),
        (Eq, Eq) => Some(Atom::EqEq(p.slot, q.slot)),
        (Eq, Ge) => Some(Atom::EqSatGe(p.slot, q.slot)),
        (Eq, Le) => Some(Atom::EqSatLe(p.slot, q.slot)),
        (Eq, Prefix) => Some(Atom::EqStartsWith(p.slot, q.slot)),
        (Ge, Ge) => Some(Atom::GeGe(p.slot, q.slot)),
        (Le, Le) => Some(Atom::LeLe(p.slot, q.slot)),
        (Prefix, Prefix) => Some(Atom::PrefixStartsWith(p.slot, q.slot)),
        // A range or presence predicate admits values no equality or
        // prefix can pin down, and mixed range directions are unbounded.
        _ => None,
    }
}

/// Compiles the Proposition 2 condition for an ordered template pair.
///
/// Returns `None` when either template is outside the supported class
/// (callers fall back to the general procedure).
pub(crate) fn compile(t1: &Template, t2: &Template) -> Option<CompiledCondition> {
    let f1 = flatten(t1.shape())?;
    let f2 = flatten(t2.shape())?;
    let mut clauses = Vec::with_capacity(f2.len());
    for q in &f2 {
        let on_attr: Vec<&FlatPred> = f1.iter().filter(|p| p.attr_lower == q.attr_lower).collect();
        if q.kind == FlatKind::Present {
            // ¬(a=*) forces absence; any positive predicate of F1 on the
            // attribute clashes unconditionally.
            if on_attr.is_empty() {
                return Some(CompiledCondition { clauses: Vec::new(), never: true });
            }
            continue; // Clause constant-true.
        }
        let clause: Vec<Atom> = on_attr.iter().filter_map(|p| clash_atom(p, q)).collect();
        if clause.is_empty() {
            return Some(CompiledCondition { clauses: Vec::new(), never: true });
        }
        clauses.push(clause);
    }
    Some(CompiledCondition { clauses, never: false })
}

/// Cache of compiled cross-template conditions, keyed by ordered template
/// pair.
///
/// ```
/// use fbdr_containment::CrossTemplateMatrix;
/// use fbdr_ldap::{Filter, Template};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (t_q, v_q) = Template::of(&Filter::parse("(serialNumber=045612)")?);
/// let (t_s, v_s) = Template::of(&Filter::parse("(serialNumber=0456*)")?);
///
/// let mut matrix = CrossTemplateMatrix::new();
/// let cond = matrix.condition(&t_q, &t_s).expect("supported templates");
/// assert!(cond.eval(&v_q, &v_s));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct CrossTemplateMatrix {
    compiled: HashMap<(TemplateId, TemplateId), Option<Arc<CompiledCondition>>>,
}

impl CrossTemplateMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        CrossTemplateMatrix::default()
    }

    /// The compiled condition for `t1 ⊆ t2`, compiling (and caching) it on
    /// first use. `None` means the pair is outside the compilable class.
    pub fn condition(&mut self, t1: &Template, t2: &Template) -> Option<&CompiledCondition> {
        self.compiled
            .entry((t1.id().clone(), t2.id().clone()))
            .or_insert_with(|| compile(t1, t2).map(Arc::new))
            .as_deref()
    }

    /// Looks up the cached compile result for `t1 ⊆ t2` without compiling.
    ///
    /// Outer `None` means the pair has never been compiled; `Some(None)`
    /// means it was compiled and found outside the compilable class. The
    /// condition is shared (`Arc`), so callers can evaluate it after
    /// releasing any lock guarding the matrix.
    pub fn lookup(&self, t1: &Template, t2: &Template) -> Option<Option<Arc<CompiledCondition>>> {
        self.compiled.get(&(t1.id().clone(), t2.id().clone())).cloned()
    }

    /// Records a compile result for `t1 ⊆ t2` (see
    /// [`CrossTemplateMatrix::compile_pair`]). Compilation is a pure
    /// function of the templates, so concurrent duplicate inserts are
    /// benign: last writer wins with an identical value.
    pub fn insert(&mut self, t1: &Template, t2: &Template, cond: Option<Arc<CompiledCondition>>) {
        self.compiled.insert((t1.id().clone(), t2.id().clone()), cond);
    }

    /// Compiles the Proposition 2 condition for a template pair without
    /// touching any cache — the building block for callers that keep the
    /// matrix behind a lock and want to compile outside it.
    pub fn compile_pair(t1: &Template, t2: &Template) -> Option<Arc<CompiledCondition>> {
        compile(t1, t2).map(Arc::new)
    }

    /// Number of cached template pairs.
    pub fn len(&self) -> usize {
        self.compiled.len()
    }

    /// True when nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.compiled.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{filter_contained, Containment};

    fn check(q: &str, s: &str) -> Option<bool> {
        let fq = Filter::parse(q).unwrap();
        let fs = Filter::parse(s).unwrap();
        let (tq, vq) = Template::of(&fq);
        let (ts, vs) = Template::of(&fs);
        compile(&tq, &ts).map(|cond| cond.eval(&vq, &vs))
    }

    #[test]
    fn equality_vs_prefix() {
        assert_eq!(check("(serialNumber=045612)", "(serialNumber=0456*)"), Some(true));
        assert_eq!(check("(serialNumber=995612)", "(serialNumber=0456*)"), Some(false));
    }

    #[test]
    fn equality_vs_range() {
        assert_eq!(check("(age=40)", "(age>=30)"), Some(true));
        assert_eq!(check("(age=20)", "(age>=30)"), Some(false));
        assert_eq!(check("(age=20)", "(age<=30)"), Some(true));
    }

    #[test]
    fn conjunctive_cross() {
        assert_eq!(
            check(
                "(&(objectclass=inetOrgPerson)(departmentNumber=2406))",
                "(&(objectclass=inetOrgPerson)(departmentNumber=240*))"
            ),
            Some(true)
        );
        assert_eq!(
            check(
                "(&(objectclass=inetOrgPerson)(departmentNumber=2506))",
                "(&(objectclass=inetOrgPerson)(departmentNumber=240*))"
            ),
            Some(false)
        );
    }

    #[test]
    fn stored_narrower_than_query() {
        // Stored (sn=_) cannot answer (sn=_*) queries.
        assert_eq!(check("(sn=do*)", "(sn=doe)"), Some(false));
    }

    #[test]
    fn missing_attribute_compiles_to_never() {
        let fq = Filter::parse("(sn=doe)").unwrap();
        let fs = Filter::parse("(&(sn=doe)(ou=research))").unwrap();
        let (tq, _) = Template::of(&fq);
        let (ts, _) = Template::of(&fs);
        let cond = compile(&tq, &ts).unwrap();
        assert!(cond.is_never());
        assert!(!cond.eval(&[], &[]));
    }

    #[test]
    fn presence_in_stored_query() {
        // Stored (&(objectclass=*)(dept=_)) answers queries that constrain
        // objectclass somehow — presence clauses become constant-true.
        assert_eq!(
            check("(&(objectclass=person)(dept=2406))", "(&(objectclass=*)(dept=2406))"),
            Some(true)
        );
        assert_eq!(
            check("(&(objectclass=person)(dept=2406))", "(&(objectclass=*)(dept=9999))"),
            Some(false)
        );
        // A query not constraining objectclass at all is (formally) not
        // contained: an entry without objectclass could match it.
        assert_eq!(check("(dept=2406)", "(&(objectclass=*)(dept=2406))"), Some(false));
    }

    #[test]
    fn unsupported_templates_return_none() {
        assert_eq!(check("(|(a=1)(b=2))", "(a=1)"), None);
        assert_eq!(check("(a=1)", "(!(b=2))"), None);
        assert_eq!(check("(a=*1*)", "(a=*1*)"), None); // non-prefix substring
    }

    #[test]
    fn matrix_caches_by_pair() {
        let f1 = Filter::parse("(sn=doe)").unwrap();
        let f2 = Filter::parse("(sn=do*)").unwrap();
        let (t1, _) = Template::of(&f1);
        let (t2, _) = Template::of(&f2);
        let mut m = CrossTemplateMatrix::new();
        assert!(m.is_empty());
        assert!(m.condition(&t1, &t2).is_some());
        assert_eq!(m.len(), 1);
        assert!(m.condition(&t1, &t2).is_some());
        assert_eq!(m.len(), 1);
        assert!(m.condition(&t2, &t1).is_some());
        assert_eq!(m.len(), 2);
    }

    /// The compiled condition must agree with the general procedure
    /// wherever the general procedure is decisive.
    #[test]
    fn agrees_with_general_procedure() {
        let cases = [
            ("(a=5)", "(a>=3)"),
            ("(a=2)", "(a>=3)"),
            ("(a>=5)", "(a>=3)"),
            ("(a>=2)", "(a>=3)"),
            ("(a<=5)", "(a<=9)"),
            ("(a<=5)", "(a<=3)"),
            ("(sn=smith)", "(sn=smi*)"),
            ("(sn=smith)", "(sn=smx*)"),
            ("(sn=smit*)", "(sn=smi*)"),
            ("(sn=smi*)", "(sn=smit*)"),
            ("(&(a=1)(b=2))", "(a=1)"),
            ("(&(a=1)(b=2))", "(b=2)"),
            ("(a=1)", "(&(a=1)(b=2))"),
            ("(&(a=5)(b=xyzzy))", "(&(a>=1)(b=xyz*))"),
        ];
        for (q, s) in cases {
            let Some(fast) = check(q, s) else { continue };
            let general = filter_contained(&Filter::parse(q).unwrap(), &Filter::parse(s).unwrap());
            match general {
                Containment::Yes => assert!(fast, "compiled says no, general says yes: {q} ⊆ {s}"),
                Containment::No => assert!(!fast, "compiled says yes, general says no: {q} ⊆ {s}"),
                Containment::Unknown => {
                    assert!(!fast, "compiled must stay sound on unknowns: {q} ⊆ {s}")
                }
            }
        }
    }
}
