//! Same-template containment — Proposition 3.
//!
//! Two positive filters of the same template differ only in assertion
//! values; `F1 ⊆ F2` holds if each predicate of `F1` is contained in the
//! corresponding predicate of `F2`. The check is O(n) in the number of
//! predicates and fully avoids the DNF machinery.

use fbdr_ldap::{AttrValue, Comparison, Filter, Predicate, SubstringPattern};

/// Slot-by-slot containment for two filters of the *same template*.
///
/// Returns `true` when containment is established; `false` means "not
/// established by this fast path" (the filters may still be related in ways
/// only the general procedure detects, e.g. across `Or` branches).
///
/// For `Not` sub-filters the comparison direction flips (`¬a ⊆ ¬b` iff
/// `b ⊆ a`), which keeps the check sound beyond the paper's positive-filter
/// statement.
///
/// # Panics
///
/// Does not panic, but silently returns `false` when the filters do not
/// share a structure — callers are expected to have matched
/// [`TemplateId`](fbdr_ldap::TemplateId)s first.
pub fn same_template_contained(f1: &Filter, f2: &Filter) -> bool {
    walk(f1, f2, false)
}

fn walk(f1: &Filter, f2: &Filter, flipped: bool) -> bool {
    match (f1, f2) {
        (Filter::And(a), Filter::And(b)) | (Filter::Or(a), Filter::Or(b)) => {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| walk(x, y, flipped))
        }
        (Filter::Not(a), Filter::Not(b)) => walk(a, b, !flipped),
        (Filter::Pred(p1), Filter::Pred(p2)) => {
            if flipped {
                pred_contained(p2, p1)
            } else {
                pred_contained(p1, p2)
            }
        }
        _ => false,
    }
}

/// Predicate-level containment for same-kind predicates.
fn pred_contained(p1: &Predicate, p2: &Predicate) -> bool {
    if p1.attr() != p2.attr() {
        return false;
    }
    match (p1.comparison(), p2.comparison()) {
        (Comparison::Eq(x), Comparison::Eq(y)) => x == y,
        (Comparison::Ge(x), Comparison::Ge(y)) => range_implies_ge(x, y),
        (Comparison::Le(x), Comparison::Le(y)) => range_implies_le(x, y),
        (Comparison::Present, Comparison::Present) => true,
        (Comparison::Substring(a), Comparison::Substring(b)) => substring_implies(a, b),
        _ => false,
    }
}

/// Every value satisfying `(a>=x)` also satisfies `(a>=y)`.
///
/// With typed range semantics this requires the two assertions to be of the
/// same type: integer/integer compares numerically, string/string
/// lexicographically, and mixed types never imply each other (an integer
/// range admits only integers, which need not satisfy a lexicographic
/// bound, and vice versa).
pub(crate) fn range_implies_ge(x: &AttrValue, y: &AttrValue) -> bool {
    match (x.as_int(), y.as_int()) {
        (Some(a), Some(b)) => a >= b,
        (None, None) => x.normalized() >= y.normalized(),
        _ => false,
    }
}

/// Every value satisfying `(a<=x)` also satisfies `(a<=y)`.
pub(crate) fn range_implies_le(x: &AttrValue, y: &AttrValue) -> bool {
    match (x.as_int(), y.as_int()) {
        (Some(a), Some(b)) => a <= b,
        (None, None) => x.normalized() <= y.normalized(),
        _ => false,
    }
}

/// Every string matching pattern `a` also matches pattern `b`, given both
/// patterns have the same star shape (same template).
pub(crate) fn substring_implies(a: &SubstringPattern, b: &SubstringPattern) -> bool {
    let init_ok = match (a.initial(), b.initial()) {
        (Some(ai), Some(bi)) => ai.starts_with(bi),
        (None, None) => true,
        _ => return false,
    };
    let fin_ok = match (a.final_part(), b.final_part()) {
        (Some(af), Some(bf)) => af.ends_with(bf),
        (None, None) => true,
        _ => return false,
    };
    init_ok
        && fin_ok
        && a.any().len() == b.any().len()
        && a.any().iter().zip(b.any()).all(|(x, y)| x.contains(y.as_str()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(f1: &str, f2: &str) -> bool {
        same_template_contained(&Filter::parse(f1).unwrap(), &Filter::parse(f2).unwrap())
    }

    #[test]
    fn equality_slots() {
        assert!(c("(sn=Doe)", "(sn=Doe)"));
        assert!(!c("(sn=Doe)", "(sn=Smith)"));
        assert!(c("(&(sn=Doe)(givenName=John))", "(&(sn=Doe)(givenName=John))"));
        assert!(!c("(&(sn=Doe)(givenName=John))", "(&(sn=Doe)(givenName=Jane))"));
    }

    #[test]
    fn prefix_slots() {
        assert!(c("(serialNumber=0456*)", "(serialNumber=045*)"));
        assert!(!c("(serialNumber=045*)", "(serialNumber=0456*)"));
        assert!(c("(serialNumber=0456*)", "(serialNumber=0456*)"));
    }

    #[test]
    fn suffix_and_middle_slots() {
        assert!(c("(mail=*@us.xyz.com)", "(mail=*xyz.com)"));
        assert!(!c("(mail=*xyz.com)", "(mail=*@us.xyz.com)"));
        assert!(c("(cn=*john smith*)", "(cn=*smith*)"));
        assert!(!c("(cn=*smith*)", "(cn=*john smith*)"));
    }

    #[test]
    fn range_slots() {
        assert!(c("(age>=40)", "(age>=30)"));
        assert!(!c("(age>=30)", "(age>=40)"));
        assert!(c("(age<=30)", "(age<=40)"));
        assert!(!c("(age<=40)", "(age<=30)"));
        // Mixed-type assertions never imply.
        assert!(!c("(age>=40)", "(age>=abc)"));
    }

    #[test]
    fn or_shape_componentwise() {
        assert!(c("(|(a>=5)(b=1))", "(|(a>=3)(b=1))"));
        assert!(!c("(|(a>=3)(b=1))", "(|(a>=5)(b=1))"));
    }

    #[test]
    fn not_flips_direction() {
        // ¬(a>=3) ⊆ ¬(a>=5) iff (a>=5) ⊆ (a>=3): yes.
        assert!(!c("(!(a>=5))", "(!(a>=3))"));
        assert!(c("(!(a>=3))", "(!(a>=5))"));
        assert!(c("(&(b=1)(!(a>=3)))", "(&(b=1)(!(a>=5)))"));
    }

    #[test]
    fn different_shapes_rejected() {
        assert!(!c("(sn=Doe)", "(&(sn=Doe)(a=1))"));
        assert!(!c("(sn=do*)", "(sn=*do)"));
        assert!(!c("(sn=Doe)", "(sn=do*)")); // cross-kind is not this path's job
    }
}
