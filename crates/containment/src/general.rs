//! The general filter-containment decision procedure (Proposition 1).

use crate::nnf::{to_dnf, to_nnf, Nnf};
use crate::sat::{conjunct_sat, Sat};
use crate::Containment;
use fbdr_ldap::Filter;

/// Cap on the DNF expansion of `F1 ∧ ¬F2`; beyond it the check answers
/// `Unknown`. Filters in practice come from small templates, far below this.
const DNF_CAP: usize = 512;

/// Decides whether `f1` is semantically contained in `f2` — every entry
/// matching `f1` also matches `f2` (Proposition 1: `F1 ∧ ¬F2` must be
/// unsatisfiable).
///
/// The result is three-valued: [`Containment::Unknown`] is returned when
/// the satisfiability reasoning cannot decide (treat as "not contained"
/// when answering from a cache). `Yes` and `No` are definite.
///
/// ```
/// use fbdr_containment::{filter_contained, Containment};
/// use fbdr_ldap::Filter;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f1 = Filter::parse("(&(sn=Doe)(age>=40))")?;
/// let f2 = Filter::parse("(age>=30)")?;
/// assert_eq!(filter_contained(&f1, &f2), Containment::Yes);
/// # Ok(())
/// # }
/// ```
pub fn filter_contained(f1: &Filter, f2: &Filter) -> Containment {
    let combined = Nnf::And(vec![to_nnf(f1, false), to_nnf(f2, true)]);
    let Some(dnf) = to_dnf(&combined, DNF_CAP) else {
        return Containment::Unknown;
    };
    let mut unknown = false;
    for conjunct in &dnf {
        match conjunct_sat(conjunct) {
            Sat::Sat => return Containment::No,
            Sat::Unknown => unknown = true,
            Sat::Unsat => {}
        }
    }
    if unknown {
        Containment::Unknown
    } else {
        Containment::Yes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(f1: &str, f2: &str) -> Containment {
        filter_contained(&Filter::parse(f1).unwrap(), &Filter::parse(f2).unwrap())
    }

    #[test]
    fn reflexive() {
        for f in ["(sn=Doe)", "(&(a=1)(b=2))", "(|(a=1)(b=2))", "(sn=smi*)", "(a>=3)"] {
            assert_eq!(c(f, f), Containment::Yes, "{f} ⊆ {f}");
        }
    }

    #[test]
    fn equality_in_equality() {
        assert_eq!(c("(sn=Doe)", "(sn=Doe)"), Containment::Yes);
        assert_eq!(c("(sn=Doe)", "(sn=Smith)"), Containment::No);
        // Normalized comparison.
        assert_eq!(c("(sn=doe)", "(sn=DOE)"), Containment::Yes);
    }

    #[test]
    fn conjunction_weakening() {
        assert_eq!(c("(&(sn=Doe)(givenName=John))", "(sn=Doe)"), Containment::Yes);
        assert_eq!(c("(sn=Doe)", "(&(sn=Doe)(givenName=John))"), Containment::No);
    }

    #[test]
    fn disjunction_widening() {
        assert_eq!(c("(sn=Doe)", "(|(sn=Doe)(sn=Smith))"), Containment::Yes);
        assert_eq!(c("(|(sn=Doe)(sn=Smith))", "(sn=Doe)"), Containment::No);
        assert_eq!(
            c("(|(sn=Doe)(sn=Smith))", "(|(sn=Smith)(sn=Doe)(sn=Jones))"),
            Containment::Yes
        );
    }

    #[test]
    fn paper_example_age() {
        // (age=X) is answered by (age>=Y) iff Y <= X.
        assert_eq!(c("(age=40)", "(age>=30)"), Containment::Yes);
        assert_eq!(c("(age=30)", "(age>=30)"), Containment::Yes);
        assert_eq!(c("(age=20)", "(age>=30)"), Containment::No);
    }

    #[test]
    fn paper_proposition2_example() {
        // F1 = (a>=p)∧(b<=q), F2 = (a=x)∨(b<=y); contained iff q <= y
        // (the (a=x) disjunct can never cover a range on a).
        assert_eq!(c("(&(a>=5)(b<=10))", "(|(a=5)(b<=20))"), Containment::Yes);
        assert_eq!(c("(&(a>=5)(b<=10))", "(|(a=5)(b<=10))"), Containment::Yes);
        assert_eq!(c("(&(a>=5)(b<=10))", "(|(a=5)(b<=9))"), Containment::No);
    }

    #[test]
    fn range_containment() {
        assert_eq!(c("(a>=5)", "(a>=3)"), Containment::Yes);
        assert_eq!(c("(a>=3)", "(a>=5)"), Containment::No);
        assert_eq!(c("(a<=3)", "(a<=5)"), Containment::Yes);
        assert_eq!(c("(a<=5)", "(a<=3)"), Containment::No);
        assert_eq!(c("(&(a>=3)(a<=5))", "(&(a>=2)(a<=6))"), Containment::Yes);
        assert_eq!(c("(&(a>=2)(a<=6))", "(&(a>=3)(a<=5))"), Containment::No);
    }

    #[test]
    fn substring_containment() {
        assert_eq!(c("(serialNumber=0456*)", "(serialNumber=045*)"), Containment::Yes);
        assert_eq!(c("(serialNumber=045*)", "(serialNumber=0456*)"), Containment::No);
        assert_eq!(c("(serialNumber=045612)", "(serialNumber=0456*)"), Containment::Yes);
        assert_eq!(c("(serialNumber=0456*)", "(serialNumber=045612)"), Containment::No);
        assert_eq!(c("(sn=*son)", "(sn=*on)"), Containment::Yes);
        assert_eq!(c("(mail=*@us.xyz.com)", "(mail=*xyz.com)"), Containment::Yes);
    }

    #[test]
    fn presence_is_weakest_on_attribute() {
        assert_eq!(c("(sn=Doe)", "(sn=*)"), Containment::Yes);
        assert_eq!(c("(sn=smi*)", "(sn=*)"), Containment::Yes);
        assert_eq!(c("(a>=3)", "(a=*)"), Containment::Yes);
        assert_eq!(c("(sn=*)", "(sn=Doe)"), Containment::No);
    }

    #[test]
    fn everything_contained_in_objectclass_star() {
        // (objectclass=*) can only answer filters that *require* an
        // objectclass value — which positive filters on other attributes
        // do not. (In a real DIT every entry has objectclass, but filter
        // containment is decided over all possible entries.)
        assert_eq!(c("(objectclass=person)", "(objectclass=*)"), Containment::Yes);
        assert_eq!(
            c("(&(objectclass=person)(sn=Doe))", "(objectclass=*)"),
            Containment::Yes
        );
    }

    #[test]
    fn negation_handling() {
        assert_eq!(c("(&(a=1)(!(b=2)))", "(a=1)"), Containment::Yes);
        // Multi-valued semantics: {a: 1, 2} matches (a=1) but not ¬(a=2),
        // so (a=1) is NOT contained in (!(a=2)).
        assert_eq!(c("(a=1)", "(!(a=2))"), Containment::No);
        assert_eq!(c("(a=1)", "(!(a=1))"), Containment::No);
        assert_eq!(c("(!(a=1))", "(!(a=1))"), Containment::Yes);
        // ¬(a=1) does not contain ¬(a=2).
        assert_eq!(c("(!(a=1))", "(!(a=2))"), Containment::No);
        // Double negation.
        assert_eq!(c("(!(!(a=1)))", "(a=1)"), Containment::Yes);
    }

    #[test]
    fn multivalued_soundness_cases() {
        // (&(a=1)(a=2)) is satisfiable with multi-valued a, so it is NOT
        // vacuously contained in an unrelated filter.
        assert_eq!(c("(&(a=1)(a=2))", "(b=3)"), Containment::No);
        // But it is contained in each of its conjuncts.
        assert_eq!(c("(&(a=1)(a=2))", "(a=1)"), Containment::Yes);
        assert_eq!(c("(&(a=1)(a=2))", "(|(a=1)(a=3))"), Containment::Yes);
    }

    #[test]
    fn department_generalization_from_paper() {
        // §3.1.2: dept 2406/2407 queries answered by the 240* filter.
        let stored = "(&(objectclass=inetOrgPerson)(departmentNumber=240*))";
        assert_eq!(
            c("(&(objectclass=inetOrgPerson)(departmentNumber=2406))", stored),
            Containment::Yes
        );
        assert_eq!(
            c("(&(objectclass=inetOrgPerson)(departmentNumber=2407))", stored),
            Containment::Yes
        );
        assert_eq!(
            c("(&(objectclass=inetOrgPerson)(departmentNumber=2506))", stored),
            Containment::No
        );
    }

    #[test]
    fn cross_attribute_no_containment() {
        assert_eq!(c("(a=1)", "(b=1)"), Containment::No);
    }

    #[test]
    fn unknown_collapses_safely() {
        assert!(!Containment::Unknown.is_contained());
        assert!(Containment::Yes.is_contained());
        assert!(!Containment::No.is_contained());
    }
}
