//! Negation normal form and DNF expansion of filters.
//!
//! `F1 ∧ ¬F2` is rewritten into a disjunction of conjunctions of literals,
//! where a literal is a possibly-negated simple predicate. Under LDAP's
//! multi-valued attribute semantics a positive literal is existential
//! ("some value of the attribute satisfies the comparison") and a negated
//! literal is universal ("no value satisfies it").

use fbdr_ldap::{Filter, Predicate};

/// A possibly-negated predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Lit {
    pub pred: Predicate,
    pub negated: bool,
}

/// Filters in negation normal form.
#[derive(Debug, Clone)]
pub(crate) enum Nnf {
    And(Vec<Nnf>),
    Or(Vec<Nnf>),
    Lit(Lit),
}

/// Converts a filter to NNF, optionally negating it first.
pub(crate) fn to_nnf(f: &Filter, negate: bool) -> Nnf {
    match f {
        Filter::And(fs) => {
            let subs = fs.iter().map(|s| to_nnf(s, negate)).collect();
            if negate {
                Nnf::Or(subs)
            } else {
                Nnf::And(subs)
            }
        }
        Filter::Or(fs) => {
            let subs = fs.iter().map(|s| to_nnf(s, negate)).collect();
            if negate {
                Nnf::And(subs)
            } else {
                Nnf::Or(subs)
            }
        }
        Filter::Not(sub) => to_nnf(sub, !negate),
        Filter::Pred(p) => Nnf::Lit(Lit { pred: p.clone(), negated: negate }),
    }
}

/// Expands NNF into DNF: a list of conjunctions of literals. Returns `None`
/// when the expansion would exceed `cap` conjuncts (caller should answer
/// `Unknown`).
pub(crate) fn to_dnf(n: &Nnf, cap: usize) -> Option<Vec<Vec<Lit>>> {
    match n {
        Nnf::Lit(l) => Some(vec![vec![l.clone()]]),
        Nnf::Or(subs) => {
            let mut out = Vec::new();
            for s in subs {
                out.extend(to_dnf(s, cap)?);
                if out.len() > cap {
                    return None;
                }
            }
            Some(out)
        }
        Nnf::And(subs) => {
            let mut acc: Vec<Vec<Lit>> = vec![Vec::new()];
            for s in subs {
                let d = to_dnf(s, cap)?;
                let mut next = Vec::with_capacity(acc.len() * d.len());
                for a in &acc {
                    for b in &d {
                        let mut c = a.clone();
                        c.extend(b.iter().cloned());
                        next.push(c);
                    }
                }
                if next.len() > cap {
                    return None;
                }
                acc = next;
            }
            Some(acc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(s: &str) -> Filter {
        Filter::parse(s).unwrap()
    }

    #[test]
    fn nnf_pushes_negation_inward() {
        let n = to_nnf(&f("(!(&(a=1)(b=2)))"), false);
        match n {
            Nnf::Or(subs) => {
                assert_eq!(subs.len(), 2);
                for s in subs {
                    match s {
                        Nnf::Lit(l) => assert!(l.negated),
                        other => panic!("expected literal, got {other:?}"),
                    }
                }
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn double_negation_cancels() {
        let n = to_nnf(&f("(!(!(a=1)))"), false);
        match n {
            Nnf::Lit(l) => assert!(!l.negated),
            other => panic!("expected literal, got {other:?}"),
        }
    }

    #[test]
    fn dnf_of_conjunction_of_disjunctions() {
        // (a=1 | a=2) & (b=1 | b=2) -> 4 conjuncts of 2 literals.
        let n = to_nnf(&f("(&(|(a=1)(a=2))(|(b=1)(b=2)))"), false);
        let d = to_dnf(&n, 100).unwrap();
        assert_eq!(d.len(), 4);
        assert!(d.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn dnf_cap_returns_none() {
        // 2^6 = 64 conjuncts > 10.
        let big = "(&(|(a=1)(a=2))(|(b=1)(b=2))(|(c=1)(c=2))(|(d=1)(d=2))(|(e=1)(e=2))(|(g=1)(g=2)))";
        let n = to_nnf(&f(big), false);
        assert!(to_dnf(&n, 10).is_none());
    }
}
