//! The semantic query containment algorithm `QC(Q, Qs)` (§4 of the paper).

use crate::{filter_contained, Containment};
use fbdr_ldap::{Dn, Scope, SearchRequest};

/// Checks whether the base/scope region of `(b, s)` lies inside the region
/// of `(bs, ss)` — conditions (i) of semantic query containment, exactly
/// the control flow of the paper's `QC` pseudocode.
pub fn region_contained(b: &Dn, s: Scope, bs: &Dn, ss: Scope) -> bool {
    if bs == b && (ss == s || ss == Scope::Subtree) {
        // Same base: contained for equal scopes or a SUBTREE superquery.
        // (BASE is *not* inside ONE-LEVEL: one-level excludes the base.)
        return true;
    }
    if !bs.is_ancestor_or_self_of(b) {
        return false;
    }
    if ss == Scope::Subtree {
        return true;
    }
    // ss ∈ {Base, OneLevel} with bs a (proper or improper) ancestor of b:
    // the only remaining containment is a BASE query at a child of a
    // SINGLE-LEVEL query's base.
    ss > s && bs.is_parent_of(b)
}

/// `QC(Q, Qs)`: true when query `Q` is semantically contained in `Qs` —
/// its base/scope region lies inside `Qs`'s, its requested attributes are
/// a subset, and its filter is contained in `Qs`'s filter.
///
/// The filter check uses the general decision procedure
/// ([`filter_contained`]); `Unknown` results count as *not contained*,
/// which keeps replicas sound. Template-aware callers should prefer
/// [`ContainmentEngine::query_contained`](crate::ContainmentEngine::query_contained),
/// which dispatches to the cheaper Proposition 2/3 paths first.
///
/// ```
/// use fbdr_containment::query_contained;
/// use fbdr_ldap::{Filter, Scope, SearchRequest};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stored = SearchRequest::new(
///     "o=xyz".parse()?,
///     Scope::Subtree,
///     Filter::parse("(serialNumber=0456*)")?,
/// );
/// let query = SearchRequest::new(
///     "c=us,o=xyz".parse()?,
///     Scope::Subtree,
///     Filter::parse("(serialNumber=045612)")?,
/// );
/// assert!(query_contained(&query, &stored));
/// assert!(!query_contained(&stored, &query));
/// # Ok(())
/// # }
/// ```
pub fn query_contained(q: &SearchRequest, qs: &SearchRequest) -> bool {
    region_contained(q.base(), q.scope(), qs.base(), qs.scope())
        && q.attrs().is_subset_of(qs.attrs())
        && filter_contained(q.filter(), qs.filter()) == Containment::Yes
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbdr_ldap::{AttrSelection, Filter};

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn req(base: &str, scope: Scope, filter: &str) -> SearchRequest {
        SearchRequest::new(dn(base), scope, Filter::parse(filter).unwrap())
    }

    #[test]
    fn region_same_base() {
        let b = dn("o=xyz");
        assert!(region_contained(&b, Scope::Base, &b, Scope::Base));
        assert!(region_contained(&b, Scope::Base, &b, Scope::Subtree));
        assert!(region_contained(&b, Scope::OneLevel, &b, Scope::Subtree));
        assert!(!region_contained(&b, Scope::Subtree, &b, Scope::OneLevel));
        assert!(!region_contained(&b, Scope::OneLevel, &b, Scope::Base));
        // BASE is not inside ONE-LEVEL at the same base (one-level
        // excludes the base entry itself).
        assert!(!region_contained(&b, Scope::Base, &b, Scope::OneLevel));
    }

    #[test]
    fn region_descendant_base() {
        let root = dn("o=xyz");
        let child = dn("c=us,o=xyz");
        let deep = dn("cn=x,ou=r,c=us,o=xyz");
        assert!(region_contained(&deep, Scope::Subtree, &root, Scope::Subtree));
        assert!(region_contained(&child, Scope::Base, &root, Scope::OneLevel));
        assert!(!region_contained(&child, Scope::OneLevel, &root, Scope::OneLevel));
        assert!(!region_contained(&deep, Scope::Base, &root, Scope::OneLevel));
        assert!(!region_contained(&root, Scope::Base, &child, Scope::Subtree));
    }

    #[test]
    fn region_disjoint_bases() {
        assert!(!region_contained(
            &dn("c=in,o=xyz"),
            Scope::Base,
            &dn("c=us,o=xyz"),
            Scope::Subtree
        ));
    }

    #[test]
    fn full_qc_with_filters() {
        let stored = req("o=xyz", Scope::Subtree, "(serialNumber=0456*)");
        assert!(query_contained(&req("o=xyz", Scope::Subtree, "(serialNumber=045612)"), &stored));
        assert!(query_contained(
            &req("c=us,o=xyz", Scope::Subtree, "(serialNumber=04567*)"),
            &stored
        ));
        assert!(!query_contained(&req("o=xyz", Scope::Subtree, "(serialNumber=0756*)"), &stored));
        assert!(!query_contained(&req("o=abc", Scope::Subtree, "(serialNumber=045612)"), &stored));
    }

    #[test]
    fn attribute_subset_condition() {
        let stored = SearchRequest::with_attrs(
            dn("o=xyz"),
            Scope::Subtree,
            Filter::parse("(sn=*)").unwrap(),
            AttrSelection::list(["cn", "mail"]),
        );
        let ok = SearchRequest::with_attrs(
            dn("o=xyz"),
            Scope::Subtree,
            Filter::parse("(sn=doe)").unwrap(),
            AttrSelection::list(["cn"]),
        );
        let too_wide = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::parse("(sn=doe)").unwrap());
        assert!(query_contained(&ok, &stored));
        assert!(!query_contained(&too_wide, &stored)); // requests all attrs
    }

    #[test]
    fn null_based_query_needs_null_based_stored(){
        // §3.1.1: queries with base "" can only be answered by stored
        // queries replicated from the root.
        let stored_root = req("", Scope::Subtree, "(uid=*)");
        let stored_sub = req("o=xyz", Scope::Subtree, "(uid=*)");
        let q = req("", Scope::Subtree, "(uid=jdoe)");
        assert!(query_contained(&q, &stored_root));
        assert!(!query_contained(&q, &stored_sub));
    }
}
