//! The containment engine: template-aware dispatch between the three
//! containment algorithms, with the statistics behind §7.4.

use crate::cross_template::{CompiledCondition, CrossTemplateMatrix};
use crate::qc::region_contained;
use crate::same_template::same_template_contained;
use crate::{filter_contained, Containment};
use fbdr_ldap::{AttrValue, Filter, SearchRequest, Template};
use fbdr_obs::{event, Counter, Histogram, MetricsRegistry, Obs};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Counters for the work performed by a [`ContainmentEngine`] — the query
/// processing overhead the paper studies in §7.4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Checks answered by the O(n) same-template fast path (Prop 3).
    pub same_template: u64,
    /// Checks answered by a compiled cross-template condition (Prop 2).
    pub compiled: u64,
    /// Checks skipped outright because the pair compiled to *never*.
    pub skipped_never: u64,
    /// Checks that fell back to the general procedure (Prop 1).
    pub general: u64,
}

impl EngineStats {
    /// Total containment checks dispatched.
    pub fn total(&self) -> u64 {
        self.same_template + self.compiled + self.skipped_never + self.general
    }
}

/// Interior-mutable work counters, so counting does not force `&mut self`
/// onto the read path. All updates use relaxed ordering: the counters are
/// monotonic tallies with no ordering relationship to any other data.
///
/// When the engine is built with [`ContainmentEngine::with_obs`] these
/// counters are the registry's `fbdr_containment_*_total` metrics — one
/// source, so [`ContainmentEngine::stats`] and the metrics export cannot
/// disagree.
#[derive(Debug)]
struct EngineCounters {
    same_template: Arc<Counter>,
    compiled: Arc<Counter>,
    skipped_never: Arc<Counter>,
    general: Arc<Counter>,
}

impl Default for EngineCounters {
    fn default() -> Self {
        EngineCounters {
            same_template: Arc::new(Counter::new()),
            compiled: Arc::new(Counter::new()),
            skipped_never: Arc::new(Counter::new()),
            general: Arc::new(Counter::new()),
        }
    }
}

impl EngineCounters {
    fn bound(registry: &MetricsRegistry) -> Self {
        EngineCounters {
            same_template: registry.counter("fbdr_containment_same_template_total"),
            compiled: registry.counter("fbdr_containment_compiled_total"),
            skipped_never: registry.counter("fbdr_containment_skipped_never_total"),
            general: registry.counter("fbdr_containment_general_total"),
        }
    }

    fn snapshot(&self) -> EngineStats {
        EngineStats {
            same_template: self.same_template.get(),
            compiled: self.compiled.get(),
            skipped_never: self.skipped_never.get(),
            general: self.general.get(),
        }
    }

    fn reset(&self) {
        self.same_template.reset();
        self.compiled.reset();
        self.skipped_never.reset();
        self.general.reset();
    }
}

/// A query prepared for repeated containment checks: the request plus its
/// extracted template and assertion values.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    request: SearchRequest,
    template: Template,
    values: Vec<AttrValue>,
}

impl PreparedQuery {
    /// Extracts the template and values of a request.
    pub fn new(request: SearchRequest) -> Self {
        let (template, values) = Template::of(request.filter());
        PreparedQuery { request, template, values }
    }

    /// The underlying search request.
    pub fn request(&self) -> &SearchRequest {
        &self.request
    }

    /// The query's template.
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// The assertion values in slot order.
    pub fn values(&self) -> &[AttrValue] {
        &self.values
    }
}

/// Template-aware containment dispatcher.
///
/// Routes each check to the cheapest applicable algorithm:
///
/// 1. identical template → Proposition 3 slot comparison,
/// 2. compiled template pair → Proposition 2 CNF evaluation (or an
///    immediate *never*),
/// 3. otherwise → the general Proposition 1 procedure.
///
/// Every check takes `&self`, so one engine can serve concurrent readers:
/// the compiled-condition cache sits behind a [`RwLock`] that is held only
/// to look up or record an `Arc`'d condition — compilation itself and CNF
/// evaluation run outside the lock. Compilation is deterministic, so a
/// race between two threads compiling the same pair wastes a little work
/// but cannot produce divergent cache contents.
///
/// ```
/// use fbdr_containment::{ContainmentEngine, PreparedQuery};
/// use fbdr_ldap::{Filter, Scope, SearchRequest};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let engine = ContainmentEngine::new();
/// let stored = PreparedQuery::new(SearchRequest::new(
///     "o=xyz".parse()?, Scope::Subtree, Filter::parse("(serialNumber=0456*)")?,
/// ));
/// let query = PreparedQuery::new(SearchRequest::new(
///     "o=xyz".parse()?, Scope::Subtree, Filter::parse("(serialNumber=045612)")?,
/// ));
/// assert!(engine.query_contained(&query, &stored));
/// assert_eq!(engine.stats().compiled, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ContainmentEngine {
    matrix: RwLock<CrossTemplateMatrix>,
    counters: EngineCounters,
    obs: Obs,
    /// Pre-resolved `fbdr_containment_check_ns` histogram; `None` on an
    /// unobserved engine, so the uninstrumented check costs one branch.
    check_hist: Option<Arc<Histogram>>,
}

impl Default for ContainmentEngine {
    fn default() -> Self {
        ContainmentEngine {
            matrix: RwLock::new(CrossTemplateMatrix::new()),
            counters: EngineCounters::default(),
            obs: Obs::off(),
            check_hist: None,
        }
    }
}

impl ContainmentEngine {
    /// Creates an engine with an empty compiled-condition cache.
    pub fn new() -> Self {
        ContainmentEngine::default()
    }

    /// Creates an observed engine: work counters live in the registry as
    /// `fbdr_containment_*_total`, every dispatched check is timed into
    /// the `fbdr_containment_check_ns` histogram, and each decision emits
    /// a `containment.decision` trace event when a subscriber is
    /// installed. With [`Obs::off`] this is identical to
    /// [`ContainmentEngine::new`].
    pub fn with_obs(obs: Obs) -> Self {
        if !obs.is_active() {
            return ContainmentEngine::default();
        }
        ContainmentEngine {
            matrix: RwLock::new(CrossTemplateMatrix::new()),
            counters: EngineCounters::bound(obs.registry()),
            check_hist: Some(obs.registry().histogram("fbdr_containment_check_ns")),
            obs,
        }
    }

    /// The observability handle this engine records through.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Work counters accumulated so far. Relaxed-ordering tallies: exact
    /// once all concurrent checks have finished, monotonic while they run.
    pub fn stats(&self) -> EngineStats {
        self.counters.snapshot()
    }

    /// Resets the work counters (the compiled cache is kept).
    pub fn reset_stats(&self) {
        self.counters.reset();
    }

    /// Number of compiled template pairs cached.
    pub fn compiled_pairs(&self) -> usize {
        self.matrix.read().len()
    }

    /// Template-aware filter containment: is `q`'s filter contained in
    /// `s`'s filter?
    pub fn filter_contained(&self, q: &PreparedQuery, s: &PreparedQuery) -> bool {
        let start = self.check_hist.as_ref().map(|_| Instant::now());
        let (path, contained) = if q.template.id() == s.template.id() {
            self.counters.same_template.inc();
            (
                "same_template",
                same_template_contained(q.request.filter(), s.request.filter()),
            )
        } else if let Some(cond) = self.condition_for(&q.template, &s.template) {
            if cond.is_never() {
                self.counters.skipped_never.inc();
                ("skipped_never", false)
            } else {
                self.counters.compiled.inc();
                ("compiled", cond.eval(&q.values, &s.values))
            }
        } else {
            self.counters.general.inc();
            (
                "general",
                filter_contained(q.request.filter(), s.request.filter()) == Containment::Yes,
            )
        };
        if let (Some(h), Some(t)) = (&self.check_hist, start) {
            h.record_since(t);
        }
        event!(
            self.obs,
            "containment",
            "decision",
            contained = contained,
            path = path,
            cross_template = q.template.id() != s.template.id(),
            stored_template = s.template.id().to_string(),
        );
        contained
    }

    /// Full `QC(Q, Qs)` with template-aware filter dispatch: region,
    /// attribute-subset and filter containment.
    pub fn query_contained(&self, q: &PreparedQuery, s: &PreparedQuery) -> bool {
        region_contained(
            q.request.base(),
            q.request.scope(),
            s.request.base(),
            s.request.scope(),
        ) && q.request.attrs().is_subset_of(s.request.attrs())
            && self.filter_contained(q, s)
    }

    /// Convenience: checks an unprepared filter pair through the dispatch
    /// (templates are extracted on the fly).
    pub fn filters_contained(&self, f1: &Filter, f2: &Filter) -> bool {
        let q = PreparedQuery::new(SearchRequest::from_root(f1.clone()));
        let s = PreparedQuery::new(SearchRequest::from_root(f2.clone()));
        self.filter_contained(&q, &s)
    }

    /// The compiled condition for the pair, from the cache when present;
    /// otherwise compiled *outside* the lock and recorded afterwards.
    fn condition_for(&self, t1: &Template, t2: &Template) -> Option<Arc<CompiledCondition>> {
        if let Some(cached) = self.matrix.read().lookup(t1, t2) {
            return cached;
        }
        let compiled = CrossTemplateMatrix::compile_pair(t1, t2);
        self.matrix.write().insert(t1, t2, compiled.clone());
        compiled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbdr_ldap::Scope;

    fn prep(base: &str, filter: &str) -> PreparedQuery {
        PreparedQuery::new(SearchRequest::new(
            base.parse().unwrap(),
            Scope::Subtree,
            Filter::parse(filter).unwrap(),
        ))
    }

    #[test]
    fn same_template_dispatch() {
        let e = ContainmentEngine::new();
        let q = prep("o=xyz", "(serialNumber=0456*)");
        let s = prep("o=xyz", "(serialNumber=045*)");
        assert!(e.filter_contained(&q, &s));
        assert!(!e.filter_contained(&s, &q));
        assert_eq!(e.stats().same_template, 2);
        assert_eq!(e.stats().compiled, 0);
        assert_eq!(e.stats().general, 0);
    }

    #[test]
    fn compiled_dispatch() {
        let e = ContainmentEngine::new();
        let q = prep("o=xyz", "(serialNumber=045612)");
        let s = prep("o=xyz", "(serialNumber=0456*)");
        assert!(e.filter_contained(&q, &s));
        assert_eq!(e.stats().compiled, 1);
        // Cached on second use.
        assert!(e.filter_contained(&q, &s));
        assert_eq!(e.stats().compiled, 2);
        assert_eq!(e.compiled_pairs(), 1);
    }

    #[test]
    fn never_pairs_are_skipped() {
        let e = ContainmentEngine::new();
        // (sn=_) can never be answered by (&(sn=_)(ou=_)) — the paper's
        // own example of template elimination.
        let q = prep("o=xyz", "(sn=doe)");
        let s = prep("o=xyz", "(&(sn=doe)(ou=research))");
        assert!(!e.filter_contained(&q, &s));
        assert_eq!(e.stats().skipped_never, 1);
    }

    #[test]
    fn general_fallback() {
        let e = ContainmentEngine::new();
        let q = prep("o=xyz", "(|(sn=a)(sn=b))");
        let s = prep("o=xyz", "(|(sn=a)(sn=b)(sn=c))");
        assert!(e.filter_contained(&q, &s));
        assert_eq!(e.stats().general, 1);
    }

    #[test]
    fn query_contained_checks_region() {
        let e = ContainmentEngine::new();
        let s = prep("c=us,o=xyz", "(serialNumber=0456*)");
        assert!(e.query_contained(&prep("c=us,o=xyz", "(serialNumber=045612)"), &s));
        assert!(!e.query_contained(&prep("o=xyz", "(serialNumber=045612)"), &s));
    }

    #[test]
    fn stats_total_and_reset() {
        let e = ContainmentEngine::new();
        let q = prep("o=xyz", "(a=1)");
        let s = prep("o=xyz", "(a=1)");
        e.filter_contained(&q, &s);
        assert_eq!(e.stats().total(), 1);
        e.reset_stats();
        assert_eq!(e.stats().total(), 0);
        assert_eq!(e.compiled_pairs(), 0); // nothing was compiled
    }

    #[test]
    fn shared_engine_checks_concurrently() {
        let e = ContainmentEngine::new();
        let s = prep("o=xyz", "(serialNumber=0456*)");
        std::thread::scope(|scope| {
            for t in 0..4 {
                let e = &e;
                let s = &s;
                scope.spawn(move || {
                    for i in 0..50 {
                        let q = prep("o=xyz", &format!("(serialNumber=0456{:02})", (t * 50 + i) % 100));
                        assert!(e.filter_contained(&q, s));
                    }
                });
            }
        });
        assert_eq!(e.stats().compiled, 200);
        assert_eq!(e.compiled_pairs(), 1);
    }
}
