//! Satisfiability of conjunctions of literals under multi-valued LDAP
//! attribute semantics.
//!
//! A conjunct (from the DNF of `F1 ∧ ¬F2`) is satisfiable iff an entry
//! exists matching every literal. Positive literals are existential (some
//! value of the attribute satisfies the comparison); negated literals are
//! universal (no value does). Attributes are independent, and within one
//! attribute the conjunct is satisfiable iff **each positive literal has a
//! single-value witness consistent with every negated literal** — values
//! for different positive literals can coexist in the multi-valued
//! attribute.
//!
//! Single-value satisfiability is decided exactly where possible (pinned
//! equality candidates, integer ranges) and by sound approximation
//! elsewhere: `Sat` is only returned with a constructive witness, `Unsat`
//! only with a proof, everything else is `Unknown`.

use crate::nnf::Lit;
use fbdr_ldap::{AttrValue, Comparison, SubstringPattern};
use std::collections::BTreeMap;

/// Three-valued satisfiability verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)]
pub(crate) enum Sat {
    Sat,
    Unsat,
    Unknown,
}

/// Decides satisfiability of a conjunction of literals.
pub(crate) fn conjunct_sat(lits: &[Lit]) -> Sat {
    // Group literals per attribute.
    let mut groups: BTreeMap<String, (Vec<&Comparison>, Vec<&Comparison>)> = BTreeMap::new();
    for l in lits {
        let g = groups.entry(l.pred.attr().lower().to_owned()).or_default();
        if l.negated {
            g.1.push(l.pred.comparison());
        } else {
            g.0.push(l.pred.comparison());
        }
    }
    let mut verdict = Sat::Sat;
    for (pos, neg) in groups.values() {
        // ¬(attr=*) forces the attribute to be absent.
        if neg.iter().any(|c| matches!(c, Comparison::Present)) {
            if !pos.is_empty() {
                return Sat::Unsat;
            }
            continue;
        }
        if pos.is_empty() {
            // Absent attribute satisfies all universally-quantified
            // negative literals vacuously.
            continue;
        }
        for p in pos {
            match value_sat(p, neg) {
                Sat::Unsat => return Sat::Unsat,
                Sat::Unknown => verdict = Sat::Unknown,
                Sat::Sat => {}
            }
        }
    }
    verdict
}

/// Constraints a single attribute value must satisfy.
struct Constraints<'a> {
    /// Positive comparison the value must satisfy (None for `Present`).
    pos: Option<&'a Comparison>,
    /// Inner comparisons of negated literals — the value must *fail* each.
    neg: &'a [&'a Comparison],
}

impl Constraints<'_> {
    /// Exact test of a candidate value against every constraint.
    fn admits(&self, v: &AttrValue) -> bool {
        if let Some(p) = self.pos {
            if !p.matches_value(v) {
                return false;
            }
        }
        self.neg.iter().all(|n| !n.matches_value(v))
    }
}

/// Is there a single value satisfying `pos` while failing every `neg`?
///
/// Range constraints are *typed by their assertion value*
/// ([`Comparison::matches_value`]):
///
/// * a **string-typed** bound constrains every value's normalized text
///   lexicographically — uniform in `v`, so emptiness of the string-bound
///   interval is a global `Unsat` proof;
/// * an **integer-typed** positive bound is satisfiable only by integer
///   values, and an integer-typed *negated* bound is vacuously satisfied
///   by every non-integer value — so integer-typed constraints are
///   reasoned about with a case split on whether `v` is an integer.
///
/// `Sat` is only ever returned with a concrete witness that passes the
/// exact [`Constraints::admits`] test.
fn value_sat(pos: &Comparison, neg: &[&Comparison]) -> Sat {
    let c = Constraints {
        pos: match pos {
            Comparison::Present => None,
            other => Some(other),
        },
        neg,
    };

    // Pinned equality: the value is fully determined, so the test is exact.
    if let Some(Comparison::Eq(x)) = c.pos {
        return if c.admits(x) { Sat::Sat } else { Sat::Unsat };
    }

    // Classify the positive range (at most one) and collect negatives.
    let mut pos_sub: Option<&SubstringPattern> = None;
    // String-typed bounds apply to all values: (bound, inclusive).
    let mut str_lo: Option<(&AttrValue, bool)> = None;
    let mut str_hi: Option<(&AttrValue, bool)> = None;
    // Integer-typed bounds apply only in the integer case.
    let mut int_lo: Option<i64> = None; // inclusive
    let mut int_hi: Option<i64> = None; // inclusive
    let mut pos_is_int_range = false;
    match c.pos {
        Some(Comparison::Ge(x)) => match x.as_int() {
            Some(i) => {
                int_lo = Some(i);
                pos_is_int_range = true;
            }
            None => str_lo = Some((x, true)),
        },
        Some(Comparison::Le(x)) => match x.as_int() {
            Some(i) => {
                int_hi = Some(i);
                pos_is_int_range = true;
            }
            None => str_hi = Some((x, true)),
        },
        Some(Comparison::Substring(p)) => pos_sub = Some(p),
        _ => {}
    }
    let mut not_eq: Vec<&AttrValue> = Vec::new();
    let mut not_subs: Vec<&SubstringPattern> = Vec::new();
    for n in neg {
        match n {
            // ¬(a>=y): integer-typed → (v non-integer) ∨ (v < y);
            //          string-typed  → v.norm < y (all values).
            Comparison::Ge(y) => match y.as_int() {
                Some(i) => {
                    let bound = i.saturating_sub(1);
                    int_hi = Some(int_hi.map_or(bound, |h| h.min(bound)));
                }
                None => {
                    if str_hi.is_none_or(|(h, _)| y.cmp(h) != std::cmp::Ordering::Greater) {
                        str_hi = Some((y, false));
                    }
                }
            },
            // ¬(a<=y): symmetric lower bounds.
            Comparison::Le(y) => match y.as_int() {
                Some(i) => {
                    let bound = i.saturating_add(1);
                    int_lo = Some(int_lo.map_or(bound, |l| l.max(bound)));
                }
                None => {
                    if str_lo.is_none_or(|(l, _)| y.cmp(l) != std::cmp::Ordering::Less) {
                        str_lo = Some((y, false));
                    }
                }
            },
            Comparison::Eq(y) => not_eq.push(y),
            Comparison::Substring(p) => not_subs.push(p),
            Comparison::Present => unreachable!("handled by conjunct_sat"),
        }
    }

    // Global proof 1: the positive pattern implies a forbidden pattern.
    if let Some(p) = pos_sub {
        if not_subs.iter().any(|n| pattern_implies(p, n)) {
            return Sat::Unsat;
        }
    }

    // Global proof 2: string-typed bounds constrain every value's
    // normalized text; an empty lex interval admits nothing.
    let mut str_pinned: Option<&AttrValue> = None;
    if let (Some((l, li)), Some((h, hi_inc))) = (str_lo, str_hi) {
        match l.normalized().cmp(h.normalized()) {
            std::cmp::Ordering::Greater => return Sat::Unsat,
            std::cmp::Ordering::Equal => {
                if !(li && hi_inc) {
                    return Sat::Unsat;
                }
                // All admissible values share this normalized text, and
                // every constraint acts on the normalized text — one test
                // decides (the bound is non-integer, so its norm is too).
                str_pinned = Some(l);
            }
            std::cmp::Ordering::Less => {}
        }
    }
    if let Some(p) = str_pinned {
        return if c.admits(p) { Sat::Sat } else { Sat::Unsat };
    }

    // Case split on integer-typed constraints.
    let int_interval_empty = matches!((int_lo, int_hi), (Some(a), Some(b)) if a > b);
    // Case A (v is an integer) refuted by an empty integer interval;
    // case B (v is not an integer) refuted by an integer-typed positive.
    if int_interval_empty && pos_is_int_range {
        return Sat::Unsat;
    }

    // Witness search — exact tests, covering both cases.
    let mut candidates: Vec<AttrValue> = Vec::new();
    if let Some(p) = pos_sub {
        let joined: String = p.components().collect::<Vec<_>>().join("");
        candidates.push(AttrValue::new(joined.clone()));
        for filler in ["0", "q", "zz"] {
            let parts: Vec<&str> = p.components().collect();
            candidates.push(AttrValue::new(parts.join(filler)));
            candidates.push(AttrValue::new(format!("{joined}{filler}")));
        }
    }
    if let Some((l, inc)) = str_lo {
        if inc {
            candidates.push(l.clone());
        }
        candidates.push(AttrValue::new(format!("{}0", l.normalized())));
        candidates.push(AttrValue::new(format!("{}z", l.normalized())));
    }
    if let Some((h, inc)) = str_hi {
        if inc {
            candidates.push(h.clone());
        }
    }
    if !int_interval_empty {
        // Integer witnesses (with alternate spellings — a ¬(a=y) literal
        // excludes one spelling, never a number).
        let start = int_lo.unwrap_or_else(|| int_hi.map_or(0, |h| h.saturating_sub(8)));
        let end = int_hi.unwrap_or_else(|| start.saturating_add(8));
        let mut k = start;
        let mut tried = 0;
        while k <= end && tried < 24 {
            candidates.push(AttrValue::new(k.to_string()));
            candidates.push(AttrValue::new(format!("0{k}")));
            tried += 1;
            if k == i64::MAX {
                break;
            }
            k += 1;
        }
    }
    // Generic non-integer witnesses (integer-typed negatives are vacuous
    // for them).
    candidates.push(AttrValue::new("witness"));
    candidates.push(AttrValue::new("zz-witness"));
    candidates.push(AttrValue::new("0w"));
    if candidates.iter().any(|v| c.admits(v)) {
        return Sat::Sat;
    }

    // No witness found and no proof of emptiness.
    Sat::Unknown
}

/// Sound (incomplete) check that every string matching `p` also matches
/// `n` — i.e. pattern `p` implies pattern `n`.
pub(crate) fn pattern_implies(p: &SubstringPattern, n: &SubstringPattern) -> bool {
    // Initial: anything matching p starts with p.initial.
    if let Some(ni) = n.initial() {
        match p.initial() {
            Some(pi) if pi.starts_with(ni) => {}
            _ => return false,
        }
    }
    // Final: anything matching p ends with p.final.
    if let Some(nf) = n.final_part() {
        match p.final_part() {
            Some(pf) if pf.ends_with(nf) => {}
            _ => return false,
        }
    }
    // Middle components: each must be found, in order, inside a single
    // guaranteed text run of p (conservative).
    if !n.any().is_empty() {
        let runs: Vec<&str> = p.components().collect();
        if !any_in_order_within_runs(&runs, n.any()) {
            return false;
        }
    }
    true
}

/// True if `needles` occur in order, non-overlapping, with each needle
/// entirely inside one of the `runs` (runs are ordered and disjoint in any
/// matching string).
fn any_in_order_within_runs(runs: &[&str], needles: &[String]) -> bool {
    let mut run_idx = 0;
    let mut offset = 0usize;
    'needle: for needle in needles {
        while run_idx < runs.len() {
            if let Some(pos) = runs[run_idx][offset.min(runs[run_idx].len())..].find(needle.as_str()) {
                offset = offset.min(runs[run_idx].len()) + pos + needle.len();
                continue 'needle;
            }
            run_idx += 1;
            offset = 0;
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbdr_ldap::Filter;

    fn lit(s: &str, negated: bool) -> Lit {
        match Filter::parse(s).unwrap() {
            Filter::Pred(p) => Lit { pred: p, negated },
            other => panic!("expected predicate, got {other:?}"),
        }
    }

    fn pos(s: &str) -> Lit {
        lit(s, false)
    }

    fn neg(s: &str) -> Lit {
        lit(s, true)
    }

    #[test]
    fn pinned_equality_is_exact() {
        assert_eq!(conjunct_sat(&[pos("(a=5)"), neg("(a=5)")]), Sat::Unsat);
        assert_eq!(conjunct_sat(&[pos("(a=5)"), neg("(a=6)")]), Sat::Sat);
        assert_eq!(conjunct_sat(&[pos("(a=abcd)"), neg("(a=ab*)")]), Sat::Unsat);
        assert_eq!(conjunct_sat(&[pos("(a=xbcd)"), neg("(a=ab*)")]), Sat::Sat);
        assert_eq!(conjunct_sat(&[pos("(a=7)"), neg("(a>=3)")]), Sat::Unsat);
        assert_eq!(conjunct_sat(&[pos("(a=2)"), neg("(a>=3)")]), Sat::Sat);
    }

    #[test]
    fn multivalued_positive_literals_coexist() {
        // (a=1) ∧ (a=2) is satisfiable by a multi-valued attribute.
        assert_eq!(conjunct_sat(&[pos("(a=1)"), pos("(a=2)")]), Sat::Sat);
        // But each positive must still clear the universals.
        assert_eq!(
            conjunct_sat(&[pos("(a=1)"), pos("(a=2)"), neg("(a=2)")]),
            Sat::Unsat
        );
    }

    #[test]
    fn range_range_interactions() {
        // v >= 5 and v < 3: empty.
        assert_eq!(conjunct_sat(&[pos("(a>=5)"), neg("(a>=3)")]), Sat::Unsat);
        // v >= 3 and v < 5: 3, 4 work.
        assert_eq!(conjunct_sat(&[pos("(a>=3)"), neg("(a>=5)")]), Sat::Sat);
        // v >= 3 and v <= 3: pinned to 3.
        assert_eq!(conjunct_sat(&[pos("(a>=3)"), pos("(a<=3)")]), Sat::Sat);
        // v > 5 and v < 6 (integer-typed): no *integer* fits, but any
        // non-integer value vacuously fails both integer-typed ranges —
        // the conjunct is satisfiable by e.g. {a: "zz"}.
        assert_eq!(
            conjunct_sat(&[neg("(a<=5)"), neg("(a>=6)"), pos("(a=*)")]),
            Sat::Sat
        );
        // With an integer-typed positive, only integers qualify: unsat.
        assert_eq!(
            conjunct_sat(&[pos("(a>=6)"), neg("(a>=6)")]),
            Sat::Unsat
        );
    }

    #[test]
    fn integer_spellings_defeat_not_eq() {
        // v >= 3, v <= 3, v != "3": "03" is a valid witness.
        assert_eq!(
            conjunct_sat(&[pos("(a>=3)"), neg("(a>=4)"), neg("(a=3)")]),
            Sat::Sat
        );
    }

    #[test]
    fn absent_attribute_handles_negations() {
        assert_eq!(conjunct_sat(&[neg("(a=5)")]), Sat::Sat);
        assert_eq!(conjunct_sat(&[neg("(a=*)")]), Sat::Sat);
        assert_eq!(conjunct_sat(&[neg("(a=*)"), pos("(a=5)")]), Sat::Unsat);
        assert_eq!(conjunct_sat(&[neg("(a=*)"), pos("(b=5)")]), Sat::Sat);
    }

    #[test]
    fn presence_needs_a_value_clearing_universals() {
        // a present, every value < 3 and > 5 *as integers*: a non-integer
        // value clears both universals vacuously.
        assert_eq!(
            conjunct_sat(&[pos("(a=*)"), neg("(a>=3)"), neg("(a<=5)")]),
            Sat::Sat
        );
        // With string-typed bounds the interval is truly empty.
        assert_eq!(
            conjunct_sat(&[pos("(a=*)"), neg("(a>=ccc)"), neg("(a<=eee)")]),
            Sat::Unsat
        );
        assert_eq!(conjunct_sat(&[pos("(a=*)"), neg("(a>=3)")]), Sat::Sat);
    }

    #[test]
    fn prefix_pattern_reasoning() {
        // v starts with "abc" but must not start with "ab": impossible.
        assert_eq!(conjunct_sat(&[pos("(a=abc*)"), neg("(a=ab*)")]), Sat::Unsat);
        // v starts with "ab" and must not start with "abc": "ab" works.
        assert_eq!(conjunct_sat(&[pos("(a=ab*)"), neg("(a=abc*)")]), Sat::Sat);
        // Disjoint prefixes.
        assert_eq!(conjunct_sat(&[pos("(a=xy*)"), neg("(a=ab*)")]), Sat::Sat);
    }

    #[test]
    fn contains_pattern_reasoning() {
        // v contains "abc" hence contains "b".
        assert_eq!(conjunct_sat(&[pos("(a=*abc*)"), neg("(a=*b*)")]), Sat::Unsat);
        // v contains "abc"; "d" avoidable.
        assert_eq!(conjunct_sat(&[pos("(a=*abc*)"), neg("(a=*d*)")]), Sat::Sat);
    }

    #[test]
    fn string_ranges_are_lexicographic() {
        // v >= "m" and v < "z": "m" itself.
        assert_eq!(conjunct_sat(&[pos("(a>=m)"), neg("(a>=z)")]), Sat::Sat);
        // v >= "z" and v < "m": empty.
        assert_eq!(conjunct_sat(&[pos("(a>=z)"), neg("(a>=m)")]), Sat::Unsat);
    }

    #[test]
    fn unknown_is_returned_not_guessed() {
        // v > "a" and v < "a0" and v must not be... hard; at worst Unknown,
        // never a wrong Unsat. (Witness "a00"? No: "a00" > "a0"? lex yes —
        // so actually not admissible; the point is we accept Unknown.)
        let r = conjunct_sat(&[neg("(a<=a)"), neg("(a>=a0)"), pos("(a=*)")]);
        assert_ne!(r, Sat::Unsat);
    }

    #[test]
    fn pattern_implies_cases() {
        let p = |s: &str| match Filter::parse(s).unwrap() {
            Filter::Pred(pr) => match pr.comparison() {
                Comparison::Substring(pat) => pat.clone(),
                other => panic!("not substring: {other:?}"),
            },
            other => panic!("not pred: {other:?}"),
        };
        assert!(pattern_implies(&p("(a=abc*)"), &p("(a=ab*)")));
        assert!(!pattern_implies(&p("(a=ab*)"), &p("(a=abc*)")));
        assert!(pattern_implies(&p("(a=*xyz)"), &p("(a=*yz)")));
        assert!(pattern_implies(&p("(a=*abc*)"), &p("(a=*b*)")));
        assert!(pattern_implies(&p("(a=abc*def)"), &p("(a=ab*ef)")));
        assert!(!pattern_implies(&p("(a=abc*def)"), &p("(a=*cd*)")));
        // Two middle needles inside one run, in order.
        assert!(pattern_implies(&p("(a=*abab*)"), &p("(a=*ab*ab*)")));
        assert!(!pattern_implies(&p("(a=*ab*)"), &p("(a=*ab*ab*)")));
    }

    #[test]
    fn multiple_positive_prefixes() {
        // Same value must start with "ab" and "abc": witness "abc…".
        assert_eq!(conjunct_sat(&[pos("(a=ab*)"), pos("(a=abc*)")]), Sat::Sat);
    }
}
