#![warn(missing_docs)]
//! LDAP query and filter containment (§4 of the paper).
//!
//! A query `Q` is *semantically contained* in `Qs` when every entry `Q` can
//! return is also returned by `Qs`: the base/scope region of `Q` lies inside
//! that of `Qs`, the requested attributes are a subset, and the filter of
//! `Q` is more restrictive. A filter-based replica uses containment to
//! decide whether a stored (replicated) query can answer an incoming one.
//!
//! Three algorithms are provided, from most general to fastest:
//!
//! * [`filter_contained`] — the general decision procedure of
//!   Proposition 1: `F1 ⊆ F2` iff `F1 ∧ ¬F2` is unsatisfiable. The check is
//!   **three-valued** ([`Containment`]): `Unknown` is returned where the
//!   satisfiability reasoning over string domains is approximate, and
//!   callers must treat it as "not contained". The procedure is *sound
//!   under multi-valued attributes*: unsatisfiability of a conjunct only
//!   relies on each existential (positive) literal clashing with the
//!   universal (negated) literals on the same attribute.
//! * [`CrossTemplateMatrix`] — Proposition 2: for a pair of conjunctive
//!   equality/range templates, the containment condition is compiled once
//!   into CNF over value *slots* and then evaluated per query pair in
//!   O(#clauses).
//! * [`same_template_contained`] — Proposition 3: two positive filters of
//!   the same template are compared slot by slot in O(n).
//!
//! [`ContainmentEngine`] dispatches between the three (and keeps the
//! statistics reported in the paper's §7.4), and [`query_contained`]
//! implements the full `QC(Q, Qs)` algorithm including base/scope/attribute
//! checks.
//!
//! # Example
//!
//! ```
//! use fbdr_containment::{filter_contained, Containment};
//! use fbdr_ldap::Filter;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let narrow = Filter::parse("(&(objectclass=inetOrgPerson)(departmentNumber=2406))")?;
//! let wide = Filter::parse("(&(objectclass=inetOrgPerson)(departmentNumber=240*))")?;
//! assert_eq!(filter_contained(&narrow, &wide), Containment::Yes);
//! assert_eq!(filter_contained(&wide, &narrow), Containment::No);
//! # Ok(())
//! # }
//! ```

mod cross_template;
mod engine;
mod general;
mod nnf;
mod qc;
mod same_template;
mod sat;

pub use cross_template::{CompiledCondition, CrossTemplateMatrix};
pub use engine::{ContainmentEngine, EngineStats, PreparedQuery};
pub use general::filter_contained;
pub use qc::{query_contained, region_contained};
pub use same_template::same_template_contained;

use serde::{Deserialize, Serialize};

/// Result of a containment check.
///
/// `Unknown` arises where satisfiability over unconstrained string domains
/// is approximated; callers answering queries from a cache must treat it as
/// [`Containment::No`] to stay sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Containment {
    /// Definitely contained: every entry matching the first filter matches
    /// the second.
    Yes,
    /// Definitely not contained: a witness entry exists.
    No,
    /// The decision procedure could not decide; treat as `No` for cache
    /// answering.
    Unknown,
}

impl Containment {
    /// Collapses to a boolean, treating `Unknown` as not contained.
    pub fn is_contained(self) -> bool {
        self == Containment::Yes
    }
}
