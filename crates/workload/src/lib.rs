#![warn(missing_docs)]
//! Synthetic enterprise directory and workloads (§7.1 of the paper).
//!
//! The paper evaluates against the IBM enterprise directory (~0.5M
//! entries) with a real two-day workload. This crate reproduces the
//! *shape* of that setting, scaled and fully deterministic:
//!
//! * [`EnterpriseDirectory`] — employees as children of their country
//!   entry (a flat namespace, §3.3), with a structured `serialNumber`
//!   whose prefixes correlate with countries, an *unstructured* `mail`
//!   user part (why mail queries generalize poorly, §7.2(c)), departments
//!   under divisions with division-correlated department numbers, and a
//!   small hot location subtree.
//! * [`TraceGenerator`] — queries in exactly the Table 1 mix
//!   (serialNumber 58%, mail 24%, dept+div 16%, location 2%), Zipf-skewed
//!   target popularity aligned with serial-number regions, and
//!   re-reference temporal locality for the query-cache experiments.
//! * [`UpdateGenerator`] — a low-rate update stream (modifies, adds,
//!   deletes, moves) for the update-traffic experiments (Figures 6–7).
//! * [`Scenario`] — the adversarial scenario matrix (flash crowd, diurnal
//!   shift, churn flip, multi tenant, cache buster): phased query/update
//!   schedules that stress *adaptive* filter selection.
//!
//! Everything is seeded: the same configuration always produces the same
//! directory and trace.

mod directory;
mod scenario;
mod trace;
mod updates;
mod zipf;

pub use directory::{DirectoryConfig, EmployeeRecord, EnterpriseDirectory};
pub use scenario::{PhaseBound, Scenario, ScenarioConfig, ScenarioKind, WorkloadEvent};
pub use trace::{distribution, QueryKind, TraceConfig, TraceGenerator, TracedQuery};
pub use updates::{UpdateConfig, UpdateGenerator};
pub use zipf::Zipf;
