//! The synthetic enterprise directory.

use fbdr_dit::DitStore;
use fbdr_ldap::{Dn, Entry};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for directory generation. Defaults give a laptop-scale
/// model of the paper's half-million-entry directory; scale `employees`
/// up to approach the original.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DirectoryConfig {
    /// RNG seed — the same seed always generates the same directory.
    pub seed: u64,
    /// Number of employee entries.
    pub employees: usize,
    /// Number of country containers. Country sizes are skewed; the first
    /// `geography_countries` countries form the "geography" holding
    /// roughly `geography_share` of all employees (the paper's remote
    /// geography with ~30%).
    pub countries: usize,
    /// Countries in the geography of interest.
    pub geography_countries: usize,
    /// Share of employees in the geography (≈0.3 in the paper).
    pub geography_share: f64,
    /// Number of divisions; each division `d` owns department numbers
    /// `d*100 .. d*100 + depts_per_division` (prefix-correlated).
    pub divisions: usize,
    /// Departments per division.
    pub depts_per_division: usize,
    /// Number of location entries (small and hot).
    pub locations: usize,
}

impl Default for DirectoryConfig {
    fn default() -> Self {
        DirectoryConfig {
            seed: 0xD1EC7,
            employees: 20_000,
            countries: 25,
            geography_countries: 3,
            geography_share: 0.30,
            divisions: 12,
            depts_per_division: 40,
            locations: 120,
        }
    }
}

impl DirectoryConfig {
    /// A small configuration for tests.
    pub fn small() -> Self {
        DirectoryConfig {
            employees: 1200,
            countries: 8,
            geography_countries: 2,
            divisions: 4,
            depts_per_division: 10,
            locations: 20,
            ..DirectoryConfig::default()
        }
    }

    /// Extra-large: two million employees (2M+ entries with containers),
    /// past the paper's half-million directory and into the range where a
    /// single master becomes the bottleneck — the scale the sharded
    /// master targets. Generation takes minutes and several GB; use only
    /// from explicitly opted-in bench runs.
    pub fn xl() -> Self {
        DirectoryConfig {
            employees: 2_000_000,
            countries: 64,
            geography_countries: 6,
            divisions: 30,
            depts_per_division: 60,
            locations: 500,
            ..DirectoryConfig::default()
        }
    }
}

/// Metadata about one generated employee (for workload generation).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmployeeRecord {
    /// The entry's DN.
    pub dn_string: String,
    /// Zero-padded six-digit serial number.
    pub serial: String,
    /// Mail address (`userpart@cc.xyz.com`, user part unstructured).
    pub mail: String,
    /// Department number.
    pub dept: String,
    /// Division name.
    pub division: String,
    /// Country code.
    pub country: String,
    /// True when the employee belongs to the geography of interest.
    pub in_geography: bool,
}

/// The generated directory: the DIT plus generation metadata used by the
/// trace generator.
#[derive(Debug)]
pub struct EnterpriseDirectory {
    config: DirectoryConfig,
    dit: DitStore,
    employees: Vec<EmployeeRecord>,
    countries: Vec<(String, usize)>,
    departments: Vec<(String, String)>,
    locations: Vec<String>,
}

impl EnterpriseDirectory {
    /// Generates the directory.
    pub fn generate(config: DirectoryConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut dit = DitStore::new();
        let root: Dn = "o=xyz".parse().expect("static dn");
        dit.add_suffix(root.clone());
        dit.add(Entry::new(root.clone()).with("objectclass", "organization").with("o", "xyz"))
            .expect("fresh store");

        // --- Countries with skewed sizes ---
        let countries = country_sizes(&config);
        for (cc, _) in &countries {
            dit.add(
                Entry::new(format!("c={cc},o=xyz").parse().expect("valid dn"))
                    .with("objectclass", "country")
                    .with("c", cc),
            )
            .expect("fresh store");
        }

        // --- Divisions and departments ---
        dit.add(
            Entry::new("ou=divisions,o=xyz".parse().expect("valid dn"))
                .with("objectclass", "organizationalUnit")
                .with("ou", "divisions"),
        )
        .expect("fresh store");
        let mut departments = Vec::new();
        for d in 0..config.divisions {
            let div = format!("div{:02}", d + 10);
            dit.add(
                Entry::new(format!("ou={div},ou=divisions,o=xyz").parse().expect("valid dn"))
                    .with("objectclass", "organizationalUnit")
                    .with("ou", &div),
            )
            .expect("fresh store");
            for k in 0..config.depts_per_division {
                let dept = format!("{}", (d + 10) * 100 + k);
                dit.add(
                    Entry::new(
                        format!("ou={dept},ou={div},ou=divisions,o=xyz")
                            .parse()
                            .expect("valid dn"),
                    )
                    .with("objectclass", "department")
                    .with("dept", &dept)
                    .with("div", &div),
                )
                .expect("fresh store");
                departments.push((dept, div.clone()));
            }
        }

        // --- Locations (small, hot subtree) ---
        dit.add(
            Entry::new("ou=locations,o=xyz".parse().expect("valid dn"))
                .with("objectclass", "organizationalUnit")
                .with("ou", "locations"),
        )
        .expect("fresh store");
        let mut locations = Vec::new();
        for l in 0..config.locations {
            let name = format!("site{l:03}");
            dit.add(
                Entry::new(format!("l={name},ou=locations,o=xyz").parse().expect("valid dn"))
                    .with("objectclass", "location")
                    .with("l", &name)
                    .with("location", &name),
            )
            .expect("fresh store");
            locations.push(name);
        }

        // --- Employees: flat under their country, serial ranges
        //     contiguous per country ---
        let mut employees = Vec::with_capacity(config.employees);
        let mut serial = 100_000usize; // six digits, zero padded below
        for (ci, (cc, size)) in countries.iter().enumerate() {
            let in_geo = ci < config.geography_countries;
            for _ in 0..*size {
                let id = employees.len();
                let serial_str = format!("{serial:06}");
                serial += 1;
                // Unstructured user part: hash-like token uncorrelated
                // with the serial ordering.
                let user: String = (0..8)
                    .map(|_| {
                        let c = rng.gen_range(0..36);
                        char::from_digit(c, 36).expect("base36 digit")
                    })
                    .collect();
                let mail = format!("{user}@{cc}.xyz.com");
                let (dept, division) = departments[rng.gen_range(0..departments.len())].clone();
                let cn = format!("emp{id:06}");
                let dn_string = format!("cn={cn},c={cc},o=xyz");
                let entry = Entry::new(dn_string.parse().expect("valid dn"))
                    .with("objectclass", "inetOrgPerson")
                    .with("cn", &cn)
                    .with("sn", &format!("sn{id:06}"))
                    .with("serialNumber", &serial_str)
                    .with("mail", &mail)
                    .with("departmentNumber", &dept)
                    .with("division", &division)
                    .with("telephoneNumber", &format!("261-{:07}", id));
                dit.add(entry).expect("fresh store");
                employees.push(EmployeeRecord {
                    dn_string,
                    serial: serial_str,
                    mail,
                    dept,
                    division,
                    country: cc.clone(),
                    in_geography: in_geo,
                });
            }
        }

        EnterpriseDirectory { config, dit, employees, countries, departments, locations }
    }

    /// The generation configuration.
    pub fn config(&self) -> &DirectoryConfig {
        &self.config
    }

    /// The generated DIT (move it out with [`EnterpriseDirectory::into_parts`]).
    pub fn dit(&self) -> &DitStore {
        &self.dit
    }

    /// Consumes the generator, returning the DIT and employee metadata.
    pub fn into_parts(self) -> (DitStore, Vec<EmployeeRecord>) {
        (self.dit, self.employees)
    }

    /// Employee metadata, in serial-number order.
    pub fn employees(&self) -> &[EmployeeRecord] {
        &self.employees
    }

    /// `(country code, employee count)` pairs, geography first.
    pub fn countries(&self) -> &[(String, usize)] {
        &self.countries
    }

    /// `(department number, division)` pairs.
    pub fn departments(&self) -> &[(String, String)] {
        &self.departments
    }

    /// Location names.
    pub fn locations(&self) -> &[String] {
        &self.locations
    }

    /// Total number of person entries.
    pub fn employee_count(&self) -> usize {
        self.employees.len()
    }
}

/// Skewed country sizes: the geography countries share `geography_share`
/// of employees; the rest decays geometrically across remaining countries.
fn country_sizes(config: &DirectoryConfig) -> Vec<(String, usize)> {
    let geo = config.geography_countries.max(1).min(config.countries);
    let geo_total = (config.employees as f64 * config.geography_share) as usize;
    let rest_total = config.employees - geo_total;
    let rest_n = config.countries - geo;
    let mut sizes = Vec::with_capacity(config.countries);
    // Geography countries split their share unevenly (60/25/15-ish).
    let mut remaining = geo_total;
    for g in 0..geo {
        let take = if g == geo - 1 { remaining } else { (remaining * 3) / 5 };
        sizes.push(take.min(remaining));
        remaining -= take.min(remaining);
    }
    // Remaining countries: geometric decay, floor 1.
    let mut weights: Vec<f64> = (0..rest_n).map(|i| 0.82f64.powi(i as i32)).collect();
    let wsum: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= wsum;
    }
    let mut assigned = 0usize;
    let mut rest_sizes: Vec<usize> = weights
        .iter()
        .map(|w| {
            let s = ((rest_total as f64) * w).floor() as usize;
            assigned += s;
            s
        })
        .collect();
    // Distribute the rounding remainder.
    let mut leftover = rest_total - assigned;
    let n_rest = rest_sizes.len();
    let mut i = 0;
    while leftover > 0 && n_rest > 0 {
        rest_sizes[i % n_rest] += 1;
        leftover -= 1;
        i += 1;
    }
    let mut out = Vec::with_capacity(config.countries);
    for (i, s) in sizes.into_iter().enumerate() {
        out.push((format!("g{i}"), s));
    }
    for (i, s) in rest_sizes.into_iter().enumerate() {
        out.push((format!("r{i:02}"), s));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbdr_ldap::{Filter, Scope, SearchRequest};

    fn small() -> EnterpriseDirectory {
        EnterpriseDirectory::generate(DirectoryConfig::small())
    }

    #[test]
    fn employee_count_matches_config() {
        let d = small();
        assert_eq!(d.employee_count(), 1200);
        let persons = d.dit().count_matching(&Filter::parse("(objectclass=inetOrgPerson)").unwrap());
        assert_eq!(persons, 1200);
    }

    #[test]
    fn geography_share_roughly_holds() {
        let d = small();
        let geo: usize = d.employees().iter().filter(|e| e.in_geography).count();
        let share = geo as f64 / d.employee_count() as f64;
        assert!((share - 0.30).abs() < 0.05, "geography share {share}");
    }

    #[test]
    fn serials_are_contiguous_per_country() {
        let d = small();
        // Employees are generated country by country with increasing
        // serials, so a country's serials form one contiguous range.
        let mut last_country = String::new();
        let mut seen: Vec<String> = Vec::new();
        for e in d.employees() {
            if e.country != last_country {
                assert!(
                    !seen.contains(&e.country),
                    "country {} appears in two serial ranges",
                    e.country
                );
                seen.push(e.country.clone());
                last_country = e.country.clone();
            }
        }
    }

    #[test]
    fn flat_namespace_under_countries() {
        let d = small();
        let (cc, n) = &d.countries()[0];
        let base: fbdr_ldap::Dn = format!("c={cc},o=xyz").parse().unwrap();
        let req = SearchRequest::new(base, Scope::OneLevel, Filter::match_all());
        assert_eq!(d.dit().search(&req).len(), *n);
    }

    #[test]
    fn serial_lookup_finds_exactly_one() {
        let d = small();
        let e = &d.employees()[42];
        let req = SearchRequest::from_root(
            Filter::parse(&format!("(serialNumber={})", e.serial)).unwrap(),
        );
        let hits = d.dit().search(&req);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dn().to_string(), e.dn_string);
    }

    #[test]
    fn dept_numbers_correlate_with_division() {
        let d = small();
        for (dept, div) in d.departments() {
            let div_num: usize = div.trim_start_matches("div").parse().unwrap();
            let dept_num: usize = dept.parse().unwrap();
            assert_eq!(dept_num / 100, div_num, "dept {dept} not in division {div} range");
        }
    }

    #[test]
    fn locations_small_and_present() {
        let d = small();
        assert_eq!(d.locations().len(), 20);
        let req = SearchRequest::from_root(Filter::parse("(objectclass=location)").unwrap());
        assert_eq!(d.dit().search(&req).len(), 20);
    }

    #[test]
    fn deterministic_generation() {
        let a = EnterpriseDirectory::generate(DirectoryConfig::small());
        let b = EnterpriseDirectory::generate(DirectoryConfig::small());
        assert_eq!(a.employees().len(), b.employees().len());
        assert_eq!(a.employees()[7].mail, b.employees()[7].mail);
        assert_eq!(a.dit().len(), b.dit().len());
    }

    #[test]
    fn mail_user_part_unstructured() {
        // User parts should not share long prefixes the way serials do:
        // count distinct 3-char prefixes among first 100 employees.
        let d = small();
        let mut prefixes: Vec<String> = d
            .employees()
            .iter()
            .take(100)
            .map(|e| e.mail.chars().take(3).collect())
            .collect();
        prefixes.sort();
        prefixes.dedup();
        assert!(prefixes.len() > 60, "only {} distinct prefixes", prefixes.len());
    }
}
