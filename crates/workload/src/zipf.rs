//! A seeded Zipf sampler over ranks `0..n`.
//!
//! Implemented as a precomputed CDF with binary search to avoid an extra
//! dependency; exact for the sizes used here (≤ a few hundred thousand
//! ranks).

use rand::Rng;

/// Zipf distribution over ranks `0..n`: rank `r` has weight
/// `1 / (r+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates the distribution for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be finite and non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is exactly one rank (never empty).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Samples a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("finite cdf")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut top10 = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                top10 += 1;
            }
        }
        // With s=1 and n=1000, the top-10 mass is about 39%.
        let frac = top10 as f64 / n as f64;
        assert!(frac > 0.30 && frac < 0.50, "top-10 fraction {frac}");
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 700.0, "count {c}");
        }
    }

    #[test]
    fn deterministic_with_seed() {
        let z = Zipf::new(100, 0.9);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
