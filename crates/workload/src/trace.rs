//! Query trace generation in the Table 1 mix.

use crate::directory::EnterpriseDirectory;
use crate::zipf::Zipf;
use fbdr_ldap::{Filter, SearchRequest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// The four query types of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueryKind {
    /// `(serialNumber=_)` — 58% of the workload.
    SerialNumber,
    /// `(mail=_)` — 24%.
    Mail,
    /// `(&(dept=_)(div=_))` — 16%.
    DeptDiv,
    /// `(location=_)` — 2%.
    Location,
}

impl QueryKind {
    /// All kinds with their Table 1 shares.
    pub const TABLE1: [(QueryKind, f64); 4] = [
        (QueryKind::SerialNumber, 0.58),
        (QueryKind::Mail, 0.24),
        (QueryKind::DeptDiv, 0.16),
        (QueryKind::Location, 0.02),
    ];

    /// The template string reported in Table 1.
    pub fn template(&self) -> &'static str {
        match self {
            QueryKind::SerialNumber => "(serialNumber=_)",
            QueryKind::Mail => "(mail=_)",
            QueryKind::DeptDiv => "(&(dept=_)(div=_))",
            QueryKind::Location => "(location=_)",
        }
    }
}

impl fmt::Display for QueryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.template())
    }
}

/// One query of the trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TracedQuery {
    /// Which Table 1 type the query belongs to.
    pub kind: QueryKind,
    /// The concrete search request (base = DIT root, as issued by
    /// minimally directory-enabled applications, §3.1.1).
    pub request: SearchRequest,
}

/// Trace generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of queries to generate.
    pub queries: usize,
    /// Query-type mix (fractions for serial, mail, dept, location).
    pub mix: [f64; 4],
    /// Zipf exponent for person popularity.
    pub person_zipf: f64,
    /// Zipf exponent for department popularity.
    pub dept_zipf: f64,
    /// Zipf exponent for location popularity.
    pub location_zipf: f64,
    /// Probability a person query targets the geography of interest (the
    /// replica serves that geography's users).
    pub geography_bias: f64,
    /// Probability of re-issuing one of the last `temporal_window`
    /// queries (temporal locality, behind the §7.4 query-cache curves).
    pub temporal_locality: f64,
    /// Re-reference window length.
    pub temporal_window: usize,
    /// Fraction of person queries whose target is drawn from a
    /// *scattered* popularity order (hot individuals spread uniformly over
    /// the serial space). Scattered targets cannot be captured by compact
    /// generalized filters — only the recent-query cache catches their
    /// re-references — which is what keeps the "generalized only" curve of
    /// Figures 8–9 below 1.0 and makes "both" win.
    pub scattered_popularity: f64,
    /// Queries between department-popularity drift steps (0 disables
    /// drift). Drift is what makes shorter revolution intervals pay off
    /// (Figures 5 and 7).
    pub dept_drift_period: usize,
    /// How many rank positions the department popularity rotates per
    /// drift step.
    pub dept_drift_step: usize,
    /// Department ranks that never drift — the stable hot head real
    /// workloads exhibit. Static selections capture the head; dynamic
    /// selection is needed for the drifting tail.
    pub dept_stable_head: usize,
    /// Country (an index into [`EnterpriseDirectory::countries`]) whose
    /// employees receive a transient popularity spike — the *flash crowd*
    /// / diurnal-shift knob of the scenario matrix. `None` (the default)
    /// disables the spike and leaves the random stream byte-identical to
    /// configs predating the knob.
    #[serde(default)]
    pub hot_country: Option<usize>,
    /// Probability a person query targets the hot country when
    /// `hot_country` is set. Applied before the scattered/geography
    /// split, so a high bias overrides the steady-state popularity.
    #[serde(default)]
    pub hot_country_bias: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            seed: 0x7ACE,
            queries: 50_000,
            mix: [0.58, 0.24, 0.16, 0.02],
            person_zipf: 0.8,
            dept_zipf: 0.95,
            location_zipf: 0.7,
            geography_bias: 0.75,
            temporal_locality: 0.2,
            temporal_window: 100,
            scattered_popularity: 0.25,
            dept_drift_period: 2000,
            dept_drift_step: 9,
            dept_stable_head: 4,
            hot_country: None,
            hot_country_bias: 0.0,
        }
    }
}

/// Generates query traces against a generated directory.
///
/// Person popularity is Zipf over employees **in serial order within their
/// group**, so hot employees cluster into serial-number regions — the
/// organization of the `serialNumber` attribute that filter generalization
/// exploits (§7.2(a)). The same popular employees are targeted by mail
/// queries, but the mail user part carries no structure, so no compact
/// filter describes the hot set (§7.2(c)).
#[derive(Debug)]
pub struct TraceGenerator {
    geo_ids: Vec<usize>,
    rest_ids: Vec<usize>,
    geo_zipf: Zipf,
    rest_zipf: Zipf,
    scattered_ids: Vec<usize>,
    scattered_zipf: Zipf,
    dept_order: Vec<usize>,
    dept_zipf: Zipf,
    loc_zipf: Zipf,
    country_ids: Vec<Vec<usize>>,
    country_zipfs: Vec<Zipf>,
}

impl TraceGenerator {
    /// Prepares popularity structures for a directory.
    pub fn new(dir: &EnterpriseDirectory, config: &TraceConfig) -> Self {
        // Position of each employee within its country (employees are
        // generated country-contiguously in serial order).
        let mut within = vec![0usize; dir.employees().len()];
        {
            let mut count: std::collections::HashMap<&str, usize> = Default::default();
            for (i, e) in dir.employees().iter().enumerate() {
                let c = count.entry(e.country.as_str()).or_default();
                within[i] = *c;
                *c += 1;
            }
        }
        // Popularity rank = within-country position, interleaved across
        // countries: the hot head consists of the leading serial block of
        // every country in the group, which value-prefix filters capture.
        let mut geo_ids: Vec<usize> = (0..dir.employees().len())
            .filter(|&i| dir.employees()[i].in_geography)
            .collect();
        geo_ids.sort_by_key(|&i| (within[i], dir.employees()[i].country.clone()));
        let mut rest_ids: Vec<usize> = (0..dir.employees().len())
            .filter(|&i| !dir.employees()[i].in_geography)
            .collect();
        rest_ids.sort_by_key(|&i| (within[i], dir.employees()[i].country.clone()));
        // A fixed shuffle decouples department popularity from numbering,
        // while serial popularity stays aligned with serial order.
        let mut dept_order: Vec<usize> = (0..dir.departments().len()).collect();
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0xDEAF);
        for i in (1..dept_order.len()).rev() {
            let j = rng.gen_range(0..=i);
            dept_order.swap(i, j);
        }
        // Scattered popularity: a fixed shuffle of everyone, so the hot
        // head is uniformly spread over countries and serial blocks.
        let mut scattered_ids: Vec<usize> = (0..dir.employees().len()).collect();
        for i in (1..scattered_ids.len()).rev() {
            let j = rng.gen_range(0..=i);
            scattered_ids.swap(i, j);
        }
        // Per-country populations in serial order (employees are generated
        // country-contiguously), so a hot-country spike concentrates in
        // that country's serial block — capturable by prefix filters.
        let country_index: std::collections::HashMap<&str, usize> = dir
            .countries()
            .iter()
            .enumerate()
            .map(|(i, (c, _))| (c.as_str(), i))
            .collect();
        let mut country_ids: Vec<Vec<usize>> = vec![Vec::new(); dir.countries().len()];
        for (i, e) in dir.employees().iter().enumerate() {
            if let Some(&c) = country_index.get(e.country.as_str()) {
                country_ids[c].push(i);
            }
        }
        let country_zipfs: Vec<Zipf> =
            country_ids.iter().map(|ids| Zipf::new(ids.len().max(1), config.person_zipf)).collect();
        TraceGenerator {
            geo_zipf: Zipf::new(geo_ids.len().max(1), config.person_zipf),
            rest_zipf: Zipf::new(rest_ids.len().max(1), config.person_zipf),
            geo_ids,
            rest_ids,
            scattered_zipf: Zipf::new(scattered_ids.len().max(1), config.person_zipf),
            scattered_ids,
            dept_zipf: Zipf::new(dept_order.len().max(1), config.dept_zipf),
            dept_order,
            loc_zipf: Zipf::new(dir.locations().len().max(1), config.location_zipf),
            country_ids,
            country_zipfs,
        }
    }

    /// Generates a trace.
    pub fn generate(&self, dir: &EnterpriseDirectory, config: &TraceConfig) -> Vec<TracedQuery> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut out = Vec::with_capacity(config.queries);
        let mut recent: VecDeque<TracedQuery> = VecDeque::with_capacity(config.temporal_window);
        let mut dept_offset = 0usize;
        for i in 0..config.queries {
            if config.dept_drift_period > 0 && i > 0 && i % config.dept_drift_period == 0 {
                dept_offset += config.dept_drift_step;
            }
            let q = if !recent.is_empty() && rng.gen::<f64>() < config.temporal_locality {
                recent[rng.gen_range(0..recent.len())].clone()
            } else {
                self.fresh_query(dir, config, &mut rng, dept_offset)
            };
            if recent.len() == config.temporal_window {
                recent.pop_front();
            }
            recent.push_back(q.clone());
            out.push(q);
        }
        out
    }

    fn fresh_query(
        &self,
        dir: &EnterpriseDirectory,
        config: &TraceConfig,
        rng: &mut StdRng,
        dept_offset: usize,
    ) -> TracedQuery {
        let kind = self.pick_kind(config, rng);
        let request = match kind {
            QueryKind::SerialNumber => {
                let e = &dir.employees()[self.pick_person(config, rng)];
                SearchRequest::from_root(
                    Filter::parse(&format!("(serialNumber={})", e.serial)).expect("valid filter"),
                )
            }
            QueryKind::Mail => {
                let e = &dir.employees()[self.pick_person(config, rng)];
                SearchRequest::from_root(
                    Filter::parse(&format!("(mail={})", e.mail)).expect("valid filter"),
                )
            }
            QueryKind::DeptDiv => {
                let n = self.dept_order.len();
                let head = config.dept_stable_head.min(n);
                let zr = self.dept_zipf.sample(rng);
                // The hot head is stable; ranks beyond it rotate slowly.
                let rank = if zr < head || n == head {
                    zr
                } else {
                    head + (zr - head + dept_offset) % (n - head)
                };
                let (dept, div) = &dir.departments()[self.dept_order[rank]];
                SearchRequest::from_root(
                    Filter::parse(&format!("(&(dept={dept})(div={div}))")).expect("valid filter"),
                )
            }
            QueryKind::Location => {
                let name = &dir.locations()[self.loc_zipf.sample(rng)];
                SearchRequest::from_root(
                    Filter::parse(&format!("(location={name})")).expect("valid filter"),
                )
            }
        };
        TracedQuery { kind, request }
    }

    fn pick_kind(&self, config: &TraceConfig, rng: &mut StdRng) -> QueryKind {
        let u: f64 = rng.gen();
        let kinds = [
            QueryKind::SerialNumber,
            QueryKind::Mail,
            QueryKind::DeptDiv,
            QueryKind::Location,
        ];
        let mut acc = 0.0;
        for (i, share) in config.mix.iter().enumerate() {
            acc += share;
            if u < acc {
                return kinds[i];
            }
        }
        QueryKind::Location
    }

    fn pick_person(&self, config: &TraceConfig, rng: &mut StdRng) -> usize {
        // The hot-country spike pre-empts the steady-state popularity; when
        // disabled no random draw is made, so traces without the knob are
        // byte-identical to those of earlier configs.
        if let Some(hc) = config.hot_country {
            if let Some(ids) = self.country_ids.get(hc) {
                if !ids.is_empty() && rng.gen::<f64>() < config.hot_country_bias {
                    return ids[self.country_zipfs[hc].sample(rng)];
                }
            }
        }
        if rng.gen::<f64>() < config.scattered_popularity {
            return self.scattered_ids[self.scattered_zipf.sample(rng)];
        }
        if !self.geo_ids.is_empty() && (self.rest_ids.is_empty() || rng.gen::<f64>() < config.geography_bias)
        {
            self.geo_ids[self.geo_zipf.sample(rng)]
        } else {
            self.rest_ids[self.rest_zipf.sample(rng)]
        }
    }
}

/// Measured distribution of query kinds in a trace (for regenerating
/// Table 1).
pub fn distribution(trace: &[TracedQuery]) -> Vec<(QueryKind, f64)> {
    let kinds = [
        QueryKind::SerialNumber,
        QueryKind::Mail,
        QueryKind::DeptDiv,
        QueryKind::Location,
    ];
    kinds
        .iter()
        .map(|k| {
            let n = trace.iter().filter(|q| q.kind == *k).count();
            (*k, n as f64 / trace.len().max(1) as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::DirectoryConfig;

    fn setup() -> (EnterpriseDirectory, TraceConfig) {
        let dir = EnterpriseDirectory::generate(DirectoryConfig::small());
        let cfg = TraceConfig { queries: 5000, ..TraceConfig::default() };
        (dir, cfg)
    }

    #[test]
    fn mix_matches_table1() {
        let (dir, cfg) = setup();
        let trace = TraceGenerator::new(&dir, &cfg).generate(&dir, &cfg);
        let dist = distribution(&trace);
        for ((_, measured), (_, expected)) in dist.iter().zip(QueryKind::TABLE1) {
            assert!(
                (measured - expected).abs() < 0.04,
                "kind share {measured} vs expected {expected}"
            );
        }
    }

    #[test]
    fn serial_queries_hit_exactly_one_entry() {
        let (dir, cfg) = setup();
        let trace = TraceGenerator::new(&dir, &cfg).generate(&dir, &cfg);
        let q = trace
            .iter()
            .find(|q| q.kind == QueryKind::SerialNumber)
            .expect("mix has serial queries");
        assert_eq!(dir.dit().search(&q.request).len(), 1);
    }

    #[test]
    fn dept_queries_return_department_entries() {
        let (dir, cfg) = setup();
        let trace = TraceGenerator::new(&dir, &cfg).generate(&dir, &cfg);
        let q = trace
            .iter()
            .find(|q| q.kind == QueryKind::DeptDiv)
            .expect("mix has dept queries");
        assert!(!dir.dit().search(&q.request).is_empty());
    }

    #[test]
    fn temporal_locality_produces_repeats() {
        let (dir, cfg) = setup();
        let trace = TraceGenerator::new(&dir, &cfg).generate(&dir, &cfg);
        let mut repeats = 0;
        for w in trace.windows(100) {
            let last = w.last().expect("window of 100");
            if w[..99].iter().any(|q| q.request == last.request) {
                repeats += 1;
            }
        }
        let frac = repeats as f64 / (trace.len() - 100) as f64;
        assert!(frac > 0.15, "re-reference fraction {frac} too low");
    }

    #[test]
    fn geography_bias_targets_geography() {
        let (dir, cfg) = setup();
        let trace = TraceGenerator::new(&dir, &cfg).generate(&dir, &cfg);
        let geo_serials: std::collections::HashSet<&str> = dir
            .employees()
            .iter()
            .filter(|e| e.in_geography)
            .map(|e| e.serial.as_str())
            .collect();
        let serial_queries: Vec<&TracedQuery> = trace
            .iter()
            .filter(|q| q.kind == QueryKind::SerialNumber)
            .collect();
        let geo_hits = serial_queries
            .iter()
            .filter(|q| {
                let f = q.request.filter().to_string();
                let sn = f.trim_start_matches("(serialNumber=").trim_end_matches(')');
                geo_serials.contains(sn)
            })
            .count();
        let frac = geo_hits as f64 / serial_queries.len() as f64;
        assert!(frac > 0.5, "geography fraction {frac}");
    }

    #[test]
    fn dept_popularity_drifts_but_head_is_stable() {
        let dir = EnterpriseDirectory::generate(DirectoryConfig::small());
        let cfg = TraceConfig { queries: 20_000, ..TraceConfig::default() };
        let trace = TraceGenerator::new(&dir, &cfg).generate(&dir, &cfg);
        let dept_of = |q: &TracedQuery| {
            let f = q.request.filter().to_string();
            f.split("(dept=").nth(1).map(|s| s.split(')').next().unwrap_or("").to_owned())
        };
        let quarter = trace.len() / 4;
        let count = |range: &[TracedQuery]| {
            let mut m: std::collections::HashMap<String, usize> = Default::default();
            for q in range.iter().filter(|q| q.kind == QueryKind::DeptDiv) {
                if let Some(d) = dept_of(q) {
                    *m.entry(d).or_default() += 1;
                }
            }
            m
        };
        let first = count(&trace[..quarter]);
        let last = count(&trace[3 * quarter..]);
        let top = |m: &std::collections::HashMap<String, usize>, k: usize| {
            let mut v: Vec<(&String, &usize)> = m.iter().collect();
            v.sort_by(|a, b| b.1.cmp(a.1));
            v.into_iter().take(k).map(|(d, _)| d.clone()).collect::<Vec<_>>()
        };
        let top_first = top(&first, 8);
        let top_last = top(&last, 8);
        // The stable head keeps some departments hot across the whole
        // trace…
        let common = top_first.iter().filter(|d| top_last.contains(d)).count();
        assert!(common >= 2, "no stable head: {top_first:?} vs {top_last:?}");
        // …while the drifting tail changes the rest of the hot set.
        assert!(common < 8, "no drift at all: {top_first:?}");
    }

    #[test]
    fn deterministic_trace() {
        let (dir, cfg) = setup();
        let a = TraceGenerator::new(&dir, &cfg).generate(&dir, &cfg);
        let b = TraceGenerator::new(&dir, &cfg).generate(&dir, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.request, y.request);
        }
    }

    #[test]
    fn popularity_concentrates_in_serial_regions() {
        // The top serial prefixes should cover a large share of serial
        // queries — the property prefix filters exploit.
        let (dir, cfg) = setup();
        let trace = TraceGenerator::new(&dir, &cfg).generate(&dir, &cfg);
        let mut prefix_counts: std::collections::HashMap<String, usize> = Default::default();
        let mut total = 0usize;
        for q in trace.iter().filter(|q| q.kind == QueryKind::SerialNumber) {
            let f = q.request.filter().to_string();
            let sn = f.trim_start_matches("(serialNumber=").trim_end_matches(')');
            *prefix_counts.entry(sn[..4].to_owned()).or_default() += 1;
            total += 1;
        }
        let mut counts: Vec<usize> = prefix_counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top5: usize = counts.iter().take(5).sum();
        let frac = top5 as f64 / total as f64;
        assert!(frac > 0.35, "top-5 serial prefixes cover only {frac}");
    }
}
