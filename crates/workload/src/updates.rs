//! Update stream generation for the update-traffic experiments (§7.3).

use crate::directory::EnterpriseDirectory;
use fbdr_dit::{Modification, UpdateOp};
use fbdr_ldap::Entry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Update stream parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UpdateConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of update operations.
    pub ops: usize,
    /// Probability of a modify (phone/mail/department change).
    pub p_modify: f64,
    /// Probability of an employee add (remainder after modify is split
    /// between add and delete).
    pub p_add: f64,
    /// Probability a modify changes `departmentNumber` (moves the entry
    /// between department filters); others touch phone/mail.
    pub p_dept_change: f64,
}

impl Default for UpdateConfig {
    fn default() -> Self {
        UpdateConfig { seed: 0x0BDA7E, ops: 2000, p_modify: 0.8, p_add: 0.1, p_dept_change: 0.15 }
    }
}

/// Generates a valid-when-applied-in-order update stream against a
/// generated directory.
#[derive(Debug)]
pub struct UpdateGenerator {
    alive: Vec<String>,
    serials: Vec<String>,
    next_serial: usize,
    next_id: usize,
    departments: Vec<(String, String)>,
    countries: Vec<String>,
}

impl UpdateGenerator {
    /// Prepares the generator from the initial directory state.
    pub fn new(dir: &EnterpriseDirectory) -> Self {
        let alive: Vec<String> = dir.employees().iter().map(|e| e.dn_string.clone()).collect();
        let serials: Vec<String> = dir.employees().iter().map(|e| e.serial.clone()).collect();
        let max_serial = dir
            .employees()
            .iter()
            .map(|e| e.serial.parse::<usize>().expect("numeric serial"))
            .max()
            .unwrap_or(100_000);
        UpdateGenerator {
            next_id: alive.len(),
            alive,
            serials,
            next_serial: max_serial + 1,
            departments: dir.departments().to_vec(),
            countries: dir.countries().iter().map(|(c, _)| c.clone()).collect(),
        }
    }

    /// Generates the stream. Operations are valid when applied in order to
    /// the directory the generator was created from.
    pub fn generate(&mut self, config: &UpdateConfig) -> Vec<UpdateOp> {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut out = Vec::with_capacity(config.ops);
        for _ in 0..config.ops {
            let u: f64 = rng.gen();
            let op = if u < config.p_modify || self.alive.is_empty() {
                self.modify(&mut rng, config)
            } else if u < config.p_modify + config.p_add {
                self.add(&mut rng)
            } else {
                self.delete(&mut rng)
            };
            out.push(op);
        }
        out
    }

    fn modify(&mut self, rng: &mut StdRng, config: &UpdateConfig) -> UpdateOp {
        let idx = rng.gen_range(0..self.alive.len());
        let dn = self.alive[idx].parse().expect("tracked dn valid");
        let mods = if rng.gen::<f64>() < config.p_dept_change {
            let (dept, div) = &self.departments[rng.gen_range(0..self.departments.len())];
            vec![
                Modification::Replace("departmentNumber".into(), vec![dept.as_str().into()]),
                Modification::Replace("division".into(), vec![div.as_str().into()]),
            ]
        } else if rng.gen::<bool>() {
            vec![Modification::Replace(
                "telephoneNumber".into(),
                vec![format!("261-{:07}", rng.gen_range(0..9_999_999)).into()],
            )]
        } else {
            vec![Modification::Replace(
                "roomNumber".into(),
                vec![format!("r{}", rng.gen_range(0..5000)).into()],
            )]
        };
        UpdateOp::Modify { dn, mods }
    }

    fn add(&mut self, rng: &mut StdRng) -> UpdateOp {
        let cc = &self.countries[rng.gen_range(0..self.countries.len())];
        let id = self.next_id;
        self.next_id += 1;
        let serial = format!("{:06}", self.next_serial);
        self.next_serial += 1;
        let user: String = (0..8)
            .map(|_| char::from_digit(rng.gen_range(0..36), 36).expect("base36 digit"))
            .collect();
        let (dept, div) = self.departments[rng.gen_range(0..self.departments.len())].clone();
        let dn_string = format!("cn=emp{id:06},c={cc},o=xyz");
        let entry = Entry::new(dn_string.parse().expect("valid dn"))
            .with("objectclass", "inetOrgPerson")
            .with("cn", &format!("emp{id:06}"))
            .with("serialNumber", &serial)
            .with("mail", &format!("{user}@{cc}.xyz.com"))
            .with("departmentNumber", &dept)
            .with("division", &div);
        self.alive.push(dn_string);
        self.serials.push(serial);
        UpdateOp::Add(entry)
    }

    fn delete(&mut self, rng: &mut StdRng) -> UpdateOp {
        let idx = rng.gen_range(0..self.alive.len());
        let dn_string = self.alive.swap_remove(idx);
        self.serials.swap_remove(idx);
        UpdateOp::Delete(dn_string.parse().expect("tracked dn valid"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::DirectoryConfig;
    use fbdr_dit::DitStore;

    fn apply_all(dit: &mut DitStore, ops: &[UpdateOp]) -> usize {
        let mut failures = 0;
        for op in ops {
            if dit.apply(op.clone()).is_err() {
                failures += 1;
            }
        }
        failures
    }

    #[test]
    fn stream_is_valid_in_order() {
        let dir = EnterpriseDirectory::generate(DirectoryConfig::small());
        let mut gen = UpdateGenerator::new(&dir);
        let ops = gen.generate(&UpdateConfig { ops: 500, ..UpdateConfig::default() });
        assert_eq!(ops.len(), 500);
        let (mut dit, _) = dir.into_parts();
        let failures = apply_all(&mut dit, &ops);
        assert_eq!(failures, 0, "{failures} invalid ops in stream");
    }

    #[test]
    fn stream_mixes_kinds() {
        let dir = EnterpriseDirectory::generate(DirectoryConfig::small());
        let mut gen = UpdateGenerator::new(&dir);
        let ops = gen.generate(&UpdateConfig { ops: 800, ..UpdateConfig::default() });
        let mods = ops.iter().filter(|o| matches!(o, UpdateOp::Modify { .. })).count();
        let adds = ops.iter().filter(|o| matches!(o, UpdateOp::Add(_))).count();
        let dels = ops.iter().filter(|o| matches!(o, UpdateOp::Delete(_))).count();
        assert!(mods > adds && mods > dels);
        assert!(adds > 0 && dels > 0);
    }

    #[test]
    fn deterministic_stream() {
        let dir = EnterpriseDirectory::generate(DirectoryConfig::small());
        let a = UpdateGenerator::new(&dir).generate(&UpdateConfig::default());
        let b = UpdateGenerator::new(&dir).generate(&UpdateConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(format!("{x}"), format!("{y}"));
        }
    }
}
