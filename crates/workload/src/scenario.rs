//! The adversarial scenario matrix: phased workloads that stress an
//! *adaptive* filter selection in ways the steady-state trace of §7.1
//! cannot.
//!
//! Each scenario is a deterministic, seeded schedule of query/update
//! events built from per-phase [`TraceConfig`] variants over a single
//! directory, with one stateful [`UpdateGenerator`] threading the update
//! stream across phases (so operations stay valid in order). Phase
//! boundaries are recorded so experiments can report *end-state* quality
//! (the final phase) separately from transient adaptation cost.
//!
//! The five scenarios:
//!
//! * **flash crowd** — one (non-geography) country spikes to ~50× its
//!   steady-state popularity, then subsides; the selection must promote
//!   that country's serial block quickly, and drop it afterwards.
//! * **diurnal shift** — the hot country rotates phase by phase, the
//!   follow-the-sun pattern of a worldwide directory.
//! * **churn flip** — a read-mostly workload flips update-heavy (with
//!   department moves that thrash dept filters); net-benefit admission
//!   should stop chasing filters whose upkeep exceeds their value.
//! * **multi tenant** — two disjoint hot sets alternate; hysteresis
//!   should keep both resident instead of swapping wholesale each phase.
//! * **cache buster** — scattered popularity, no temporal locality: an
//!   adversary for which *no* compact filter helps; the selection should
//!   do (almost) nothing rather than churn.

use crate::directory::EnterpriseDirectory;
use crate::trace::{TraceConfig, TraceGenerator, TracedQuery};
use crate::updates::{UpdateConfig, UpdateGenerator};
use fbdr_dit::UpdateOp;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five adversarial workload scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// One region spikes to ~50× its usual query share, then subsides.
    FlashCrowd,
    /// The hot region rotates across countries phase by phase.
    DiurnalShift,
    /// A read-mostly workload flips to update-heavy and back.
    ChurnFlip,
    /// Two tenants with disjoint hot sets alternate phases.
    MultiTenant,
    /// Scattered targets, no locality — nothing generalizes.
    CacheBuster,
}

impl ScenarioKind {
    /// Every scenario, in canonical order.
    pub const ALL: [ScenarioKind; 5] = [
        ScenarioKind::FlashCrowd,
        ScenarioKind::DiurnalShift,
        ScenarioKind::ChurnFlip,
        ScenarioKind::MultiTenant,
        ScenarioKind::CacheBuster,
    ];

    /// Stable snake_case name (used in reports and CLI flags).
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::FlashCrowd => "flash_crowd",
            ScenarioKind::DiurnalShift => "diurnal_shift",
            ScenarioKind::ChurnFlip => "churn_flip",
            ScenarioKind::MultiTenant => "multi_tenant",
            ScenarioKind::CacheBuster => "cache_buster",
        }
    }

    /// Parses a [`name`](Self::name) back into a kind.
    pub fn parse(s: &str) -> Option<ScenarioKind> {
        ScenarioKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Scenario construction parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Base RNG seed; each phase derives its own stream from it.
    pub seed: u64,
    /// Queries generated per phase.
    pub queries_per_phase: usize,
    /// Master update operations interleaved per query in *normal* phases
    /// (the churn-flip scenario multiplies this in its heavy phase).
    pub updates_per_query: f64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig { seed: 0x5CE0, queries_per_phase: 6000, updates_per_query: 0.04 }
    }
}

/// One event of a scenario schedule, in issue order.
#[derive(Debug, Clone)]
pub enum WorkloadEvent {
    /// A client query against the replica.
    Query(TracedQuery),
    /// A write applied at the master (propagated per the stored filters).
    Update(UpdateOp),
}

/// Boundary of one scenario phase inside the event schedule.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PhaseBound {
    /// Human-readable phase label (e.g. `"spike"`).
    pub label: &'static str,
    /// Index into [`Scenario::events`] where the phase begins.
    pub first_event: usize,
    /// Number of queries issued before the phase begins.
    pub first_query: usize,
}

/// A built scenario: the event schedule plus its phase boundaries.
#[derive(Debug)]
pub struct Scenario {
    /// Which scenario this is.
    pub kind: ScenarioKind,
    /// Queries and updates, in issue order.
    pub events: Vec<WorkloadEvent>,
    /// Phase boundaries, in order; the last one starts the *end state*
    /// whose quality adaptive selection is judged on.
    pub phases: Vec<PhaseBound>,
    /// Total queries in `events`.
    pub queries: usize,
}

/// Per-phase recipe: a trace shape plus an update density.
struct PhaseSpec {
    label: &'static str,
    trace: TraceConfig,
    updates_per_query: f64,
    update: UpdateConfig,
}

impl PhaseSpec {
    fn new(label: &'static str, trace: TraceConfig, cfg: &ScenarioConfig) -> Self {
        PhaseSpec {
            label,
            trace,
            updates_per_query: cfg.updates_per_query,
            update: UpdateConfig::default(),
        }
    }
}

impl Scenario {
    /// Builds the deterministic event schedule for `kind` against `dir`.
    pub fn build(kind: ScenarioKind, dir: &EnterpriseDirectory, cfg: &ScenarioConfig) -> Scenario {
        let specs = phase_specs(kind, dir, cfg);
        let mut updates = UpdateGenerator::new(dir);
        let mut events = Vec::new();
        let mut phases = Vec::new();
        let mut queries = 0usize;
        let mut credit = 0.0f64; // fractional update debt carried across phases
        for (pi, spec) in specs.into_iter().enumerate() {
            phases.push(PhaseBound { label: spec.label, first_event: events.len(), first_query: queries });
            // Same structural seed every phase (stable department shuffle /
            // scattered order); only the draw stream varies per phase.
            let mut tc = spec.trace;
            tc.seed = cfg.seed;
            tc.queries = cfg.queries_per_phase;
            let gen = TraceGenerator::new(dir, &tc);
            tc.seed = cfg.seed ^ (pi as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let phase_queries = gen.generate(dir, &tc);
            // Pass 1: how many updates this phase owes.
            let mut c = credit;
            let mut owed = 0usize;
            for _ in &phase_queries {
                c += spec.updates_per_query;
                while c >= 1.0 {
                    owed += 1;
                    c -= 1.0;
                }
            }
            let mut ops = updates
                .generate(&UpdateConfig {
                    seed: tc.seed ^ 0x0BDA7E,
                    ops: owed,
                    ..spec.update
                })
                .into_iter();
            // Pass 2: interleave queries with the owed updates.
            for q in phase_queries {
                events.push(WorkloadEvent::Query(q));
                queries += 1;
                credit += spec.updates_per_query;
                while credit >= 1.0 {
                    let op = ops.next().expect("owed updates cover credit");
                    events.push(WorkloadEvent::Update(op));
                    credit -= 1.0;
                }
            }
        }
        Scenario { kind, events, phases, queries }
    }

    /// Query count before the final phase — experiments measure end-state
    /// quality over queries at or after this index.
    pub fn final_phase_first_query(&self) -> usize {
        self.phases.last().map(|p| p.first_query).unwrap_or(0)
    }

    /// Number of update events in the schedule.
    pub fn update_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e, WorkloadEvent::Update(_))).count()
    }
}

/// Picks `n` distinct *non-geography* hot countries (the countries list is
/// geography-first, so indices from the back are outside the replica's
/// home geography — a spike there is invisible to a geography-static
/// selection and forces genuine adaptation).
fn hot_countries(dir: &EnterpriseDirectory, n: usize) -> Vec<usize> {
    let total = dir.countries().len();
    (0..n.min(total)).map(|i| total - 1 - i).collect()
}

fn phase_specs(
    kind: ScenarioKind,
    dir: &EnterpriseDirectory,
    cfg: &ScenarioConfig,
) -> Vec<PhaseSpec> {
    let base = TraceConfig::default();
    match kind {
        ScenarioKind::FlashCrowd => {
            let hot = hot_countries(dir, 1)[0];
            let spike = TraceConfig { hot_country: Some(hot), hot_country_bias: 0.98, ..base.clone() };
            vec![
                PhaseSpec::new("baseline", base.clone(), cfg),
                PhaseSpec::new("spike", spike, cfg),
                PhaseSpec::new("recovery", base, cfg),
            ]
        }
        ScenarioKind::DiurnalShift => {
            let hots = hot_countries(dir, 4);
            hots.into_iter()
                .enumerate()
                .map(|(i, hc)| {
                    let t = TraceConfig {
                        hot_country: Some(hc),
                        hot_country_bias: 0.9,
                        ..base.clone()
                    };
                    let labels = ["dawn", "noon", "dusk", "night"];
                    PhaseSpec::new(labels[i.min(3)], t, cfg)
                })
                .collect()
        }
        ScenarioKind::ChurnFlip => {
            let mut heavy = PhaseSpec::new("update_heavy", base.clone(), cfg);
            heavy.updates_per_query = (cfg.updates_per_query * 50.0).max(1.0);
            // Department moves dominate the heavy phase, thrashing the
            // dept filters that the read phases made profitable.
            heavy.update.p_dept_change = 0.5;
            vec![
                PhaseSpec::new("read_mostly", base.clone(), cfg),
                heavy,
                PhaseSpec::new("read_again", base, cfg),
            ]
        }
        ScenarioKind::MultiTenant => {
            let hots = hot_countries(dir, 2);
            let tenant = |hc| TraceConfig {
                hot_country: Some(hc),
                hot_country_bias: 0.95,
                ..base.clone()
            };
            vec![
                PhaseSpec::new("tenant_a", tenant(hots[0]), cfg),
                PhaseSpec::new("tenant_b", tenant(hots[1 % hots.len()]), cfg),
                PhaseSpec::new("tenant_a2", tenant(hots[0]), cfg),
                PhaseSpec::new("tenant_b2", tenant(hots[1 % hots.len()]), cfg),
            ]
        }
        ScenarioKind::CacheBuster => {
            let buster = TraceConfig {
                scattered_popularity: 1.0,
                temporal_locality: 0.0,
                person_zipf: 0.2,
                ..base
            };
            vec![
                PhaseSpec::new("buster", buster.clone(), cfg),
                PhaseSpec::new("buster2", buster, cfg),
            ]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::DirectoryConfig;
    use crate::trace::QueryKind;
    use std::collections::HashSet;

    fn small() -> (EnterpriseDirectory, ScenarioConfig) {
        let dir = EnterpriseDirectory::generate(DirectoryConfig::small());
        let cfg = ScenarioConfig { queries_per_phase: 1500, ..ScenarioConfig::default() };
        (dir, cfg)
    }

    fn serial_of(q: &TracedQuery) -> Option<String> {
        let f = q.request.filter().to_string();
        f.strip_prefix("(serialNumber=").map(|s| s.trim_end_matches(')').to_owned())
    }

    fn country_serials(dir: &EnterpriseDirectory, country_idx: usize) -> HashSet<String> {
        let code = &dir.countries()[country_idx].0;
        dir.employees()
            .iter()
            .filter(|e| &e.country == code)
            .map(|e| e.serial.clone())
            .collect()
    }

    /// Fraction of a phase's serial queries that target `serials`.
    fn phase_fraction(
        s: &Scenario,
        phase: usize,
        serials: &HashSet<String>,
    ) -> f64 {
        let start = s.phases[phase].first_event;
        let end = s.phases.get(phase + 1).map(|p| p.first_event).unwrap_or(s.events.len());
        let mut hits = 0usize;
        let mut total = 0usize;
        for e in &s.events[start..end] {
            if let WorkloadEvent::Query(q) = e {
                if q.kind == QueryKind::SerialNumber {
                    if let Some(sn) = serial_of(q) {
                        total += 1;
                        if serials.contains(&sn) {
                            hits += 1;
                        }
                    }
                }
            }
        }
        hits as f64 / total.max(1) as f64
    }

    #[test]
    fn every_scenario_builds_and_is_deterministic() {
        let (dir, cfg) = small();
        for kind in ScenarioKind::ALL {
            let a = Scenario::build(kind, &dir, &cfg);
            let b = Scenario::build(kind, &dir, &cfg);
            assert_eq!(a.queries, b.queries, "{kind}");
            assert_eq!(a.events.len(), b.events.len(), "{kind}");
            assert!(a.phases.len() >= 2, "{kind} needs phases for end-state reporting");
            assert_eq!(a.queries, cfg.queries_per_phase * a.phases.len(), "{kind}");
            for (x, y) in a.events.iter().zip(&b.events) {
                match (x, y) {
                    (WorkloadEvent::Query(p), WorkloadEvent::Query(q)) => {
                        assert_eq!(p.request, q.request)
                    }
                    (WorkloadEvent::Update(p), WorkloadEvent::Update(q)) => {
                        assert_eq!(format!("{p}"), format!("{q}"))
                    }
                    _ => panic!("{kind}: schedules diverge in event kind"),
                }
            }
        }
    }

    #[test]
    fn scenario_updates_apply_in_order() {
        let (dir, cfg) = small();
        for kind in ScenarioKind::ALL {
            let s = Scenario::build(kind, &dir, &cfg);
            let mut dit = dir.dit().clone();
            for e in &s.events {
                if let WorkloadEvent::Update(op) = e {
                    dit.apply(op.clone()).unwrap_or_else(|e| panic!("{kind}: invalid op: {e:?}"));
                }
            }
        }
    }

    #[test]
    fn flash_crowd_spikes_then_recovers() {
        let (dir, cfg) = small();
        let s = Scenario::build(ScenarioKind::FlashCrowd, &dir, &cfg);
        let hot = country_serials(&dir, dir.countries().len() - 1);
        let before = phase_fraction(&s, 0, &hot);
        let during = phase_fraction(&s, 1, &hot);
        let after = phase_fraction(&s, 2, &hot);
        assert!(during > 0.9, "spike phase fraction {during}");
        assert!(before < 0.2 && after < 0.2, "baseline fractions {before}/{after}");
    }

    #[test]
    fn diurnal_shift_rotates_hot_country() {
        let (dir, cfg) = small();
        let s = Scenario::build(ScenarioKind::DiurnalShift, &dir, &cfg);
        let n = dir.countries().len();
        for (phase, idx) in (0..4).zip([n - 1, n - 2, n - 3, n - 4]) {
            let frac = phase_fraction(&s, phase, &country_serials(&dir, idx));
            assert!(frac > 0.8, "phase {phase} fraction {frac} for country {idx}");
        }
    }

    #[test]
    fn churn_flip_multiplies_update_density() {
        let (dir, cfg) = small();
        let s = Scenario::build(ScenarioKind::ChurnFlip, &dir, &cfg);
        let count = |phase: usize| {
            let start = s.phases[phase].first_event;
            let end = s.phases.get(phase + 1).map(|p| p.first_event).unwrap_or(s.events.len());
            s.events[start..end].iter().filter(|e| matches!(e, WorkloadEvent::Update(_))).count()
        };
        let (light, heavy, light2) = (count(0), count(1), count(2));
        assert!(heavy >= 10 * light.max(1), "heavy {heavy} vs light {light}");
        assert!(heavy >= 10 * light2.max(1), "heavy {heavy} vs light2 {light2}");
    }

    #[test]
    fn multi_tenant_hot_sets_are_disjoint() {
        let (dir, cfg) = small();
        let s = Scenario::build(ScenarioKind::MultiTenant, &dir, &cfg);
        let n = dir.countries().len();
        let a = country_serials(&dir, n - 1);
        let b = country_serials(&dir, n - 2);
        assert!(a.is_disjoint(&b));
        assert!(phase_fraction(&s, 0, &a) > 0.85);
        assert!(phase_fraction(&s, 1, &b) > 0.85);
        assert!(phase_fraction(&s, 0, &b) < 0.1);
        assert!(phase_fraction(&s, 1, &a) < 0.1);
    }

    #[test]
    fn cache_buster_spreads_serial_targets() {
        let (dir, cfg) = small();
        let s = Scenario::build(ScenarioKind::CacheBuster, &dir, &cfg);
        // Top 5 serial prefixes should cover only a small share — no
        // compact prefix filter can capture this workload.
        let mut prefix_counts: std::collections::HashMap<String, usize> = Default::default();
        let mut total = 0usize;
        for e in &s.events {
            if let WorkloadEvent::Query(q) = e {
                if q.kind == QueryKind::SerialNumber {
                    if let Some(sn) = serial_of(q) {
                        *prefix_counts.entry(sn[..4.min(sn.len())].to_owned()).or_default() += 1;
                        total += 1;
                    }
                }
            }
        }
        let mut counts: Vec<usize> = prefix_counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top5: usize = counts.iter().take(5).sum();
        let frac = top5 as f64 / total.max(1) as f64;
        // Near-uniform: top-5 coverage barely above the uniform baseline
        // of 5/P over the P occupied prefix blocks (the small directory
        // only has ~12, so an absolute threshold would be meaningless).
        let uniform = 5.0 / prefix_counts.len().max(5) as f64;
        assert!(prefix_counts.len() >= 8, "only {} prefix blocks hit", prefix_counts.len());
        assert!(
            frac < uniform * 1.25,
            "cache buster concentrates: top-5 cover {frac}, uniform baseline {uniform}"
        );
    }
}
