//! Fault injection over a *sharded* transport: a `FaultyLink` wrapping a
//! `ShardedMaster` must keep the shard-addressed `_at` legs intact — the
//! coordinator's per-shard recovery (serve one shard stale, heal it by
//! replay while the others keep serving) and persist-mode receivers must
//! work exactly as they do against the unwrapped master. This is the
//! combined coverage the single-master link tests and the fault-free
//! sharded tests each miss: a wrapper that collapsed `_at` to the plain
//! legs would route every exchange by the request base and silently
//! return `None` for every parked persist receiver.

use fbdr_dit::UpdateOp;
use fbdr_faults::{FaultKind, FaultPlan, FaultyLink, SimClock};
use fbdr_ldap::{Dn, Entry, Filter, Scope, SearchRequest};
use fbdr_resync::reconcile::ReconcileItem;
use fbdr_resync::{
    ReSyncControl, ReconcileConfig, ReplicaContent, RetryConfig, ShardContent, ShardCoordinator,
    ShardId, ShardMap, ShardStatus, ShardedMaster, SyncTransport,
};

const COUNTRIES: usize = 2;

fn dn(s: &str) -> Dn {
    s.parse().unwrap()
}

fn country_dn(c: usize) -> Dn {
    dn(&format!("c=s{c},o=xyz"))
}

fn dn_of(id: usize) -> Dn {
    dn(&format!("cn=p{id},c=s{},o=xyz", id % COUNTRIES))
}

fn entry_of(id: usize) -> Entry {
    Entry::new(dn_of(id))
        .with("objectclass", "person")
        .with("cn", &format!("p{id}"))
        .with("mail", "a@x")
}

/// Two shards, one country each, both holding the suffix skeleton.
fn sharded() -> ShardedMaster {
    let mut map = ShardMap::new(ShardId::ZERO);
    for c in 0..COUNTRIES {
        map.assign(country_dn(c), ShardId::new(c as u16));
    }
    let mut m = ShardedMaster::new(map.clone());
    for c in 0..COUNTRIES {
        let dit = m.shard_mut(ShardId::new(c as u16)).dit_mut();
        dit.add_suffix(dn("o=xyz"));
        dit.add(Entry::new(dn("o=xyz"))).unwrap();
        dit.add(Entry::new(country_dn(c)).with("objectclass", "country")).unwrap();
    }
    m
}

fn req() -> SearchRequest {
    SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::parse("(mail=*)").unwrap())
}

fn snappy_retry() -> RetryConfig {
    RetryConfig {
        max_retries: 1,
        base_backoff_ms: 0,
        max_backoff_ms: 0,
        timeout_budget_ms: 10_000,
        jitter_seed: 7,
    }
}

/// The recovery ladder here never reaches reconcile, so the content view
/// is never consulted.
struct NoContent;

impl ShardContent for NoContent {
    fn items(&self, _shard: ShardId) -> Vec<ReconcileItem> {
        Vec::new()
    }
    fn resolve(&self, _shard: ShardId, _key: &str) -> Option<u32> {
        None
    }
    fn dn_of(&self, _shard: ShardId, _id: u32) -> Option<Dn> {
        None
    }
    fn held_dns(&self, _shard: ShardId) -> Vec<Dn> {
        Vec::new()
    }
}

#[test]
fn faulty_sharded_transport_heals_per_shard() {
    // Exchange indices: install polls both shards (ops 0, 1); the first
    // poll of cycle 1 loses its response twice (ops 2, 3 — the retry
    // too), exhausting the snappy budget, while the other shard's poll
    // (op 4) is clean. Cycle 2 (ops 5, 6) is clean everywhere.
    let plan = FaultPlan::builder(11)
        .at(2, FaultKind::DropResponse)
        .at(3, FaultKind::DropResponse)
        .build();
    let mut link = FaultyLink::new(sharded(), plan, SimClock::new());
    let mut coord =
        ShardCoordinator::with_config(link.master().map().clone(), snappy_retry(), ReconcileConfig::default());
    for id in 0..4 {
        link.master_mut().apply(UpdateOp::Add(entry_of(id))).unwrap();
    }

    let (actions, mut composite, _) = coord.install(&mut link, &req()).expect("install");
    let mut content = ReplicaContent::new();
    content.apply_all(&actions);
    assert_eq!(content.len(), 4);
    assert_eq!(composite.len(), 2);

    // Both shards gain entries; the faulted shard's poll must degrade to
    // stale *alone* — its twin keeps delivering.
    for id in 4..8 {
        link.master_mut().apply(UpdateOp::Add(entry_of(id))).unwrap();
    }
    let outcomes = coord.sync_filter(&mut link, &req(), &mut composite, &NoContent);
    let stale: Vec<ShardId> = outcomes
        .iter()
        .filter(|o| o.status == ShardStatus::Stale)
        .map(|o| o.shard)
        .collect();
    assert_eq!(stale.len(), 1, "exactly one shard saw the faults: {outcomes:?}");
    for out in &outcomes {
        if out.shard == stale[0] {
            assert!(out.actions.is_empty());
        } else {
            assert_eq!(out.status, ShardStatus::Updated, "healthy shard stalled");
            assert_eq!(out.actions.len(), 2);
        }
        content.apply_all(&out.actions);
    }
    assert_eq!(content.len(), 6, "only the stale shard's two entries are missing");
    // The stale shard kept its cookie for resumption.
    assert!(composite.get(stale[0]).is_some());

    // Faults over: the kept cookie resumes by replay — the missed batch
    // arrives, with no reinstall and no reconciliation.
    let outcomes = coord.sync_filter(&mut link, &req(), &mut composite, &NoContent);
    for out in &outcomes {
        assert_eq!(out.status, ShardStatus::Updated);
        content.apply_all(&out.actions);
    }
    assert_eq!(content.len(), 8);
    assert_eq!(link.faults_injected(), 2);
    assert_eq!(coord.stats().reinstalls, 0);
    assert_eq!(coord.stats().reconciliations, 0);
}

#[test]
fn persist_receivers_reach_through_a_faulty_sharded_link() {
    let mut link = FaultyLink::new(sharded(), FaultPlan::clean(), SimClock::new());
    let shard = ShardId::new(1);
    let sub = SearchRequest::new(country_dn(1), Scope::Subtree, Filter::parse("(mail=*)").unwrap());

    let resp = link.resync_at(shard, &sub, ReSyncControl::persist(None)).unwrap();
    let cookie = resp.cookie.expect("persist session cookie");
    // The plain leg cannot name a shard, so it must stay inert...
    assert!(link.take_receiver(cookie).is_none());
    // ...while the shard-addressed leg reaches the parked receiver.
    let rx = link
        .take_receiver_at(shard, cookie)
        .expect("the _at leg must reach shard 1's parked receiver");

    link.master_mut().apply(UpdateOp::Add(entry_of(1))).unwrap();
    let batch = rx.try_recv().expect("live notification through the link");
    assert_eq!(batch.actions.len(), 1);
    assert_eq!(link.shard_count(), 2);
}

#[test]
fn crash_restart_of_a_sharded_master_preserves_every_shards_sessions() {
    // Op 2 (the first poll of cycle 1) crashes the whole sharded master;
    // the serialized snapshot must bring back *both* shards' sessions so
    // every cookie resumes incrementally.
    let plan = FaultPlan::builder(3).at(2, FaultKind::CrashRestart).build();
    let mut link = FaultyLink::new(sharded(), plan, SimClock::new());
    let mut coord = ShardCoordinator::with_config(
        link.master().map().clone(),
        snappy_retry(),
        ReconcileConfig::default(),
    );
    for id in 0..4 {
        link.master_mut().apply(UpdateOp::Add(entry_of(id))).unwrap();
    }
    let (actions, mut composite, _) = coord.install(&mut link, &req()).expect("install");
    let mut content = ReplicaContent::new();
    content.apply_all(&actions);

    for id in 4..8 {
        link.master_mut().apply(UpdateOp::Add(entry_of(id))).unwrap();
    }
    let outcomes = coord.sync_filter(&mut link, &req(), &mut composite, &NoContent);
    for out in &outcomes {
        assert_eq!(out.status, ShardStatus::Updated, "sessions must survive the crash");
        content.apply_all(&out.actions);
    }
    assert_eq!(content.len(), 8);
    assert_eq!(coord.stats().reinstalls, 0);
}
