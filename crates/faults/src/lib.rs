//! Deterministic, seed-driven fault injection for the sync path.

pub mod clock;
pub mod link;
pub mod plan;

pub use clock::SimClock;
pub use link::{FaultyLink, FaultyService};
pub use plan::{FaultDecision, FaultKind, FaultPlan, FaultPlanBuilder};
