#![warn(missing_docs)]
//! Deterministic, seed-driven fault injection for the sync path.
//!
//! The paper's ReSync protocol (§5) is designed around an unreliable
//! transport: responses carry cookies precisely so that lost or
//! duplicated messages can be recovered. This crate supplies the
//! adversary. A [`FaultPlan`] is a seeded schedule of per-operation
//! fault decisions (drop the request, drop the response, duplicate it,
//! crash-restart the master, disconnect persist channels, add latency);
//! [`FaultyLink`] applies it between a replica and its `SyncMaster`, and
//! [`FaultyService`] in front of any directory node. A [`SimClock`] ties
//! driver backoff to the plan's simulated latency so whole chaos runs are
//! replayable bit for bit from one seed.

pub mod clock;
pub mod link;
pub mod plan;

pub use clock::SimClock;
pub use link::{FaultTarget, FaultyLink, FaultyService};
pub use plan::{FaultDecision, FaultKind, FaultPlan, FaultPlanBuilder};
