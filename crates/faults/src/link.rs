//! Fault-injecting wrappers: a [`FaultyLink`] between a replica and its
//! master (sharded or not), and a [`FaultyService`] in front of any
//! [`DirectoryService`].
//!
//! Both consult a [`FaultPlan`] per operation, so a seed fully determines
//! which requests are dropped, duplicated or delayed — every chaos run is
//! replayable bit for bit.

use crate::clock::SimClock;
use crate::plan::FaultPlan;
use crossbeam::channel::Receiver;
use fbdr_ldap::SearchRequest;
use fbdr_net::{DirectoryService, ServerOutcome, ShardId};
use fbdr_resync::reconcile::{
    RangeRequest, RangeResponse, ReconcileRequest, ReconcileResponse,
};
use fbdr_resync::{
    Cookie, NotifyBatch, ReSyncControl, ShardedMaster, SyncError, SyncMaster, SyncResponse,
    SyncTransport,
};
use std::sync::Mutex;

/// A master a [`FaultyLink`] can wrap: the transport legs plus the two
/// master-side state transitions faults need to trigger — dropping live
/// persist channels (a persist disconnect) and a crash restart from the
/// serialized snapshot (losing exactly the state that does not survive
/// persistence).
pub trait FaultTarget: SyncTransport {
    /// Drops all live persist-mode notification channels.
    fn drop_persist_channels(&mut self);

    /// Crash the master and restart it from its serialized snapshot.
    fn crash_restart(&mut self);
}

impl FaultTarget for SyncMaster {
    fn drop_persist_channels(&mut self) {
        SyncMaster::drop_persist_channels(self);
    }

    fn crash_restart(&mut self) {
        let snapshot = serde_json::to_string(self).expect("master state must serialize");
        // The observability handle does not survive persistence; carry it
        // across the restart so metric streams span crashes seamlessly.
        let obs = self.obs().clone();
        *self = serde_json::from_str(&snapshot).expect("master state must deserialize");
        self.set_obs(obs);
    }
}

impl FaultTarget for ShardedMaster {
    fn drop_persist_channels(&mut self) {
        ShardedMaster::drop_persist_channels(self);
    }

    fn crash_restart(&mut self) {
        let snapshot = serde_json::to_string(self).expect("master state must serialize");
        let obs: Vec<_> = (0..self.map().shard_count())
            .map(|i| self.shard(ShardId::new(i as u16)).obs().clone())
            .collect();
        *self = serde_json::from_str(&snapshot).expect("master state must deserialize");
        for (i, o) in obs.into_iter().enumerate() {
            self.shard_mut(ShardId::new(i as u16)).set_obs(o);
        }
    }
}

/// An unreliable network link between a replica and its master.
///
/// Implements [`SyncTransport`], so it slots directly under a
/// `SyncDriver`: the driver retries what the link breaks. Faults model
/// the transport, not the master — a *dropped request* never reaches the
/// master, while a *dropped response* is processed by the master and lost
/// on the way back (the case the replay buffer exists for). A *crash
/// restart* serializes the master to JSON and restores it, losing exactly
/// the state that does not survive persistence (live persist channels).
///
/// The link is generic over its [`FaultTarget`]: wrap a [`SyncMaster`]
/// for a single-master deployment or a [`ShardedMaster`] for a sharded
/// one. The shard-addressed `_at` legs forward the explicit shard to the
/// wrapped master (with the same per-exchange fault decisions), so a
/// shard coordinator above the link sees per-shard faults rather than
/// having its addressing silently collapsed to the plain legs.
#[derive(Debug)]
pub struct FaultyLink<M: FaultTarget = SyncMaster> {
    master: M,
    plan: FaultPlan,
    clock: SimClock,
    injected: u64,
}

impl<M: FaultTarget> FaultyLink<M> {
    /// Wraps `master` behind `plan`, advancing `clock` by the plan's
    /// simulated latency on every exchange.
    pub fn new(master: M, plan: FaultPlan, clock: SimClock) -> Self {
        FaultyLink { master, plan, clock, injected: 0 }
    }

    /// The master behind the link.
    pub fn master(&self) -> &M {
        &self.master
    }

    /// Mutable access to the master (to apply updates during a run).
    pub fn master_mut(&mut self) -> &mut M {
        &mut self.master
    }

    /// Unwraps the link, returning the master.
    pub fn into_master(self) -> M {
        self.master
    }

    /// The simulated clock the link advances.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Stops injecting faults from the next operation onward.
    pub fn quiesce(&mut self) {
        self.plan.quiesce();
    }

    /// Number of operations on which at least one fault was injected.
    pub fn faults_injected(&self) -> u64 {
        self.injected
    }

    /// One faulted request/response exchange: decide the faults, apply
    /// the master-side ones (crash, persist disconnect), then run `op`
    /// zero, one or two times depending on drop/duplicate decisions.
    fn exchange<R>(
        &mut self,
        mut op: impl FnMut(&mut M) -> Result<R, SyncError>,
    ) -> Result<R, SyncError> {
        let decision = self.plan.decide();
        if !decision.is_clean() {
            self.injected += 1;
        }
        self.clock.advance_ms(decision.latency_ms);
        if decision.crash_restart {
            self.master.crash_restart();
        }
        if decision.disconnect_persist {
            self.master.drop_persist_channels();
        }
        if decision.drop_request {
            return Err(SyncError::Unavailable("request dropped".into()));
        }
        let mut resp = op(&mut self.master)?;
        if decision.duplicate {
            // The network re-delivered the request; the master sees it
            // twice and must answer both consistently (resync replays
            // identically from the buffer; a duplicated reconcile digest
            // starts an orphan session that falls to idle expiry).
            resp = op(&mut self.master)?;
        }
        if decision.drop_response {
            // The master processed the request, but the replica never
            // hears back.
            return Err(SyncError::Unavailable("response dropped".into()));
        }
        Ok(resp)
    }
}

impl<M: FaultTarget> SyncTransport for FaultyLink<M> {
    fn resync(
        &mut self,
        request: &SearchRequest,
        ctl: ReSyncControl,
    ) -> Result<SyncResponse, SyncError> {
        self.exchange(|m| m.resync(request, ctl))
    }

    fn take_receiver(&mut self, cookie: Cookie) -> Option<Receiver<NotifyBatch>> {
        self.master.take_receiver(cookie)
    }

    fn abandon(&mut self, cookie: Cookie) {
        self.master.abandon(cookie);
    }

    fn reconcile(
        &mut self,
        request: &SearchRequest,
        req: ReconcileRequest,
    ) -> Result<ReconcileResponse, SyncError> {
        self.exchange(|m| m.reconcile(request, req.clone()))
    }

    fn reconcile_ranges(
        &mut self,
        cookie: Cookie,
        req: &RangeRequest,
    ) -> Result<RangeResponse, SyncError> {
        self.exchange(|m| m.reconcile_ranges(cookie, req))
    }

    fn shard_count(&self) -> usize {
        self.master.shard_count()
    }

    fn resync_at(
        &mut self,
        shard: ShardId,
        request: &SearchRequest,
        ctl: ReSyncControl,
    ) -> Result<SyncResponse, SyncError> {
        self.exchange(|m| m.resync_at(shard, request, ctl))
    }

    fn take_receiver_at(&mut self, shard: ShardId, cookie: Cookie) -> Option<Receiver<NotifyBatch>> {
        self.master.take_receiver_at(shard, cookie)
    }

    fn abandon_at(&mut self, shard: ShardId, cookie: Cookie) {
        self.master.abandon_at(shard, cookie);
    }

    fn reconcile_at(
        &mut self,
        shard: ShardId,
        request: &SearchRequest,
        req: ReconcileRequest,
    ) -> Result<ReconcileResponse, SyncError> {
        self.exchange(|m| m.reconcile_at(shard, request, req.clone()))
    }

    fn reconcile_ranges_at(
        &mut self,
        shard: ShardId,
        cookie: Cookie,
        req: &RangeRequest,
    ) -> Result<RangeResponse, SyncError> {
        self.exchange(|m| m.reconcile_ranges_at(shard, cookie, req))
    }
}

/// A fault-injecting front for any [`DirectoryService`] in a network.
///
/// Lost requests, lost responses and crashes all look the same to a
/// search client — the server is [`ServerOutcome::Unavailable`] — so the
/// client's partial-result handling can be exercised deterministically.
#[derive(Debug)]
pub struct FaultyService {
    inner: Box<dyn DirectoryService>,
    plan: Mutex<FaultPlan>,
}

impl FaultyService {
    /// Wraps `inner` behind `plan`.
    pub fn new(inner: Box<dyn DirectoryService>, plan: FaultPlan) -> Self {
        FaultyService { inner, plan: Mutex::new(plan) }
    }
}

impl DirectoryService for FaultyService {
    fn url(&self) -> &str {
        self.inner.url()
    }

    fn handle_search(&self, req: &SearchRequest) -> ServerOutcome {
        let decision = self.plan.lock().expect("fault plan poisoned").decide();
        if decision.drop_request || decision.drop_response || decision.crash_restart {
            return ServerOutcome::Unavailable;
        }
        if decision.duplicate {
            // Searches are read-only: the duplicate answer is discarded.
            let _ = self.inner.handle_search(req);
        }
        self.inner.handle_search(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultKind;
    use fbdr_dit::UpdateOp;
    use fbdr_ldap::{Dn, Entry, Filter};
    use fbdr_resync::{RetryConfig, SyncDriver};

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn master() -> SyncMaster {
        let mut m = SyncMaster::new();
        m.dit_mut().add_suffix(dn("o=xyz"));
        m.dit_mut().add(Entry::new(dn("o=xyz"))).unwrap();
        for sn in ["045611", "045612"] {
            m.dit_mut()
                .add(
                    Entry::new(dn(&format!("cn={sn},o=xyz")))
                        .with("objectclass", "person")
                        .with("serialNumber", sn),
                )
                .unwrap();
        }
        m
    }

    fn req() -> SearchRequest {
        SearchRequest::from_root(Filter::parse("(serialNumber=0456*)").unwrap())
    }

    #[test]
    fn clean_plan_is_transparent() {
        let mut link = FaultyLink::new(master(), FaultPlan::clean(), SimClock::new());
        let resp = link.resync(&req(), ReSyncControl::poll(None)).unwrap();
        assert_eq!(resp.actions.len(), 2);
        assert_eq!(link.faults_injected(), 0);
    }

    #[test]
    fn dropped_request_never_reaches_the_master() {
        let plan = FaultPlan::builder(0).at(0, FaultKind::DropRequest).build();
        let mut link = FaultyLink::new(master(), plan, SimClock::new());
        let err = link.resync(&req(), ReSyncControl::poll(None)).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(link.master().session_count(), 0, "master never saw it");
    }

    #[test]
    fn dropped_response_is_recoverable_by_retry() {
        let plan = FaultPlan::builder(0).at(0, FaultKind::DropResponse).build();
        let mut link = FaultyLink::new(master(), plan, SimClock::new());
        let err = link.resync(&req(), ReSyncControl::poll(None)).unwrap_err();
        assert!(err.is_transient());
        // The master processed the request: the session exists and the
        // retry (same cookie: none) starts a second session — the replica
        // never learned the first cookie. Master-side expiry cleans the
        // orphan up later.
        assert_eq!(link.master().session_count(), 1);
        let resp = link.resync(&req(), ReSyncControl::poll(None)).unwrap();
        assert_eq!(resp.actions.len(), 2);
    }

    #[test]
    fn driver_over_faulty_link_recovers_lost_batches() {
        // Response of the incremental poll at op 1 is lost; the driver's
        // retry must fetch the identical batch from the replay buffer.
        let plan = FaultPlan::builder(0).at(1, FaultKind::DropResponse).build();
        let mut link = FaultyLink::new(master(), plan, SimClock::new());
        let clock = link.clock().clone();
        let mut driver = SyncDriver::with_clock(RetryConfig::default(), clock);

        let resp = driver.resync(&mut link, &req(), ReSyncControl::poll(None)).unwrap();
        let cookie = resp.cookie.unwrap();
        link.master_mut()
            .apply(UpdateOp::Delete(dn("cn=045612,o=xyz")))
            .unwrap();
        let resp =
            driver.resync(&mut link, &req(), ReSyncControl::poll(Some(cookie))).unwrap();
        assert_eq!(resp.actions.len(), 1, "the lost deletion is redelivered");
        assert!(resp.redelivered);
        assert_eq!(driver.stats().recovered, 1);
        assert_eq!(link.master().redeliveries(), 1);
    }

    #[test]
    fn driver_reconcile_over_faulty_link_survives_a_dropped_digest_round() {
        // The digest round's response is lost; the driver retries the
        // whole exchange with a re-salted digest and converges.
        let plan = FaultPlan::builder(0).at(0, FaultKind::DropResponse).build();
        let mut link = FaultyLink::new(master(), plan, SimClock::new());
        let clock = link.clock().clone();
        let mut driver = SyncDriver::with_clock(RetryConfig::default(), clock);

        // An empty replica: everything the master holds is a definite miss.
        let outcome = driver.reconcile(&mut link, &req(), &[], &|_| None).unwrap();
        assert_eq!(outcome.upserts.len(), 2);
        assert!(outcome.delete_ids.is_empty());
        assert_eq!(driver.stats().reconciliations, 1);
        assert_eq!(driver.stats().recovered, 1);
        assert_eq!(link.faults_injected(), 1);
        // The orphan session from the lost first attempt lingers until
        // idle expiry; the live one answers the cookie.
        assert_eq!(link.master().session_count(), 2);
        let resp = link.resync(&req(), ReSyncControl::poll(Some(outcome.cookie))).unwrap();
        assert!(resp.actions.is_empty(), "cookie is already at the current content");
    }

    #[test]
    fn crash_restart_preserves_sessions_and_pending() {
        let plan = FaultPlan::builder(0).at(1, FaultKind::CrashRestart).build();
        let mut link = FaultyLink::new(master(), plan, SimClock::new());
        let resp = link.resync(&req(), ReSyncControl::poll(None)).unwrap();
        let cookie = resp.cookie.unwrap();
        link.master_mut()
            .apply(UpdateOp::Delete(dn("cn=045611,o=xyz")))
            .unwrap();
        // The poll lands right after the restart and still works.
        let resp = link.resync(&req(), ReSyncControl::poll(Some(cookie))).unwrap();
        assert_eq!(resp.actions.len(), 1);
    }

    #[test]
    fn latency_advances_the_simulated_clock() {
        let plan = FaultPlan::builder(0).latency_ms(10, 10).build();
        let mut link = FaultyLink::new(master(), plan, SimClock::new());
        link.resync(&req(), ReSyncControl::poll(None)).unwrap();
        link.resync(&req(), ReSyncControl::poll(None)).unwrap();
        assert_eq!(link.clock().now_ms(), 20);
    }

    #[test]
    fn faulty_service_blocks_and_recovers() {
        use fbdr_dit::{DitStore, NamingContext};
        use fbdr_net::{Network, Server};

        let mut dit = DitStore::new();
        dit.add_suffix(dn("o=xyz"));
        dit.add(Entry::new(dn("o=xyz")).with("objectclass", "organization")).unwrap();
        let server = Server::new(
            "ldap://m",
            dit,
            vec![NamingContext::new(dn("o=xyz"))],
            None,
        );
        // First request is dropped, everything after goes through.
        let plan = FaultPlan::builder(0).at(0, FaultKind::DropRequest).build();
        let mut net = Network::new();
        net.add_service(Box::new(FaultyService::new(Box::new(server), plan)));

        let q = SearchRequest::new(dn("o=xyz"), fbdr_ldap::Scope::Subtree, Filter::match_all());
        let mut client = net.client();
        let err = client.search("ldap://m", &q).unwrap_err();
        assert!(err.is_transient());
        let res = client.search("ldap://m", &q).unwrap();
        assert_eq!(res.entries.len(), 1);
        assert!(res.is_complete());
    }
}
