//! Deterministic fault plans: given a seed and per-op probabilities (or a
//! scripted schedule), decide which faults hit each sync operation. The
//! same seed always yields the same fault sequence, so every chaos run is
//! replayable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The request never reaches the master (caller sees a timeout).
    DropRequest,
    /// The master processes the request but the response is lost.
    DropResponse,
    /// The request is delivered twice (at-least-once networks re-send).
    Duplicate,
    /// The persist notification channel is torn down mid-session.
    DisconnectPersist,
    /// The master crashes and restarts from its serialized snapshot,
    /// losing whatever state does not survive the serde round trip.
    CrashRestart,
}

/// Everything the link should do to the operation about to run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultDecision {
    /// Swallow the request before it reaches the master.
    pub drop_request: bool,
    /// Let the master process the request, then lose the response.
    pub drop_response: bool,
    /// Deliver the request twice (at-least-once networks re-send).
    pub duplicate: bool,
    /// Tear down the persist notification channels.
    pub disconnect_persist: bool,
    /// Crash the master and restart it from its serialized snapshot.
    pub crash_restart: bool,
    /// Simulated network latency for this operation, in milliseconds.
    pub latency_ms: u64,
}

impl FaultDecision {
    /// True if no fault hits this operation (latency aside).
    pub fn is_clean(&self) -> bool {
        !(self.drop_request
            || self.drop_response
            || self.duplicate
            || self.disconnect_persist
            || self.crash_restart)
    }

    fn apply(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::DropRequest => self.drop_request = true,
            FaultKind::DropResponse => self.drop_response = true,
            FaultKind::Duplicate => self.duplicate = true,
            FaultKind::DisconnectPersist => self.disconnect_persist = true,
            FaultKind::CrashRestart => self.crash_restart = true,
        }
    }
}

/// Builder for [`FaultPlan`] probabilities and scripts.
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    seed: u64,
    p_drop_request: f64,
    p_drop_response: f64,
    p_duplicate: f64,
    p_disconnect_persist: f64,
    p_crash_restart: f64,
    latency_ms: (u64, u64),
    script: BTreeMap<u64, Vec<FaultKind>>,
    quiesce_after: Option<u64>,
}

impl FaultPlanBuilder {
    /// Per-operation probability of [`FaultKind::DropRequest`].
    pub fn drop_request(mut self, p: f64) -> Self {
        self.p_drop_request = p;
        self
    }

    /// Per-operation probability of [`FaultKind::DropResponse`].
    pub fn drop_response(mut self, p: f64) -> Self {
        self.p_drop_response = p;
        self
    }

    /// Per-operation probability of [`FaultKind::Duplicate`].
    pub fn duplicate(mut self, p: f64) -> Self {
        self.p_duplicate = p;
        self
    }

    /// Per-operation probability of [`FaultKind::DisconnectPersist`].
    pub fn disconnect_persist(mut self, p: f64) -> Self {
        self.p_disconnect_persist = p;
        self
    }

    /// Per-operation probability of [`FaultKind::CrashRestart`].
    pub fn crash_restart(mut self, p: f64) -> Self {
        self.p_crash_restart = p;
        self
    }

    /// Uniform simulated latency range per operation.
    pub fn latency_ms(mut self, lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "latency range inverted");
        self.latency_ms = (lo, hi);
        self
    }

    /// Forces `kind` to hit operation number `op` (0-based), regardless of
    /// probabilities. Multiple kinds may be scheduled on one op.
    pub fn at(mut self, op: u64, kind: FaultKind) -> Self {
        self.script.entry(op).or_default().push(kind);
        self
    }

    /// Disables all faults from operation `op` onward — the "faults cease"
    /// phase every convergence test ends with.
    pub fn quiesce_after(mut self, op: u64) -> Self {
        self.quiesce_after = Some(op);
        self
    }

    /// Seals the configuration into a replayable [`FaultPlan`].
    pub fn build(self) -> FaultPlan {
        FaultPlan { rng: StdRng::seed_from_u64(self.seed), op: 0, config: self }
    }
}

/// A deterministic stream of [`FaultDecision`]s.
#[derive(Debug)]
pub struct FaultPlan {
    rng: StdRng,
    op: u64,
    config: FaultPlanBuilder,
}

impl FaultPlan {
    /// Starts a plan with no faults; configure via the builder.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            seed,
            p_drop_request: 0.0,
            p_drop_response: 0.0,
            p_duplicate: 0.0,
            p_disconnect_persist: 0.0,
            p_crash_restart: 0.0,
            latency_ms: (0, 0),
            script: BTreeMap::new(),
            quiesce_after: None,
        }
    }

    /// A plan that never injects anything.
    pub fn clean() -> FaultPlan {
        FaultPlan::builder(0).build()
    }

    /// Number of operations decided so far.
    pub fn ops_decided(&self) -> u64 {
        self.op
    }

    /// Stops injecting faults from the next operation onward.
    pub fn quiesce(&mut self) {
        self.config.quiesce_after = Some(self.op);
    }

    /// Decides the faults for the next operation. Always consumes the same
    /// amount of randomness per call, so scripted faults do not shift the
    /// probabilistic ones.
    pub fn decide(&mut self) -> FaultDecision {
        let op = self.op;
        self.op += 1;
        let c = &self.config;
        let rolls = [
            self.rng.gen::<f64>(),
            self.rng.gen::<f64>(),
            self.rng.gen::<f64>(),
            self.rng.gen::<f64>(),
            self.rng.gen::<f64>(),
        ];
        let latency_ms = if c.latency_ms.1 > 0 {
            self.rng.gen_range(c.latency_ms.0..=c.latency_ms.1)
        } else {
            0
        };
        let mut decision = FaultDecision { latency_ms, ..FaultDecision::default() };
        if c.quiesce_after.is_some_and(|cutoff| op >= cutoff) {
            return decision;
        }
        if rolls[0] < c.p_drop_request {
            decision.drop_request = true;
        }
        if rolls[1] < c.p_drop_response {
            decision.drop_response = true;
        }
        if rolls[2] < c.p_duplicate {
            decision.duplicate = true;
        }
        if rolls[3] < c.p_disconnect_persist {
            decision.disconnect_persist = true;
        }
        if rolls[4] < c.p_crash_restart {
            decision.crash_restart = true;
        }
        if let Some(kinds) = c.script.get(&op) {
            for kind in kinds {
                decision.apply(*kind);
            }
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_decisions() {
        let mut a = FaultPlan::builder(9).drop_request(0.4).duplicate(0.3).build();
        let mut b = FaultPlan::builder(9).drop_request(0.4).duplicate(0.3).build();
        let da: Vec<_> = (0..50).map(|_| a.decide()).collect();
        let db: Vec<_> = (0..50).map(|_| b.decide()).collect();
        assert_eq!(da, db);
        assert!(da.iter().any(|d| d.drop_request));
        assert!(da.iter().any(|d| d.is_clean()));
    }

    #[test]
    fn script_forces_faults_and_quiesce_stops_them() {
        let mut plan = FaultPlan::builder(1)
            .at(2, FaultKind::CrashRestart)
            .at(2, FaultKind::DropResponse)
            .quiesce_after(3)
            .build();
        assert!(plan.decide().is_clean());
        assert!(plan.decide().is_clean());
        let hit = plan.decide();
        assert!(hit.crash_restart && hit.drop_response);
        // From op 3 on, nothing.
        for _ in 0..10 {
            assert!(plan.decide().is_clean());
        }
    }

    #[test]
    fn quiesce_mid_stream() {
        let mut plan = FaultPlan::builder(5).drop_response(1.0).build();
        assert!(plan.decide().drop_response);
        plan.quiesce();
        assert!(plan.decide().is_clean());
    }

    #[test]
    fn latency_range_respected() {
        let mut plan = FaultPlan::builder(3).latency_ms(5, 10).build();
        for _ in 0..100 {
            let d = plan.decide();
            assert!((5..=10).contains(&d.latency_ms));
        }
    }
}
