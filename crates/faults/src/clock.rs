//! A simulated clock so retry/backoff logic is testable without wall time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared simulated clock counting milliseconds. Clones observe the same
/// time line; "sleeping" advances it instantly.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ms: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock starting at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms.load(Ordering::SeqCst)
    }

    /// Moves time forward.
    pub fn advance_ms(&self, ms: u64) {
        self.now_ms.fetch_add(ms, Ordering::SeqCst);
    }
}

/// A [`SimClock`] plugs directly into the resync driver: sleeping costs
/// no wall time, it just advances the shared timeline — so retry/backoff
/// schedules run instantly yet remain observable.
impl fbdr_resync::Clock for SimClock {
    fn now_ms(&self) -> u64 {
        SimClock::now_ms(self)
    }

    fn sleep_ms(&self, ms: u64) {
        self.advance_ms(ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_timeline() {
        let clock = SimClock::new();
        let observer = clock.clone();
        clock.advance_ms(250);
        assert_eq!(observer.now_ms(), 250);
        observer.advance_ms(50);
        assert_eq!(clock.now_ms(), 300);
    }
}
