//! Property tests for the LDAP data model: parser round trips and
//! matching-semantics invariants.

use fbdr_ldap::{AttrValue, Dn, Entry, Filter, Scope};
use proptest::prelude::*;

fn attr() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9-]{0,8}"
}

/// Values including whitespace, unicode-ish text, numbers and characters
/// that need escaping in filters.
fn value() -> impl Strategy<Value = String> {
    prop_oneof![
        "[ -~]{1,12}",
        "-?[0-9]{1,9}",
        Just("a*b(c)d\\e".to_owned()),
        "[α-ω]{1,4}",
    ]
}

fn filter_str() -> impl Strategy<Value = String> {
    let leaf = (attr(), value(), 0u8..4).prop_map(|(a, v, k)| {
        let esc: String = v
            .chars()
            .map(|c| match c {
                '(' => "\\28".to_owned(),
                ')' => "\\29".to_owned(),
                '*' => "\\2a".to_owned(),
                '\\' => "\\5c".to_owned(),
                other => other.to_string(),
            })
            .collect();
        // Avoid values that normalize to empty (whitespace-only).
        let esc = if esc.trim().is_empty() { "x".to_owned() } else { esc };
        match k {
            0 => format!("({a}={esc})"),
            1 => format!("({a}>={esc})"),
            2 => format!("({a}<={esc})"),
            _ => format!("({a}={esc}*)"),
        }
    });
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4)
                .prop_map(|fs| format!("(&{})", fs.join(""))),
            prop::collection::vec(inner.clone(), 1..4)
                .prop_map(|fs| format!("(|{})", fs.join(""))),
            inner.prop_map(|f| format!("(!{f})")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Filter print → parse is the identity.
    #[test]
    fn filter_print_parse_round_trip(s in filter_str()) {
        let f = Filter::parse(&s).expect("generated filter parses");
        let printed = f.to_string();
        let reparsed = Filter::parse(&printed)
            .unwrap_or_else(|e| panic!("printed form {printed:?} fails to parse: {e}"));
        prop_assert_eq!(f, reparsed);
    }

    /// DN display → parse is the identity (values may contain commas,
    /// equals signs and backslashes).
    #[test]
    fn dn_display_parse_round_trip(
        parts in prop::collection::vec(("[a-z]{1,5}", "[ -~&&[^\\\\]]{1,10}"), 1..5)
    ) {
        let dn = Dn::from_rdns(
            parts
                .iter()
                .filter(|(_, v)| !v.trim().is_empty())
                .map(|(a, v)| fbdr_ldap::Rdn::new(a.as_str(), v.as_str()))
                .collect(),
        );
        let printed = dn.to_string();
        let reparsed: Dn = printed.parse()
            .unwrap_or_else(|e| panic!("printed DN {printed:?} fails to parse: {e}"));
        prop_assert_eq!(dn, reparsed);
    }

    /// Ancestor/parent relations are consistent.
    #[test]
    fn dn_relations_consistent(
        parts in prop::collection::vec("[a-z]{1,4}", 1..6)
    ) {
        let mut dn = Dn::root();
        for (i, p) in parts.iter().enumerate() {
            let child = dn.child(fbdr_ldap::Rdn::new("cn", format!("{p}{i}")));
            prop_assert!(dn.is_parent_of(&child));
            prop_assert!(dn.is_ancestor_or_self_of(&child));
            prop_assert!(!child.is_ancestor_or_self_of(&dn) || child == dn);
            prop_assert_eq!(child.parent().expect("child has parent"), dn);
            dn = child;
        }
        prop_assert!(Dn::root().is_ancestor_or_self_of(&dn));
    }

    /// AttrValue ordering is a lawful total order consistent with Eq.
    #[test]
    fn attr_value_order_lawful(a in value(), b in value(), c in value()) {
        let (x, y, z) = (AttrValue::new(a), AttrValue::new(b), AttrValue::new(c));
        // Antisymmetry / consistency with Eq.
        if x == y {
            prop_assert_eq!(x.cmp(&y), std::cmp::Ordering::Equal);
        }
        if x.cmp(&y) == std::cmp::Ordering::Equal {
            prop_assert_eq!(&x, &y);
        }
        // Transitivity.
        if x <= y && y <= z {
            prop_assert!(x <= z);
        }
    }

    /// Scope region membership matches its definition.
    #[test]
    fn scope_membership(depth_base in 0usize..3, extra in 0usize..3) {
        let mut base = Dn::root();
        for i in 0..depth_base {
            base = base.child(fbdr_ldap::Rdn::new("ou", format!("b{i}")));
        }
        let mut dn = base.clone();
        for i in 0..extra {
            dn = dn.child(fbdr_ldap::Rdn::new("cn", format!("c{i}")));
        }
        prop_assert_eq!(Scope::Base.contains(&base, &dn), extra == 0);
        prop_assert_eq!(Scope::OneLevel.contains(&base, &dn), extra == 1);
        prop_assert!(Scope::Subtree.contains(&base, &dn));
    }

    /// Simplification never changes what a filter matches.
    #[test]
    fn simplify_preserves_semantics(
        fs in filter_str(),
        attrs in prop::collection::vec(("[a-c]", "[0-9a-c]{1,3}"), 0..6),
    ) {
        let f = Filter::parse(&fs).expect("generated filter parses");
        let simp = f.simplify();
        let mut e = Entry::new("cn=x,o=y".parse().expect("dn"));
        for (a, v) in &attrs {
            e.add(a.as_str(), v.as_str());
        }
        prop_assert_eq!(f.matches(&e), simp.matches(&e), "simplify changed semantics of {}", fs);
        // And it is idempotent.
        prop_assert_eq!(simp.simplify(), simp);
    }

    /// The filter parser never panics and errors carry sane positions.
    #[test]
    fn parser_total_on_arbitrary_input(s in "[\\x00-\\x7f]{0,40}") {
        match Filter::parse(&s) {
            Ok(f) => {
                // Whatever parsed must round-trip.
                let printed = f.to_string();
                prop_assert_eq!(Filter::parse(&printed).expect("printed form parses"), f);
            }
            Err(e) => prop_assert!(e.position() <= s.len()),
        }
    }

    /// The DN parser never panics on arbitrary input.
    #[test]
    fn dn_parser_total_on_arbitrary_input(s in "[\\x00-\\x7f]{0,40}") {
        let _ = s.parse::<Dn>();
    }

    /// LDIF parsing never panics on arbitrary input.
    #[test]
    fn ldif_parser_total_on_arbitrary_input(s in "[\\x00-\\x7f]{0,120}") {
        let _ = fbdr_ldap::ldif::parse_ldif(&s);
    }

    /// An entry matches `(a=v)` for every value it holds (normalized).
    #[test]
    fn equality_matches_own_values(vals in prop::collection::vec(value(), 1..4)) {
        let mut e = Entry::new("cn=x,o=y".parse().expect("dn"));
        for v in &vals {
            if !AttrValue::new(v.as_str()).normalized().is_empty() {
                e.add("a", v.as_str());
            }
        }
        for v in e.values(&"a".into()).cloned().collect::<Vec<_>>() {
            let p = fbdr_ldap::Predicate::eq("a", v);
            prop_assert!(p.matches(&e));
        }
    }
}
