//! LDAP templates — query prototypes (§3.4.2 of the paper).
//!
//! A *template* is a filter with every assertion value replaced by the `_`
//! character: `(&(sn=_)(givenName=_))`, `(sn=_*)`. Typical directory
//! applications generate queries from a small, finite set of templates, and
//! the containment algorithms exploit this:
//!
//! 1. comparisons against templates that cannot possibly answer a query are
//!    eliminated up front,
//! 2. containment conditions between two templates can be computed apriori
//!    (Proposition 2), and
//! 3. containment within one template reduces to comparing assertion values
//!    slot by slot (Proposition 3).
//!
//! [`Template::of`] extracts a query's template together with its assertion
//! values in slot order.

use crate::{AttrName, Comparison, Filter, Predicate, SubstringPattern};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier for a template: its canonical string form, e.g. `(sn=_*)`.
///
/// Comparing two `TemplateId`s answers "do these queries share a prototype".
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TemplateId(String);

impl TemplateId {
    /// The canonical template string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TemplateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Description of one value slot in a template.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Slot {
    attr: AttrName,
    kind: String,
}

impl Slot {
    /// The attribute this slot's predicate constrains.
    pub fn attr(&self) -> &AttrName {
        &self.attr
    }

    /// The comparison kind label (see [`Comparison::kind`]).
    pub fn kind(&self) -> &str {
        &self.kind
    }
}

/// A query template: filter structure with assertion values abstracted.
///
/// ```
/// use fbdr_ldap::{Filter, Template};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = Filter::parse("(&(sn=Doe)(givenName=John))")?;
/// let (t, values) = Template::of(&q);
/// assert_eq!(t.id().as_str(), "(&(sn=_)(givenname=_))");
/// assert_eq!(values.len(), 2);
/// assert_eq!(values[0].raw(), "Doe");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Template {
    id: TemplateId,
    /// Structure with values dropped; used to re-instantiate queries.
    shape: Filter,
    slots: Vec<Slot>,
}

impl Template {
    /// Extracts the template of a filter and the assertion values, in
    /// slot (left-to-right) order. Presence predicates contribute no slot.
    /// Substring predicates contribute one slot per text component, and the
    /// star shape is part of the template (so `(sn=_*)` and `(sn=*_)` are
    /// different templates).
    pub fn of(filter: &Filter) -> (Template, Vec<crate::AttrValue>) {
        let mut slots = Vec::new();
        let mut values = Vec::new();
        let shape = abstract_filter(filter, &mut slots, &mut values);
        let id = TemplateId(render(&shape));
        (Template { id, shape, slots }, values)
    }

    /// The canonical identifier.
    pub fn id(&self) -> &TemplateId {
        &self.id
    }

    /// The value slots, left to right.
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// Number of value slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The abstracted filter structure (assertion values are the literal
    /// string `_`).
    pub fn shape(&self) -> &Filter {
        &self.shape
    }

    /// Re-instantiates a concrete filter from assertion values.
    ///
    /// # Errors
    ///
    /// Returns `None` when `values.len() != self.slot_count()`.
    pub fn instantiate(&self, values: &[crate::AttrValue]) -> Option<Filter> {
        if values.len() != self.slots.len() {
            return None;
        }
        let mut idx = 0;
        Some(substitute(&self.shape, values, &mut idx))
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id.as_str())
    }
}

/// One routing key of a template, referring to value slots by index
/// (see [`Template::routing_plan`]).
///
/// A key *matches* an entry when the entry has a value for `attr` that is
/// equal to / starts with / merely exists for the instantiated slot value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SlotKey {
    /// An equality assertion: the slot's value must appear verbatim
    /// (normalized) among the entry's values of `attr`.
    Eq {
        /// The constrained attribute.
        attr: AttrName,
        /// Index into the template's value slots.
        slot: usize,
    },
    /// An initial-substring assertion: some value of `attr` must start
    /// with the slot's (normalized) text.
    Prefix {
        /// The constrained attribute.
        attr: AttrName,
        /// Index of the `initial` component's slot.
        slot: usize,
    },
    /// A presence assertion: the entry must have `attr` at all. Carries no
    /// slot — presence predicates have no assertion value.
    Present {
        /// The constrained attribute.
        attr: AttrName,
    },
}

impl SlotKey {
    fn rank(&self) -> u8 {
        // Selectivity order used when a conjunction offers a choice.
        match self {
            SlotKey::Eq { .. } => 0,
            SlotKey::Prefix { .. } => 1,
            SlotKey::Present { .. } => 2,
        }
    }
}

impl Template {
    /// Extracts a **sound routing plan** from the template shape: a set of
    /// slot-level keys such that *any* entry matched by *any* query of
    /// this template must satisfy at least one key (instantiated with that
    /// query's slot values). Returns `None` when no such key set exists
    /// (negations, range assertions, substring patterns without an
    /// initial component) and the query must go on a residual scan list.
    ///
    /// The plan depends only on the template, so an interest index over
    /// many same-template queries computes it once and instantiates it per
    /// query — the paper's template argument (§4) applied to update
    /// fan-out instead of containment.
    ///
    /// Soundness per node:
    /// * a predicate keys on itself (`=` → [`SlotKey::Eq`], `initial*` →
    ///   [`SlotKey::Prefix`], `=*` → [`SlotKey::Present`]); ranges,
    ///   negations and star-leading substrings are not indexable;
    /// * a conjunction is covered by *any one* child's keys (every match
    ///   satisfies all children) — the most selective indexable child is
    ///   chosen;
    /// * a disjunction needs *all* children indexable (a match may satisfy
    ///   any one branch); its plan is the union of the children's keys.
    ///
    /// ```
    /// use fbdr_ldap::{Filter, SlotKey, Template};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let q = Filter::parse("(&(objectclass=person)(dept=7))")?;
    /// let (t, values) = Template::of(&q);
    /// let plan = t.routing_plan().expect("conjunction of equalities");
    /// // One key suffices for an AND; the plan picks an equality slot.
    /// assert_eq!(plan.len(), 1);
    /// let SlotKey::Eq { slot, .. } = &plan[0] else { panic!("eq key") };
    /// assert_eq!(values[*slot].raw(), "person");
    /// assert!(Template::of(&Filter::parse("(!(dept=7))")?).0.routing_plan().is_none());
    /// # Ok(())
    /// # }
    /// ```
    pub fn routing_plan(&self) -> Option<Vec<SlotKey>> {
        self.routing_plans().map(|alts| {
            // min_by_key keeps the first of equally-scored alternatives.
            alts.into_iter()
                .min_by_key(|a| plan_score(a))
                .expect("alternatives are non-empty")
        })
    }

    /// Every sound routing plan of the template: each returned key set is
    /// independently sufficient (see [`Template::routing_plan`] for the
    /// soundness contract). A conjunction offers one alternative per
    /// indexable child — a consumer that knows the live key population
    /// (e.g. an interest index) can pick the alternative with the
    /// least-loaded posting lists instead of the statically best-ranked
    /// one, which matters when a template mixes a high-selectivity slot
    /// with a near-constant one (`(&(objectclass=_)(dept=_))`: keying
    /// every query on its `objectclass` value degenerates to a broadcast).
    /// Returns `None` when the shape has no sound keys at all.
    pub fn routing_plans(&self) -> Option<Vec<Vec<SlotKey>>> {
        let mut slot = 0usize;
        plan_node(&self.shape, &mut slot)
    }
}

/// Recursive plan extraction, returning all alternative key sets. Always
/// advances `slot` across the whole subtree (so sibling plans see correct
/// slot indices) even when the subtree itself is not indexable.
fn plan_node(f: &Filter, slot: &mut usize) -> Option<Vec<Vec<SlotKey>>> {
    match f {
        Filter::Pred(p) => {
            let attr = AttrName::new(p.attr().lower());
            match p.comparison() {
                Comparison::Eq(_) => {
                    let key = SlotKey::Eq { attr, slot: *slot };
                    *slot += 1;
                    Some(vec![vec![key]])
                }
                Comparison::Ge(_) | Comparison::Le(_) => {
                    *slot += 1;
                    None
                }
                Comparison::Present => Some(vec![vec![SlotKey::Present { attr }]]),
                Comparison::Substring(pat) => {
                    let components = pat.components().count();
                    let plan = pat
                        .initial()
                        .map(|_| vec![vec![SlotKey::Prefix { attr, slot: *slot }]]);
                    *slot += components;
                    plan
                }
            }
        }
        Filter::And(fs) => {
            // Every indexable child is a sound alternative on its own
            // (a match satisfies all children), so offer them all.
            let mut alts: Vec<Vec<SlotKey>> = Vec::new();
            for child in fs {
                if let Some(child_alts) = plan_node(child, slot) {
                    alts.extend(child_alts);
                }
            }
            (!alts.is_empty()).then_some(alts)
        }
        Filter::Or(fs) => {
            // A match may satisfy any one branch: all children must be
            // indexable, and the union forms a single alternative (each
            // child collapsed to its statically best key set — a cross
            // product of alternatives would explode).
            let mut keys = Vec::new();
            let mut indexable = true;
            for child in fs {
                match plan_node(child, slot) {
                    Some(child_alts) => keys.extend(
                        child_alts
                            .into_iter()
                            .min_by_key(|a| plan_score(a))
                            .expect("alternatives are non-empty"),
                    ),
                    None => indexable = false, // keep walking: slots must advance
                }
            }
            indexable.then_some(vec![keys])
        }
        Filter::Not(inner) => {
            plan_node(inner, slot);
            None
        }
    }
}

/// Lower is better: prefer plans whose weakest key is strongest, then
/// fewer keys (fewer posting lists to maintain and probe).
fn plan_score(plan: &[SlotKey]) -> (u8, usize) {
    (plan.iter().map(SlotKey::rank).max().unwrap_or(u8::MAX), plan.len())
}

const PLACEHOLDER: &str = "_";

fn abstract_filter(f: &Filter, slots: &mut Vec<Slot>, values: &mut Vec<crate::AttrValue>) -> Filter {
    match f {
        Filter::And(fs) => Filter::And(fs.iter().map(|s| abstract_filter(s, slots, values)).collect()),
        Filter::Or(fs) => Filter::Or(fs.iter().map(|s| abstract_filter(s, slots, values)).collect()),
        Filter::Not(s) => Filter::Not(Box::new(abstract_filter(s, slots, values))),
        Filter::Pred(p) => Filter::Pred(abstract_pred(p, slots, values)),
    }
}

fn abstract_pred(p: &Predicate, slots: &mut Vec<Slot>, values: &mut Vec<crate::AttrValue>) -> Predicate {
    let kind = p.comparison().kind();
    // Lowercase the attribute in the shape so template identity is
    // independent of how the application spelled the attribute name.
    let attr = AttrName::new(p.attr().lower());
    let mut push = |v: crate::AttrValue| {
        slots.push(Slot { attr: attr.clone(), kind: kind.clone() });
        values.push(v);
    };
    match p.comparison() {
        Comparison::Eq(v) => {
            push(v.clone());
            Predicate::eq(attr.clone(), PLACEHOLDER)
        }
        Comparison::Ge(v) => {
            push(v.clone());
            Predicate::ge(attr.clone(), PLACEHOLDER)
        }
        Comparison::Le(v) => {
            push(v.clone());
            Predicate::le(attr.clone(), PLACEHOLDER)
        }
        Comparison::Present => Predicate::present(attr.clone()),
        Comparison::Substring(pat) => {
            for c in pat.components() {
                push(crate::AttrValue::new(c));
            }
            let abs = SubstringPattern::new(
                pat.initial().map(|_| PLACEHOLDER.to_owned()),
                pat.any().iter().map(|_| PLACEHOLDER.to_owned()).collect(),
                pat.final_part().map(|_| PLACEHOLDER.to_owned()),
            );
            Predicate::substring(attr.clone(), abs)
        }
    }
}

fn substitute(f: &Filter, values: &[crate::AttrValue], idx: &mut usize) -> Filter {
    match f {
        Filter::And(fs) => Filter::And(fs.iter().map(|s| substitute(s, values, idx)).collect()),
        Filter::Or(fs) => Filter::Or(fs.iter().map(|s| substitute(s, values, idx)).collect()),
        Filter::Not(s) => Filter::Not(Box::new(substitute(s, values, idx))),
        Filter::Pred(p) => {
            let mut next = || {
                let v = values[*idx].clone();
                *idx += 1;
                v
            };
            let pred = match p.comparison() {
                Comparison::Eq(_) => Predicate::eq(p.attr().clone(), next()),
                Comparison::Ge(_) => Predicate::ge(p.attr().clone(), next()),
                Comparison::Le(_) => Predicate::le(p.attr().clone(), next()),
                Comparison::Present => Predicate::present(p.attr().clone()),
                Comparison::Substring(pat) => {
                    let initial = pat.initial().map(|_| next().raw().to_owned());
                    let any = pat.any().iter().map(|_| next().raw().to_owned()).collect();
                    let fin = pat.final_part().map(|_| next().raw().to_owned());
                    Predicate::substring(p.attr().clone(), SubstringPattern::new(initial, any, fin))
                }
            };
            Filter::Pred(pred)
        }
    }
}

fn render(shape: &Filter) -> String {
    shape.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrValue;

    fn f(s: &str) -> Filter {
        Filter::parse(s).unwrap()
    }

    #[test]
    fn equality_template() {
        let (t, vals) = Template::of(&f("(uid=jdoe)"));
        assert_eq!(t.id().as_str(), "(uid=_)");
        assert_eq!(vals, vec![AttrValue::new("jdoe")]);
        assert_eq!(t.slots()[0].attr().as_str(), "uid");
        assert_eq!(t.slots()[0].kind(), "=");
    }

    #[test]
    fn conjunction_template_matches_paper_examples() {
        let (t, _) = Template::of(&f("(&(cn=Fred)(ou=research))"));
        assert_eq!(t.id().as_str(), "(&(cn=_)(ou=_))");
        let (t2, _) = Template::of(&f("(&(sn=Doe)(givenName=John))"));
        assert_eq!(t2.id().as_str(), "(&(sn=_)(givenname=_))");
    }

    #[test]
    fn substring_template_keeps_star_shape() {
        let (t, vals) = Template::of(&f("(sn=smi*)"));
        assert_eq!(t.id().as_str(), "(sn=_*)");
        assert_eq!(vals, vec![AttrValue::new("smi")]);
        let (t2, _) = Template::of(&f("(sn=*ith)"));
        assert_eq!(t2.id().as_str(), "(sn=*_)");
        assert_ne!(t.id(), t2.id());
        let (t3, vals3) = Template::of(&f("(serialNumber=04*56)"));
        assert_eq!(t3.id().as_str(), "(serialnumber=_*_)");
        assert_eq!(vals3.len(), 2);
    }

    #[test]
    fn presence_contributes_no_slot() {
        let (t, vals) = Template::of(&f("(&(objectclass=*)(dept=2406))"));
        assert_eq!(t.id().as_str(), "(&(objectclass=*)(dept=_))");
        assert_eq!(vals.len(), 1);
    }

    #[test]
    fn same_template_different_values() {
        let (t1, v1) = Template::of(&f("(dept=2406)"));
        let (t2, v2) = Template::of(&f("(dept=2407)"));
        assert_eq!(t1.id(), t2.id());
        assert_ne!(v1, v2);
    }

    #[test]
    fn instantiate_round_trip() {
        for s in [
            "(&(sn=Doe)(givenName=John))",
            "(sn=smi*th)",
            "(&(objectclass=*)(age>=30))",
            "(|(a=1)(!(b<=2)))",
        ] {
            let q = f(s);
            let (t, vals) = Template::of(&q);
            let back = t.instantiate(&vals).expect("arity matches");
            assert_eq!(back, q, "instantiate(of({s})) differs");
        }
    }

    #[test]
    fn instantiate_wrong_arity_is_none() {
        let (t, _) = Template::of(&f("(&(a=1)(b=2))"));
        assert!(t.instantiate(&[AttrValue::new("x")]).is_none());
    }

    #[test]
    fn routing_plan_simple_predicates() {
        let (t, _) = Template::of(&f("(uid=jdoe)"));
        assert_eq!(
            t.routing_plan(),
            Some(vec![SlotKey::Eq { attr: "uid".into(), slot: 0 }])
        );
        let (t, _) = Template::of(&f("(sn=smi*)"));
        assert_eq!(
            t.routing_plan(),
            Some(vec![SlotKey::Prefix { attr: "sn".into(), slot: 0 }])
        );
        let (t, _) = Template::of(&f("(mail=*)"));
        assert_eq!(t.routing_plan(), Some(vec![SlotKey::Present { attr: "mail".into() }]));
    }

    #[test]
    fn routing_plan_residual_shapes() {
        for s in ["(age>=30)", "(age<=30)", "(sn=*ith)", "(!(uid=x))", "(|(uid=x)(age>=3))"] {
            let (t, _) = Template::of(&f(s));
            assert_eq!(t.routing_plan(), None, "{s} should be residual");
        }
    }

    #[test]
    fn routing_plan_and_picks_most_selective_child_with_correct_slot() {
        // The range slot (0) is unindexable; the equality must key slot 1.
        let (t, vals) = Template::of(&f("(&(age>=30)(uid=jdoe))"));
        assert_eq!(
            t.routing_plan(),
            Some(vec![SlotKey::Eq { attr: "uid".into(), slot: 1 }])
        );
        assert_eq!(vals[1].raw(), "jdoe");
        // Equality beats prefix beats presence.
        let (t, _) = Template::of(&f("(&(mail=*)(sn=smi*)(uid=jdoe))"));
        assert_eq!(
            t.routing_plan(),
            Some(vec![SlotKey::Eq { attr: "uid".into(), slot: 1 }])
        );
    }

    #[test]
    fn routing_plan_or_unions_all_branches() {
        let (t, vals) = Template::of(&f("(|(dept=7)(sn=smi*th))"));
        // The OR needs both branches; the substring contributes its
        // initial slot (slot 1; slot 2 is the final component).
        assert_eq!(
            t.routing_plan(),
            Some(vec![
                SlotKey::Eq { attr: "dept".into(), slot: 0 },
                SlotKey::Prefix { attr: "sn".into(), slot: 1 },
            ])
        );
        assert_eq!(vals.len(), 3);
    }

    #[test]
    fn routing_plan_slot_indices_survive_nesting() {
        // Slots: 0 = a's value, 1..=2 = substring components, 3 = c, 4 = d.
        let (t, vals) = Template::of(&f("(&(|(a=1)(b=*x*y))(|(c=3)(d=4)))"));
        // First OR is residual (no initial component); second OR wins.
        assert_eq!(
            t.routing_plan(),
            Some(vec![
                SlotKey::Eq { attr: "c".into(), slot: 3 },
                SlotKey::Eq { attr: "d".into(), slot: 4 },
            ])
        );
        assert_eq!(vals[3].raw(), "3");
        assert_eq!(vals[4].raw(), "4");
    }

    #[test]
    fn attr_names_case_insensitive_in_id() {
        let (t1, _) = Template::of(&f("(SN=Doe)"));
        let (t2, _) = Template::of(&f("(sn=Doe)"));
        assert_eq!(t1.id(), t2.id());
        assert_eq!(t1.slots()[0].attr(), t2.slots()[0].attr());
    }
}
