//! LDAP templates — query prototypes (§3.4.2 of the paper).
//!
//! A *template* is a filter with every assertion value replaced by the `_`
//! character: `(&(sn=_)(givenName=_))`, `(sn=_*)`. Typical directory
//! applications generate queries from a small, finite set of templates, and
//! the containment algorithms exploit this:
//!
//! 1. comparisons against templates that cannot possibly answer a query are
//!    eliminated up front,
//! 2. containment conditions between two templates can be computed apriori
//!    (Proposition 2), and
//! 3. containment within one template reduces to comparing assertion values
//!    slot by slot (Proposition 3).
//!
//! [`Template::of`] extracts a query's template together with its assertion
//! values in slot order.

use crate::{AttrName, Comparison, Filter, Predicate, SubstringPattern};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier for a template: its canonical string form, e.g. `(sn=_*)`.
///
/// Comparing two `TemplateId`s answers "do these queries share a prototype".
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TemplateId(String);

impl TemplateId {
    /// The canonical template string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TemplateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Description of one value slot in a template.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Slot {
    attr: AttrName,
    kind: String,
}

impl Slot {
    /// The attribute this slot's predicate constrains.
    pub fn attr(&self) -> &AttrName {
        &self.attr
    }

    /// The comparison kind label (see [`Comparison::kind`]).
    pub fn kind(&self) -> &str {
        &self.kind
    }
}

/// A query template: filter structure with assertion values abstracted.
///
/// ```
/// use fbdr_ldap::{Filter, Template};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = Filter::parse("(&(sn=Doe)(givenName=John))")?;
/// let (t, values) = Template::of(&q);
/// assert_eq!(t.id().as_str(), "(&(sn=_)(givenname=_))");
/// assert_eq!(values.len(), 2);
/// assert_eq!(values[0].raw(), "Doe");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Template {
    id: TemplateId,
    /// Structure with values dropped; used to re-instantiate queries.
    shape: Filter,
    slots: Vec<Slot>,
}

impl Template {
    /// Extracts the template of a filter and the assertion values, in
    /// slot (left-to-right) order. Presence predicates contribute no slot.
    /// Substring predicates contribute one slot per text component, and the
    /// star shape is part of the template (so `(sn=_*)` and `(sn=*_)` are
    /// different templates).
    pub fn of(filter: &Filter) -> (Template, Vec<crate::AttrValue>) {
        let mut slots = Vec::new();
        let mut values = Vec::new();
        let shape = abstract_filter(filter, &mut slots, &mut values);
        let id = TemplateId(render(&shape));
        (Template { id, shape, slots }, values)
    }

    /// The canonical identifier.
    pub fn id(&self) -> &TemplateId {
        &self.id
    }

    /// The value slots, left to right.
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// Number of value slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The abstracted filter structure (assertion values are the literal
    /// string `_`).
    pub fn shape(&self) -> &Filter {
        &self.shape
    }

    /// Re-instantiates a concrete filter from assertion values.
    ///
    /// # Errors
    ///
    /// Returns `None` when `values.len() != self.slot_count()`.
    pub fn instantiate(&self, values: &[crate::AttrValue]) -> Option<Filter> {
        if values.len() != self.slots.len() {
            return None;
        }
        let mut idx = 0;
        Some(substitute(&self.shape, values, &mut idx))
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id.as_str())
    }
}

const PLACEHOLDER: &str = "_";

fn abstract_filter(f: &Filter, slots: &mut Vec<Slot>, values: &mut Vec<crate::AttrValue>) -> Filter {
    match f {
        Filter::And(fs) => Filter::And(fs.iter().map(|s| abstract_filter(s, slots, values)).collect()),
        Filter::Or(fs) => Filter::Or(fs.iter().map(|s| abstract_filter(s, slots, values)).collect()),
        Filter::Not(s) => Filter::Not(Box::new(abstract_filter(s, slots, values))),
        Filter::Pred(p) => Filter::Pred(abstract_pred(p, slots, values)),
    }
}

fn abstract_pred(p: &Predicate, slots: &mut Vec<Slot>, values: &mut Vec<crate::AttrValue>) -> Predicate {
    let kind = p.comparison().kind();
    // Lowercase the attribute in the shape so template identity is
    // independent of how the application spelled the attribute name.
    let attr = AttrName::new(p.attr().lower());
    let mut push = |v: crate::AttrValue| {
        slots.push(Slot { attr: attr.clone(), kind: kind.clone() });
        values.push(v);
    };
    match p.comparison() {
        Comparison::Eq(v) => {
            push(v.clone());
            Predicate::eq(attr.clone(), PLACEHOLDER)
        }
        Comparison::Ge(v) => {
            push(v.clone());
            Predicate::ge(attr.clone(), PLACEHOLDER)
        }
        Comparison::Le(v) => {
            push(v.clone());
            Predicate::le(attr.clone(), PLACEHOLDER)
        }
        Comparison::Present => Predicate::present(attr.clone()),
        Comparison::Substring(pat) => {
            for c in pat.components() {
                push(crate::AttrValue::new(c));
            }
            let abs = SubstringPattern::new(
                pat.initial().map(|_| PLACEHOLDER.to_owned()),
                pat.any().iter().map(|_| PLACEHOLDER.to_owned()).collect(),
                pat.final_part().map(|_| PLACEHOLDER.to_owned()),
            );
            Predicate::substring(attr.clone(), abs)
        }
    }
}

fn substitute(f: &Filter, values: &[crate::AttrValue], idx: &mut usize) -> Filter {
    match f {
        Filter::And(fs) => Filter::And(fs.iter().map(|s| substitute(s, values, idx)).collect()),
        Filter::Or(fs) => Filter::Or(fs.iter().map(|s| substitute(s, values, idx)).collect()),
        Filter::Not(s) => Filter::Not(Box::new(substitute(s, values, idx))),
        Filter::Pred(p) => {
            let mut next = || {
                let v = values[*idx].clone();
                *idx += 1;
                v
            };
            let pred = match p.comparison() {
                Comparison::Eq(_) => Predicate::eq(p.attr().clone(), next()),
                Comparison::Ge(_) => Predicate::ge(p.attr().clone(), next()),
                Comparison::Le(_) => Predicate::le(p.attr().clone(), next()),
                Comparison::Present => Predicate::present(p.attr().clone()),
                Comparison::Substring(pat) => {
                    let initial = pat.initial().map(|_| next().raw().to_owned());
                    let any = pat.any().iter().map(|_| next().raw().to_owned()).collect();
                    let fin = pat.final_part().map(|_| next().raw().to_owned());
                    Predicate::substring(p.attr().clone(), SubstringPattern::new(initial, any, fin))
                }
            };
            Filter::Pred(pred)
        }
    }
}

fn render(shape: &Filter) -> String {
    shape.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrValue;

    fn f(s: &str) -> Filter {
        Filter::parse(s).unwrap()
    }

    #[test]
    fn equality_template() {
        let (t, vals) = Template::of(&f("(uid=jdoe)"));
        assert_eq!(t.id().as_str(), "(uid=_)");
        assert_eq!(vals, vec![AttrValue::new("jdoe")]);
        assert_eq!(t.slots()[0].attr().as_str(), "uid");
        assert_eq!(t.slots()[0].kind(), "=");
    }

    #[test]
    fn conjunction_template_matches_paper_examples() {
        let (t, _) = Template::of(&f("(&(cn=Fred)(ou=research))"));
        assert_eq!(t.id().as_str(), "(&(cn=_)(ou=_))");
        let (t2, _) = Template::of(&f("(&(sn=Doe)(givenName=John))"));
        assert_eq!(t2.id().as_str(), "(&(sn=_)(givenname=_))");
    }

    #[test]
    fn substring_template_keeps_star_shape() {
        let (t, vals) = Template::of(&f("(sn=smi*)"));
        assert_eq!(t.id().as_str(), "(sn=_*)");
        assert_eq!(vals, vec![AttrValue::new("smi")]);
        let (t2, _) = Template::of(&f("(sn=*ith)"));
        assert_eq!(t2.id().as_str(), "(sn=*_)");
        assert_ne!(t.id(), t2.id());
        let (t3, vals3) = Template::of(&f("(serialNumber=04*56)"));
        assert_eq!(t3.id().as_str(), "(serialnumber=_*_)");
        assert_eq!(vals3.len(), 2);
    }

    #[test]
    fn presence_contributes_no_slot() {
        let (t, vals) = Template::of(&f("(&(objectclass=*)(dept=2406))"));
        assert_eq!(t.id().as_str(), "(&(objectclass=*)(dept=_))");
        assert_eq!(vals.len(), 1);
    }

    #[test]
    fn same_template_different_values() {
        let (t1, v1) = Template::of(&f("(dept=2406)"));
        let (t2, v2) = Template::of(&f("(dept=2407)"));
        assert_eq!(t1.id(), t2.id());
        assert_ne!(v1, v2);
    }

    #[test]
    fn instantiate_round_trip() {
        for s in [
            "(&(sn=Doe)(givenName=John))",
            "(sn=smi*th)",
            "(&(objectclass=*)(age>=30))",
            "(|(a=1)(!(b<=2)))",
        ] {
            let q = f(s);
            let (t, vals) = Template::of(&q);
            let back = t.instantiate(&vals).expect("arity matches");
            assert_eq!(back, q, "instantiate(of({s})) differs");
        }
    }

    #[test]
    fn instantiate_wrong_arity_is_none() {
        let (t, _) = Template::of(&f("(&(a=1)(b=2))"));
        assert!(t.instantiate(&[AttrValue::new("x")]).is_none());
    }

    #[test]
    fn attr_names_case_insensitive_in_id() {
        let (t1, _) = Template::of(&f("(SN=Doe)"));
        let (t2, _) = Template::of(&f("(sn=Doe)"));
        assert_eq!(t1.id(), t2.id());
        assert_eq!(t1.slots()[0].attr(), t2.slots()[0].attr());
    }
}
