//! Directory entries: DN-named sets of attribute/value pairs.

use crate::{AttrName, AttrValue, Dn};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An entry in the Directory Information Tree.
///
/// An entry is a set of attribute/value pairs plus a distinguished name.
/// Attributes are multi-valued sets; values compare with the normalized
/// semantics of [`AttrValue`].
///
/// ```
/// use fbdr_ldap::Entry;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut e = Entry::new("cn=John Doe,o=xyz".parse()?);
/// e.add_str("objectclass", "inetOrgPerson");
/// e.add_str("cn", "John Doe");
/// e.add_str("cn", "John M Doe");
/// assert!(e.has_value(&"CN".into(), &"john doe".into()));
/// assert_eq!(e.values(&"cn".into()).count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Entry {
    dn: Dn,
    attrs: BTreeMap<AttrName, BTreeSet<AttrValue>>,
}

impl Entry {
    /// Creates an empty entry with the given name.
    pub fn new(dn: Dn) -> Self {
        Entry { dn, attrs: BTreeMap::new() }
    }

    /// The entry's distinguished name.
    pub fn dn(&self) -> &Dn {
        &self.dn
    }

    /// Renames the entry (modify DN). The caller is responsible for keeping
    /// any store indexes consistent.
    pub fn set_dn(&mut self, dn: Dn) {
        self.dn = dn;
    }

    /// Adds a value; returns true if it was not already present.
    pub fn add(&mut self, attr: impl Into<AttrName>, value: impl Into<AttrValue>) -> bool {
        self.attrs.entry(attr.into()).or_default().insert(value.into())
    }

    /// Convenience for `add` with string literals.
    pub fn add_str(&mut self, attr: &str, value: &str) -> bool {
        self.add(attr, value)
    }

    /// Builder-style `add` for test and example construction.
    pub fn with(mut self, attr: &str, value: &str) -> Self {
        self.add(attr, value);
        self
    }

    /// Removes a single value; returns true if it was present. Removes the
    /// attribute entirely when its last value goes.
    pub fn remove_value(&mut self, attr: &AttrName, value: &AttrValue) -> bool {
        if let Some(set) = self.attrs.get_mut(attr) {
            let removed = set.remove(value);
            if set.is_empty() {
                self.attrs.remove(attr);
            }
            removed
        } else {
            false
        }
    }

    /// Removes an attribute and all its values; returns true if present.
    pub fn remove_attr(&mut self, attr: &AttrName) -> bool {
        self.attrs.remove(attr).is_some()
    }

    /// Replaces all values of an attribute. An empty iterator removes the
    /// attribute.
    pub fn replace<I, V>(&mut self, attr: impl Into<AttrName>, values: I)
    where
        I: IntoIterator<Item = V>,
        V: Into<AttrValue>,
    {
        let attr = attr.into();
        let set: BTreeSet<AttrValue> = values.into_iter().map(Into::into).collect();
        if set.is_empty() {
            self.attrs.remove(&attr);
        } else {
            self.attrs.insert(attr, set);
        }
    }

    /// True if the attribute exists with the given value.
    pub fn has_value(&self, attr: &AttrName, value: &AttrValue) -> bool {
        self.attrs.get(attr).is_some_and(|s| s.contains(value))
    }

    /// True if the attribute is present with at least one value.
    pub fn has_attr(&self, attr: &AttrName) -> bool {
        self.attrs.contains_key(attr)
    }

    /// Iterates the values of an attribute (empty if absent).
    pub fn values<'a>(&'a self, attr: &AttrName) -> impl Iterator<Item = &'a AttrValue> + 'a {
        self.attrs.get(attr).into_iter().flatten()
    }

    /// The first value of an attribute, if any.
    pub fn first_value(&self, attr: &AttrName) -> Option<&AttrValue> {
        self.values(attr).next()
    }

    /// Iterates `(name, values)` pairs in attribute-name order.
    pub fn attrs(&self) -> impl Iterator<Item = (&AttrName, &BTreeSet<AttrValue>)> {
        self.attrs.iter()
    }

    /// Names of all present attributes.
    pub fn attr_names(&self) -> impl Iterator<Item = &AttrName> {
        self.attrs.keys()
    }

    /// Values of the `objectclass` attribute.
    pub fn object_classes(&self) -> impl Iterator<Item = &AttrValue> {
        self.values(&AttrName::new("objectclass"))
    }

    /// Projects the entry onto a subset of attributes (used when answering
    /// searches that request specific attributes). The DN is always kept.
    pub fn project<'a, I>(&self, attrs: I) -> Entry
    where
        I: IntoIterator<Item = &'a AttrName>,
    {
        let mut out = Entry::new(self.dn.clone());
        for a in attrs {
            if let Some(set) = self.attrs.get(a) {
                out.attrs.insert(a.clone(), set.clone());
            }
        }
        out
    }

    /// Estimated wire size in bytes: DN plus every attribute name and value.
    ///
    /// Used by the traffic cost model; this intentionally approximates a
    /// BER-encoded LDAP entry PDU rather than reproducing ASN.1 exactly.
    pub fn estimated_size(&self) -> usize {
        let mut n = self.dn.to_string().len() + 8;
        for (a, vs) in &self.attrs {
            for v in vs {
                n += a.as_str().len() + v.raw().len() + 4;
            }
        }
        n
    }
}

impl fmt::Display for Entry {
    /// LDIF-like rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dn: {}", self.dn)?;
        for (a, vs) in &self.attrs {
            for v in vs {
                writeln!(f, "{a}: {v}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person() -> Entry {
        Entry::new("cn=John Doe,ou=research,c=us,o=xyz".parse().unwrap())
            .with("objectclass", "inetOrgPerson")
            .with("cn", "John Doe")
            .with("cn", "John M Doe")
            .with("telephoneNumber", "2618-2618")
            .with("mail", "john@us.xyz.com")
            .with("serialNumber", "0456")
            .with("departmentNumber", "80")
    }

    #[test]
    fn multi_valued_attributes() {
        let e = person();
        assert_eq!(e.values(&"cn".into()).count(), 2);
        assert!(e.has_value(&"cn".into(), &"JOHN M DOE".into()));
    }

    #[test]
    fn add_is_set_semantics() {
        let mut e = person();
        assert!(!e.add("cn", "john doe")); // normalized duplicate
        assert_eq!(e.values(&"cn".into()).count(), 2);
    }

    #[test]
    fn remove_value_and_attr() {
        let mut e = person();
        assert!(e.remove_value(&"cn".into(), &"John Doe".into()));
        assert_eq!(e.values(&"cn".into()).count(), 1);
        assert!(e.remove_value(&"cn".into(), &"John M Doe".into()));
        assert!(!e.has_attr(&"cn".into()));
        assert!(!e.remove_value(&"cn".into(), &"gone".into()));
        assert!(e.remove_attr(&"mail".into()));
        assert!(!e.has_attr(&"mail".into()));
    }

    #[test]
    fn replace_semantics() {
        let mut e = person();
        e.replace("departmentNumber", ["81", "82"]);
        let vals: Vec<_> = e.values(&"departmentNumber".into()).map(|v| v.raw().to_owned()).collect();
        assert_eq!(vals, ["81", "82"]);
        e.replace("departmentNumber", Vec::<&str>::new());
        assert!(!e.has_attr(&"departmentNumber".into()));
    }

    #[test]
    fn projection_keeps_requested_attrs() {
        let e = person();
        let p = e.project([&"cn".into(), &"mail".into()]);
        assert!(p.has_attr(&"cn".into()));
        assert!(p.has_attr(&"mail".into()));
        assert!(!p.has_attr(&"serialNumber".into()));
        assert_eq!(p.dn(), e.dn());
    }

    #[test]
    fn object_classes_accessor() {
        let e = person();
        let ocs: Vec<_> = e.object_classes().map(|v| v.normalized().to_owned()).collect();
        assert_eq!(ocs, ["inetorgperson"]);
    }

    #[test]
    fn estimated_size_positive_and_monotonic() {
        let mut e = person();
        let before = e.estimated_size();
        e.add("description", "some text");
        assert!(e.estimated_size() > before);
    }
}
