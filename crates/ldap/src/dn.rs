//! Distinguished names and the hierarchical naming model.
//!
//! A [`Dn`] is a (possibly empty) sequence of [`Rdn`]s ordered leaf-first,
//! exactly as written in LDAP string form: in
//! `cn=John Doe,ou=research,c=us,o=xyz` the leftmost RDN names the entry and
//! the rightmost names the topmost container. The empty DN (`""`) names the
//! root of the DIT.
//!
//! The paper's containment algorithms are built on two relations provided
//! here: `isSuffix(a, b)` — *a is an ancestor of b* — is
//! [`Dn::is_ancestor_of`], and `isparent(a, b)` is [`Dn::is_parent_of`].

use crate::{AttrName, AttrValue, NameParseError};
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// A relative distinguished name: one `attr=value` naming component.
///
/// Comparison is case-insensitive on both sides (via [`AttrName`] and
/// [`AttrValue`] semantics).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Rdn {
    attr: AttrName,
    value: AttrValue,
}

impl Rdn {
    /// Creates an RDN from an attribute name and value.
    pub fn new(attr: impl Into<AttrName>, value: impl Into<AttrValue>) -> Self {
        Rdn { attr: attr.into(), value: value.into() }
    }

    /// The naming attribute type.
    pub fn attr(&self) -> &AttrName {
        &self.attr
    }

    /// The naming attribute value.
    pub fn value(&self) -> &AttrValue {
        &self.value
    }
}

impl fmt::Display for Rdn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.attr, escape_value(self.value.raw()))
    }
}

/// A distinguished name; empty means the DIT root.
///
/// ```
/// use fbdr_ldap::Dn;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let base: Dn = "o=xyz".parse()?;
/// let entry: Dn = "cn=John Doe,ou=research,c=us,o=xyz".parse()?;
/// assert!(base.is_ancestor_of(&entry));
/// assert_eq!(entry.depth(), 4);
/// assert_eq!(entry.parent().unwrap().to_string(), "ou=research,c=us,o=xyz");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Dn {
    /// RDNs leaf-first (index 0 is the entry's own RDN). Shared so that
    /// cloning a DN — pervasive in store indexes, changelogs and session
    /// bookkeeping — is a refcount bump, not a deep string copy.
    rdns: Arc<[Rdn]>,
}

impl Default for Dn {
    fn default() -> Self {
        Dn::root()
    }
}

impl Serialize for Dn {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.rdns.iter())
    }
}

impl<'de> Deserialize<'de> for Dn {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Dn::from_rdns(Vec::<Rdn>::deserialize(deserializer)?))
    }
}

impl Dn {
    /// The root DN (empty sequence of RDNs).
    pub fn root() -> Self {
        Dn { rdns: Vec::new().into() }
    }

    /// Builds a DN from RDNs ordered leaf-first.
    pub fn from_rdns(rdns: Vec<Rdn>) -> Self {
        Dn { rdns: rdns.into() }
    }

    /// True for the DIT root.
    pub fn is_root(&self) -> bool {
        self.rdns.is_empty()
    }

    /// Number of RDN components (0 for the root).
    pub fn depth(&self) -> usize {
        self.rdns.len()
    }

    /// The entry's own (leftmost) RDN, if not the root.
    pub fn rdn(&self) -> Option<&Rdn> {
        self.rdns.first()
    }

    /// RDNs leaf-first.
    pub fn rdns(&self) -> &[Rdn] {
        &self.rdns
    }

    /// The parent DN; `None` for the root.
    pub fn parent(&self) -> Option<Dn> {
        if self.rdns.is_empty() {
            None
        } else {
            Some(Dn { rdns: self.rdns[1..].into() })
        }
    }

    /// The DN of a child of `self` named by `rdn`.
    pub fn child(&self, rdn: Rdn) -> Dn {
        let mut rdns = Vec::with_capacity(self.rdns.len() + 1);
        rdns.push(rdn);
        rdns.extend_from_slice(&self.rdns);
        Dn { rdns: rdns.into() }
    }

    /// Hierarchical ordering: root-first comparison of normalized RDN
    /// components, so a parent sorts immediately before its subtree and
    /// every subtree is one contiguous run. (The derived [`Ord`] compares
    /// leaf-first, matching the string form.)
    pub fn cmp_hierarchical(&self, other: &Dn) -> std::cmp::Ordering {
        self.rdns.iter().rev().cmp(other.rdns.iter().rev())
    }

    /// `isSuffix(self, other)` of the paper including equality: true when
    /// `self` is `other` or an ancestor of it. The root is an ancestor of
    /// every DN.
    pub fn is_ancestor_or_self_of(&self, other: &Dn) -> bool {
        let n = self.rdns.len();
        let m = other.rdns.len();
        n <= m && self.rdns[..] == other.rdns[m - n..]
    }

    /// Strict ancestor: `self` is a proper ancestor of `other`.
    pub fn is_ancestor_of(&self, other: &Dn) -> bool {
        self.rdns.len() < other.rdns.len() && self.is_ancestor_or_self_of(other)
    }

    /// `isparent(self, other)` of the paper: `self` is the immediate parent
    /// of `other`.
    pub fn is_parent_of(&self, other: &Dn) -> bool {
        other.rdns.len() == self.rdns.len() + 1 && self.is_ancestor_or_self_of(other)
    }
}

impl fmt::Display for Dn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, rdn) in self.rdns.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{rdn}")?;
        }
        Ok(())
    }
}

impl FromStr for Dn {
    type Err = NameParseError;

    /// Parses the LDAP string form. Commas and equals signs inside values
    /// may be escaped with a backslash (`\,`, `\=`, `\\`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Dn::root());
        }
        let mut rdns = Vec::new();
        for comp in split_unescaped(s, ',') {
            let comp = comp.trim();
            if comp.is_empty() {
                return Err(NameParseError::new("empty RDN component"));
            }
            let mut parts = split_unescaped(comp, '=');
            let attr = parts
                .next()
                .ok_or_else(|| NameParseError::new(format!("missing '=' in {comp:?}")))?;
            let value = parts
                .next()
                .ok_or_else(|| NameParseError::new(format!("missing '=' in {comp:?}")))?;
            if parts.next().is_some() {
                return Err(NameParseError::new(format!("unescaped '=' in value of {comp:?}")));
            }
            let attr = attr.trim();
            if attr.is_empty() {
                return Err(NameParseError::new(format!("empty attribute in {comp:?}")));
            }
            rdns.push(Rdn::new(attr, unescape(value.trim())));
        }
        Ok(Dn { rdns: rdns.into() })
    }
}

/// Splits `s` on `sep`, honouring backslash escapes.
fn split_unescaped(s: &str, sep: char) -> impl Iterator<Item = String> + '_ {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut escaped = false;
    for c in s.chars() {
        if escaped {
            cur.push('\\');
            cur.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == sep {
            parts.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    if escaped {
        cur.push('\\');
    }
    parts.push(cur);
    parts.into_iter()
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut escaped = false;
    for c in s.chars() {
        if escaped {
            out.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else {
            out.push(c);
        }
    }
    out
}

fn escape_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if matches!(c, ',' | '=' | '\\') {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        let d = dn("cn=John Doe,ou=research,c=us,o=xyz");
        assert_eq!(d.to_string(), "cn=John Doe,ou=research,c=us,o=xyz");
        assert_eq!(d.depth(), 4);
        assert_eq!(d.rdn().unwrap().attr().as_str(), "cn");
    }

    #[test]
    fn root_dn() {
        let r = dn("");
        assert!(r.is_root());
        assert_eq!(r.to_string(), "");
        assert!(r.is_ancestor_or_self_of(&dn("o=xyz")));
        assert!(r.is_ancestor_of(&dn("o=xyz")));
        assert!(!r.is_ancestor_of(&r));
    }

    #[test]
    fn ancestor_relations() {
        let base = dn("o=xyz");
        let mid = dn("c=us,o=xyz");
        let leaf = dn("cn=x,ou=research,c=us,o=xyz");
        assert!(base.is_ancestor_of(&mid));
        assert!(base.is_ancestor_of(&leaf));
        assert!(mid.is_ancestor_of(&leaf));
        assert!(!mid.is_ancestor_of(&base));
        assert!(!dn("c=in,o=xyz").is_ancestor_of(&leaf));
        assert!(base.is_ancestor_or_self_of(&base));
    }

    #[test]
    fn parent_relations() {
        let p = dn("ou=research,c=us,o=xyz");
        let c = dn("cn=x,ou=research,c=us,o=xyz");
        assert!(p.is_parent_of(&c));
        assert!(!p.is_parent_of(&p));
        assert!(!dn("o=xyz").is_parent_of(&c));
        assert_eq!(c.parent().unwrap(), p);
        assert_eq!(dn("").parent(), None);
    }

    #[test]
    fn child_construction() {
        let p = dn("c=us,o=xyz");
        let c = p.child(Rdn::new("cn", "Fred Jones"));
        assert_eq!(c.to_string(), "cn=Fred Jones,c=us,o=xyz");
        assert!(p.is_parent_of(&c));
    }

    #[test]
    fn case_insensitive_comparison() {
        assert_eq!(dn("CN=John Doe,O=XYZ"), dn("cn=john doe,o=xyz"));
        assert!(dn("O=XYZ").is_ancestor_of(&dn("cn=a,o=xyz")));
    }

    #[test]
    fn escaped_comma_in_value() {
        let d = dn(r"cn=Doe\, John,o=xyz");
        assert_eq!(d.depth(), 2);
        assert_eq!(d.rdn().unwrap().value().raw(), "Doe, John");
        // Round trips through Display.
        let d2: Dn = d.to_string().parse().unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn rejects_garbage() {
        assert!("cn".parse::<Dn>().is_err());
        assert!("cn=a,,o=b".parse::<Dn>().is_err());
        assert!("=v,o=b".parse::<Dn>().is_err());
    }
}
