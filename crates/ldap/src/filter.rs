//! RFC 2254 search filters: AST, parser, printer and evaluation.
//!
//! The grammar implemented is the subset the paper works with:
//!
//! ```text
//! filter     = "(" ( and / or / not / item ) ")"
//! and        = "&" filterlist
//! or         = "|" filterlist
//! not        = "!" filter
//! item       = attr "=" "*"                    ; presence
//!            / attr "=" value                  ; equality
//!            / attr ">=" value                 ; greater-or-equal
//!            / attr "<=" value                 ; less-or-equal
//!            / attr "=" [initial] *("*" any) "*" [final]   ; substrings
//! ```
//!
//! Values may escape `( ) * \` with `\XX` hex pairs or `\c` single-character
//! escapes. Printing produces a canonical form that re-parses to an equal
//! filter.

use crate::{AttrName, AttrValue, Entry, FilterParseError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A substring assertion pattern, e.g. `smi*th*` in `(sn=smi*th*)`.
///
/// `initial` matches at the start, each element of `any` in order in the
/// middle, and `final_part` at the end. Matching is performed on normalized
/// value text.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SubstringPattern {
    initial: Option<String>,
    any: Vec<String>,
    final_part: Option<String>,
}

impl SubstringPattern {
    /// Creates a pattern. At least one component must be non-empty and the
    /// pattern must not degenerate into a plain equality (that would be an
    /// equality assertion, not a substring one).
    pub fn new(initial: Option<String>, any: Vec<String>, final_part: Option<String>) -> Self {
        SubstringPattern {
            initial: initial.map(|s| normalize_component(&s)),
            any: any.iter().map(|s| normalize_component(s)).collect(),
            final_part: final_part.map(|s| normalize_component(&s)),
        }
    }

    /// A prefix pattern `prefix*`, the common generalized-filter shape
    /// (e.g. `(serialNumber=0456*)`).
    pub fn prefix(p: impl Into<String>) -> Self {
        SubstringPattern::new(Some(p.into()), Vec::new(), None)
    }

    /// The `initial` component, if any.
    pub fn initial(&self) -> Option<&str> {
        self.initial.as_deref()
    }

    /// The `any` (middle) components.
    pub fn any(&self) -> &[String] {
        &self.any
    }

    /// The `final` component, if any.
    pub fn final_part(&self) -> Option<&str> {
        self.final_part.as_deref()
    }

    /// True when the pattern is exactly `prefix*`.
    pub fn is_prefix_only(&self) -> bool {
        self.initial.is_some() && self.any.is_empty() && self.final_part.is_none()
    }

    /// All text components in order (initial, any…, final).
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.initial
            .as_deref()
            .into_iter()
            .chain(self.any.iter().map(|s| s.as_str()))
            .chain(self.final_part.as_deref())
    }

    /// Evaluates the pattern against a normalized string.
    pub fn matches_str(&self, norm: &str) -> bool {
        let mut rest = norm;
        if let Some(init) = &self.initial {
            match rest.strip_prefix(init.as_str()) {
                Some(r) => rest = r,
                None => return false,
            }
        }
        // Reserve the final component from the tail.
        let tail_len = self.final_part.as_ref().map_or(0, |f| f.len());
        if rest.len() < tail_len {
            return false;
        }
        let (mut middle, tail) = rest.split_at(rest.len() - tail_len);
        if let Some(fin) = &self.final_part {
            if tail != fin {
                return false;
            }
        }
        for a in &self.any {
            match middle.find(a.as_str()) {
                Some(pos) => middle = &middle[pos + a.len()..],
                None => return false,
            }
        }
        true
    }

    /// Evaluates the pattern against an attribute value.
    pub fn matches(&self, value: &AttrValue) -> bool {
        self.matches_str(value.normalized())
    }
}

fn normalize_component(s: &str) -> String {
    AttrValue::new(s).normalized().to_owned()
}

impl fmt::Display for SubstringPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(init) = &self.initial {
            f.write_str(&escape_value(init))?;
        }
        f.write_str("*")?;
        for a in &self.any {
            f.write_str(&escape_value(a))?;
            f.write_str("*")?;
        }
        if let Some(fin) = &self.final_part {
            f.write_str(&escape_value(fin))?;
        }
        Ok(())
    }
}

/// The comparison part of a predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Comparison {
    /// `(attr=value)` — equality.
    Eq(AttrValue),
    /// `(attr>=value)` — greater-or-equal.
    Ge(AttrValue),
    /// `(attr<=value)` — less-or-equal.
    Le(AttrValue),
    /// `(attr=*)` — presence.
    Present,
    /// `(attr=init*any*fin)` — substrings.
    Substring(SubstringPattern),
}

impl Comparison {
    /// Evaluates the comparison against a single value.
    ///
    /// Range comparisons are *typed by the assertion value*: when the
    /// assertion parses as an integer, only integer values match (compared
    /// numerically, like LDAP's `integerOrderingMatch`); otherwise values
    /// compare lexicographically on their normalized text
    /// (`caseIgnoreOrderingMatch`). Equality uses normalized text equality.
    pub fn matches_value(&self, v: &AttrValue) -> bool {
        match self {
            Comparison::Eq(x) => v == x,
            Comparison::Ge(x) => range_cmp(v, x).is_some_and(|o| o != std::cmp::Ordering::Less),
            Comparison::Le(x) => range_cmp(v, x).is_some_and(|o| o != std::cmp::Ordering::Greater),
            Comparison::Present => true,
            Comparison::Substring(p) => p.matches(v),
        }
    }

    /// The assertion value of an equality or range comparison, `None` for
    /// presence and substring assertions (whose "value" is a pattern, not
    /// a point).
    ///
    /// This is the plan-support accessor index planners use to dispatch on
    /// the bound's type (integer vs. text) without matching every variant.
    ///
    /// ```
    /// use fbdr_ldap::Filter;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let f = Filter::parse("(serialNumber>=500)")?;
    /// let p = f.as_predicate().expect("single predicate");
    /// assert_eq!(p.comparison().assertion().and_then(|v| v.as_int()), Some(500));
    /// # Ok(())
    /// # }
    /// ```
    pub fn assertion(&self) -> Option<&AttrValue> {
        match self {
            Comparison::Eq(v) | Comparison::Ge(v) | Comparison::Le(v) => Some(v),
            Comparison::Present | Comparison::Substring(_) => None,
        }
    }

    /// Short kind label used by templates (`=`, `>=`, `<=`, `=*`, substring
    /// star-shape). Two comparisons of the same kind differ only in
    /// assertion values.
    pub fn kind(&self) -> String {
        match self {
            Comparison::Eq(_) => "=".to_owned(),
            Comparison::Ge(_) => ">=".to_owned(),
            Comparison::Le(_) => "<=".to_owned(),
            Comparison::Present => "=*".to_owned(),
            Comparison::Substring(p) => {
                // Encode the star shape, e.g. `_*` or `_*_` or `*_*`.
                let mut s = String::new();
                if p.initial().is_some() {
                    s.push('_');
                }
                s.push('*');
                for _ in p.any() {
                    s.push('_');
                    s.push('*');
                }
                if p.final_part().is_some() {
                    s.push('_');
                }
                s
            }
        }
    }
}

/// A simple predicate `(name operator value)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Predicate {
    attr: AttrName,
    cmp: Comparison,
}

impl Predicate {
    /// Creates a predicate from an attribute and comparison.
    pub fn new(attr: impl Into<AttrName>, cmp: Comparison) -> Self {
        Predicate { attr: attr.into(), cmp }
    }

    /// Equality predicate `(attr=value)`.
    pub fn eq(attr: impl Into<AttrName>, value: impl Into<AttrValue>) -> Self {
        Predicate::new(attr, Comparison::Eq(value.into()))
    }

    /// Range predicate `(attr>=value)`.
    pub fn ge(attr: impl Into<AttrName>, value: impl Into<AttrValue>) -> Self {
        Predicate::new(attr, Comparison::Ge(value.into()))
    }

    /// Range predicate `(attr<=value)`.
    pub fn le(attr: impl Into<AttrName>, value: impl Into<AttrValue>) -> Self {
        Predicate::new(attr, Comparison::Le(value.into()))
    }

    /// Presence predicate `(attr=*)`.
    pub fn present(attr: impl Into<AttrName>) -> Self {
        Predicate::new(attr, Comparison::Present)
    }

    /// Substring predicate.
    pub fn substring(attr: impl Into<AttrName>, pattern: SubstringPattern) -> Self {
        Predicate::new(attr, Comparison::Substring(pattern))
    }

    /// The attribute the predicate constrains.
    pub fn attr(&self) -> &AttrName {
        &self.attr
    }

    /// The comparison.
    pub fn comparison(&self) -> &Comparison {
        &self.cmp
    }

    /// Evaluates against a single value (see [`Comparison::matches_value`]
    /// for the typed range semantics).
    pub fn matches_value(&self, v: &AttrValue) -> bool {
        self.cmp.matches_value(v)
    }

    /// Evaluates against an entry: true if any value of the attribute
    /// satisfies the comparison.
    pub fn matches(&self, entry: &Entry) -> bool {
        entry.values(&self.attr).any(|v| self.matches_value(v))
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.cmp {
            Comparison::Eq(v) => write!(f, "({}={})", self.attr, escape_value(v.raw())),
            Comparison::Ge(v) => write!(f, "({}>={})", self.attr, escape_value(v.raw())),
            Comparison::Le(v) => write!(f, "({}<={})", self.attr, escape_value(v.raw())),
            Comparison::Present => write!(f, "({}=*)", self.attr),
            Comparison::Substring(p) => write!(f, "({}={})", self.attr, p),
        }
    }
}

/// An RFC 2254 search filter.
///
/// ```
/// use fbdr_ldap::Filter;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = Filter::parse("(&(objectclass=inetOrgPerson)(departmentNumber=240*))")?;
/// assert!(f.is_positive());
/// assert_eq!(f.to_string(), "(&(objectclass=inetOrgPerson)(departmentNumber=240*))");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Filter {
    /// Conjunction `(&f1f2…)`.
    And(Vec<Filter>),
    /// Disjunction `(|f1f2…)`.
    Or(Vec<Filter>),
    /// Negation `(!f)`.
    Not(Box<Filter>),
    /// A simple predicate.
    Pred(Predicate),
}

impl Filter {
    /// Parses the RFC 2254 string form.
    ///
    /// # Errors
    ///
    /// Returns [`FilterParseError`] with the offending byte position when
    /// the input is not a well-formed filter.
    pub fn parse(s: &str) -> Result<Filter, FilterParseError> {
        let bytes = s.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let f = p.filter()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(FilterParseError::new(p.pos, "trailing input after filter"));
        }
        Ok(f)
    }

    /// The filter `(objectclass=*)` which matches every entry.
    pub fn match_all() -> Filter {
        Filter::Pred(Predicate::present("objectclass"))
    }

    /// Convenience constructor for a single predicate filter.
    pub fn pred(p: Predicate) -> Filter {
        Filter::Pred(p)
    }

    /// Conjunction of filters. A single element collapses to itself.
    pub fn and(fs: Vec<Filter>) -> Filter {
        if fs.len() == 1 {
            fs.into_iter().next().expect("len checked")
        } else {
            Filter::And(fs)
        }
    }

    /// Disjunction of filters. A single element collapses to itself.
    pub fn or(fs: Vec<Filter>) -> Filter {
        if fs.len() == 1 {
            fs.into_iter().next().expect("len checked")
        } else {
            Filter::Or(fs)
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Filter) -> Filter {
        Filter::Not(Box::new(f))
    }

    /// Evaluates the filter against an entry.
    ///
    /// Absent attributes make predicates false (two-valued semantics; the
    /// paper does not use LDAP's `Undefined`).
    pub fn matches(&self, entry: &Entry) -> bool {
        match self {
            Filter::And(fs) => fs.iter().all(|f| f.matches(entry)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(entry)),
            Filter::Not(f) => !f.matches(entry),
            Filter::Pred(p) => p.matches(entry),
        }
    }

    /// True when the filter contains no NOT operator (a *positive filter*,
    /// the class Propositions 2 and 3 of the paper apply to).
    pub fn is_positive(&self) -> bool {
        match self {
            Filter::And(fs) | Filter::Or(fs) => fs.iter().all(Filter::is_positive),
            Filter::Not(_) => false,
            Filter::Pred(_) => true,
        }
    }

    /// Visits every predicate in the filter, left to right.
    pub fn for_each_predicate<'a>(&'a self, f: &mut impl FnMut(&'a Predicate)) {
        match self {
            Filter::And(fs) | Filter::Or(fs) => {
                for sub in fs {
                    sub.for_each_predicate(f);
                }
            }
            Filter::Not(sub) => sub.for_each_predicate(f),
            Filter::Pred(p) => f(p),
        }
    }

    /// Collects all predicates, left to right.
    pub fn predicates(&self) -> Vec<&Predicate> {
        let mut out = Vec::new();
        self.for_each_predicate(&mut |p| out.push(p));
        out
    }

    /// Number of predicates.
    pub fn predicate_count(&self) -> usize {
        let mut n = 0;
        self.for_each_predicate(&mut |_| n += 1);
        n
    }

    /// Structurally simplifies the filter without changing its semantics:
    ///
    /// * nested `And`/`Or` of the same kind are flattened
    ///   (`(&(a=1)(&(b=2)(c=3)))` → `(&(a=1)(b=2)(c=3))`),
    /// * duplicate children of an `And`/`Or` are removed,
    /// * single-child `And`/`Or` collapse to the child,
    /// * double negation cancels.
    ///
    /// Useful for canonicalizing application-generated filters before
    /// template extraction, so trivially different spellings share a
    /// template.
    ///
    /// ```
    /// use fbdr_ldap::Filter;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let f = Filter::parse("(&(a=1)(&(b=2)(a=1)))")?;
    /// assert_eq!(f.simplify().to_string(), "(&(a=1)(b=2))");
    /// let g = Filter::parse("(!(!(a=1)))")?;
    /// assert_eq!(g.simplify().to_string(), "(a=1)");
    /// # Ok(())
    /// # }
    /// ```
    pub fn simplify(&self) -> Filter {
        match self {
            Filter::And(fs) => rebuild(fs, true),
            Filter::Or(fs) => rebuild(fs, false),
            Filter::Not(inner) => match inner.simplify() {
                Filter::Not(f) => *f,
                other => Filter::Not(Box::new(other)),
            },
            Filter::Pred(p) => Filter::Pred(p.clone()),
        }
    }

    /// The sub-filters of a conjunction or disjunction; the empty slice
    /// for predicates and negations. Together with
    /// [`as_predicate`](Filter::as_predicate) and
    /// [`negated`](Filter::negated) this lets index planners walk the AST
    /// by shape.
    ///
    /// ```
    /// use fbdr_ldap::Filter;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let f = Filter::parse("(&(a=1)(b=2))")?;
    /// assert_eq!(f.children().len(), 2);
    /// assert!(Filter::parse("(a=1)")?.children().is_empty());
    /// # Ok(())
    /// # }
    /// ```
    pub fn children(&self) -> &[Filter] {
        match self {
            Filter::And(fs) | Filter::Or(fs) => fs,
            Filter::Not(_) | Filter::Pred(_) => &[],
        }
    }

    /// The predicate of a simple-predicate filter, `None` for composite
    /// nodes.
    pub fn as_predicate(&self) -> Option<&Predicate> {
        match self {
            Filter::Pred(p) => Some(p),
            _ => None,
        }
    }

    /// The inner filter of a negation, `None` for every other node.
    pub fn negated(&self) -> Option<&Filter> {
        match self {
            Filter::Not(f) => Some(f),
            _ => None,
        }
    }

    /// Names of all attributes mentioned by the filter.
    pub fn attr_names(&self) -> Vec<&AttrName> {
        let mut out = Vec::new();
        self.for_each_predicate(&mut |p| {
            if !out.contains(&p.attr()) {
                out.push(p.attr());
            }
        });
        out
    }
}

impl FromStr for Filter {
    type Err = FilterParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Filter::parse(s)
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Filter::And(fs) => {
                f.write_str("(&")?;
                for sub in fs {
                    write!(f, "{sub}")?;
                }
                f.write_str(")")
            }
            Filter::Or(fs) => {
                f.write_str("(|")?;
                for sub in fs {
                    write!(f, "{sub}")?;
                }
                f.write_str(")")
            }
            Filter::Not(sub) => write!(f, "(!{sub})"),
            Filter::Pred(p) => write!(f, "{p}"),
        }
    }
}

/// Simplifies the children of an `And` (`conjunctive = true`) or `Or`:
/// flatten same-kind nesting, drop duplicates, collapse singletons.
fn rebuild(children: &[Filter], conjunctive: bool) -> Filter {
    let mut out: Vec<Filter> = Vec::with_capacity(children.len());
    for c in children {
        let s = c.simplify();
        let nested = match (&s, conjunctive) {
            (Filter::And(inner), true) | (Filter::Or(inner), false) => Some(inner.clone()),
            _ => None,
        };
        match nested {
            Some(inner) => {
                for f in inner {
                    if !out.contains(&f) {
                        out.push(f);
                    }
                }
            }
            None => {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        }
    }
    if out.len() == 1 {
        out.into_iter().next().expect("len checked")
    } else if conjunctive {
        Filter::And(out)
    } else {
        Filter::Or(out)
    }
}

/// Typed ordering for range assertions: integer assertions compare
/// numerically and reject non-integer values (`None`); string assertions
/// compare normalized text lexicographically.
fn range_cmp(v: &AttrValue, assertion: &AttrValue) -> Option<std::cmp::Ordering> {
    match assertion.as_int() {
        Some(xi) => v.as_int().map(|vi| vi.cmp(&xi)),
        None => Some(v.normalized().cmp(assertion.normalized())),
    }
}

/// Escapes `( ) * \` in a value for RFC 2254 printing.
fn escape_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '(' => out.push_str("\\28"),
            ')' => out.push_str("\\29"),
            '*' => out.push_str("\\2a"),
            '\\' => out.push_str("\\5c"),
            _ => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, FilterParseError> {
        Err(FilterParseError::new(self.pos, msg))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), FilterParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    fn filter(&mut self) -> Result<Filter, FilterParseError> {
        self.expect(b'(')?;
        let f = match self.peek() {
            Some(b'&') => {
                self.pos += 1;
                Filter::And(self.filter_list()?)
            }
            Some(b'|') => {
                self.pos += 1;
                Filter::Or(self.filter_list()?)
            }
            Some(b'!') => {
                self.pos += 1;
                Filter::Not(Box::new(self.filter()?))
            }
            Some(_) => Filter::Pred(self.item()?),
            None => return self.err("unexpected end of input"),
        };
        self.expect(b')')?;
        Ok(f)
    }

    fn filter_list(&mut self) -> Result<Vec<Filter>, FilterParseError> {
        let mut fs = Vec::new();
        while self.peek() == Some(b'(') {
            fs.push(self.filter()?);
        }
        if fs.is_empty() {
            return self.err("empty filter list");
        }
        Ok(fs)
    }

    fn item(&mut self) -> Result<Predicate, FilterParseError> {
        let attr = self.attr_name()?;
        match self.peek() {
            Some(b'=') => {
                self.pos += 1;
                self.equality_tail(attr)
            }
            Some(b'>') => {
                self.pos += 1;
                self.expect(b'=')?;
                let v = self.value_text()?;
                if v.parts.len() != 1 || v.trailing_star {
                    return self.err("'*' not allowed in range assertion");
                }
                Ok(Predicate::ge(attr, v.parts.into_iter().next().expect("len checked")))
            }
            Some(b'<') => {
                self.pos += 1;
                self.expect(b'=')?;
                let v = self.value_text()?;
                if v.parts.len() != 1 || v.trailing_star {
                    return self.err("'*' not allowed in range assertion");
                }
                Ok(Predicate::le(attr, v.parts.into_iter().next().expect("len checked")))
            }
            _ => self.err("expected '=', '>=' or '<='"),
        }
    }

    /// After `attr=`: presence, equality or substring.
    fn equality_tail(&mut self, attr: AttrName) -> Result<Predicate, FilterParseError> {
        let v = self.value_text()?;
        let star_count = v.parts.len() - 1 + usize::from(v.trailing_star && v.parts.last().is_some_and(|p| p.is_empty()));
        let _ = star_count;
        // v.parts are the text runs between stars; empty strings mark
        // adjacent stars / leading / trailing positions.
        let parts = v.parts;
        if parts.len() == 1 && !v.stars {
            let only = parts.into_iter().next().expect("len checked");
            if only.is_empty() {
                return self.err("empty assertion value");
            }
            return Ok(Predicate::eq(attr, only));
        }
        // Substring / presence: parts = [initial, any..., final] where empty
        // initial/final mean "absent".
        if parts.len() == 2 && parts[0].is_empty() && parts[1].is_empty() {
            return Ok(Predicate::present(attr));
        }
        let mut it = parts.into_iter();
        let first = it.next().expect("at least one part");
        let mut rest: Vec<String> = it.collect();
        let last = rest.pop().expect("substring has >= 2 parts");
        let initial = if first.is_empty() { None } else { Some(first) };
        let final_part = if last.is_empty() { None } else { Some(last) };
        if rest.iter().any(|s| s.is_empty()) {
            return self.err("empty 'any' component in substring (adjacent '*')");
        }
        Ok(Predicate::substring(attr, SubstringPattern::new(initial, rest, final_part)))
    }

    fn attr_name(&mut self) -> Result<AttrName, FilterParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'-' || b == b'.' || b == b';' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected attribute name");
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| FilterParseError::new(start, "attribute name is not UTF-8"))?;
        Ok(AttrName::new(s))
    }

    /// Reads value text up to `)`, splitting on unescaped `*`.
    fn value_text(&mut self) -> Result<ValueText, FilterParseError> {
        let mut parts = vec![String::new()];
        let mut stars = false;
        loop {
            match self.peek() {
                None => return self.err("unexpected end of input in value"),
                Some(b')') => break,
                Some(b'*') => {
                    self.pos += 1;
                    stars = true;
                    parts.push(String::new());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let c = self.escape()?;
                    parts.last_mut().expect("non-empty").push(c);
                }
                Some(b'(') => return self.err("unescaped '(' in value"),
                Some(_) => {
                    // Consume one UTF-8 character.
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| FilterParseError::new(self.pos, "value is not UTF-8"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    parts.last_mut().expect("non-empty").push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
        let trailing_star = stars && parts.last().is_some_and(|p| p.is_empty());
        Ok(ValueText { parts, stars, trailing_star })
    }

    /// After a backslash: `\XX` hex pair or single escaped character.
    fn escape(&mut self) -> Result<char, FilterParseError> {
        let Some(b1) = self.peek() else {
            return self.err("dangling escape");
        };
        let b2 = self.bytes.get(self.pos + 1).copied();
        if let (Some(h1), Some(Some(h2))) = (hex_val(b1), b2.map(hex_val)) {
            self.pos += 2;
            Ok((h1 * 16 + h2) as char)
        } else {
            self.pos += 1;
            Ok(b1 as char)
        }
    }
}

fn hex_val(b: u8) -> Option<u8> {
    match b {
        b'0'..=b'9' => Some(b - b'0'),
        b'a'..=b'f' => Some(b - b'a' + 10),
        b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

struct ValueText {
    parts: Vec<String>,
    stars: bool,
    trailing_star: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Entry;

    fn entry() -> Entry {
        Entry::new("cn=John Doe,c=us,o=xyz".parse().unwrap())
            .with("objectclass", "inetOrgPerson")
            .with("cn", "John Doe")
            .with("sn", "Doe")
            .with("givenName", "John")
            .with("age", "30")
            .with("serialNumber", "045612")
            .with("mail", "john@us.xyz.com")
    }

    fn f(s: &str) -> Filter {
        Filter::parse(s).unwrap()
    }

    #[test]
    fn parse_equality() {
        let filt = f("(sn=Doe)");
        assert!(filt.matches(&entry()));
        assert!(!f("(sn=Smith)").matches(&entry()));
        assert_eq!(filt.to_string(), "(sn=Doe)");
    }

    #[test]
    fn parse_and_or_not() {
        assert!(f("(&(sn=Doe)(givenName=John))").matches(&entry()));
        assert!(!f("(&(sn=Doe)(givenName=Jane))").matches(&entry()));
        assert!(f("(|(sn=Smith)(givenName=John))").matches(&entry()));
        assert!(f("(!(sn=Smith))").matches(&entry()));
        assert!(!f("(!(sn=Doe))").matches(&entry()));
    }

    #[test]
    fn parse_ranges_numeric() {
        assert!(f("(age>=30)").matches(&entry()));
        assert!(f("(age<=30)").matches(&entry()));
        assert!(!f("(age>=31)").matches(&entry()));
        // Numeric comparison, not lexicographic ("30" < "9" as strings).
        assert!(f("(age>=9)").matches(&entry()));
        assert!(f("(age<=100)").matches(&entry()));
    }

    #[test]
    fn range_typing_by_assertion_value() {
        let e = Entry::new("cn=x,o=y".parse().unwrap())
            .with("age", "30")
            .with("code", "b7")
            .with("name", "miller");
        // Integer assertion: non-integer values never match.
        assert!(!f("(code>=5)").matches(&e));
        assert!(!f("(name<=99)").matches(&e));
        // String assertion: lexicographic, even against numeric-looking values.
        assert!(f("(name>=abc)").matches(&e));
        assert!(!f("(name>=zz)").matches(&e));
        assert!(f("(code>=a1)").matches(&e));
        // "30" vs string assertion "abc": lexicographic, digits sort first.
        assert!(f("(age<=abc)").matches(&e));
        assert!(!f("(age>=abc)").matches(&e));
    }

    #[test]
    fn parse_presence() {
        assert!(f("(objectclass=*)").matches(&entry()));
        assert!(f("(mail=*)").matches(&entry()));
        assert!(!f("(fax=*)").matches(&entry()));
    }

    #[test]
    fn parse_substring_forms() {
        assert!(f("(sn=D*)").matches(&entry()));
        assert!(f("(sn=*oe)").matches(&entry()));
        assert!(f("(sn=D*e)").matches(&entry()));
        assert!(f("(cn=*ohn*oe*)").matches(&entry()));
        assert!(f("(serialNumber=0456*)").matches(&entry()));
        assert!(!f("(serialNumber=0457*)").matches(&entry()));
        assert!(f("(mail=*@us.xyz.com)").matches(&entry()));
    }

    #[test]
    fn substring_case_insensitive() {
        assert!(f("(sn=d*E)").matches(&entry()));
    }

    #[test]
    fn substring_overlapping_any_components() {
        let p = SubstringPattern::new(None, vec!["aba".into()], None);
        assert!(p.matches_str("xabay"));
        let p2 = SubstringPattern::new(None, vec!["ab".into(), "ab".into()], None);
        assert!(p2.matches_str("abab"));
        assert!(!p2.matches_str("aab"));
    }

    #[test]
    fn substring_final_reserved_from_tail() {
        // (a=x*x) must not match "x": the one char cannot serve both ends.
        let p = SubstringPattern::new(Some("x".into()), vec![], Some("x".into()));
        assert!(!p.matches_str("x"));
        assert!(p.matches_str("xx"));
        assert!(p.matches_str("xyx"));
    }

    #[test]
    fn display_round_trip() {
        for s in [
            "(sn=Doe)",
            "(&(sn=Doe)(givenName=John))",
            "(|(a=1)(b=2)(c=3))",
            "(!(sn=Doe))",
            "(sn=smi*)",
            "(sn=*ith)",
            "(sn=s*i*h)",
            "(objectclass=*)",
            "(age>=30)",
            "(age<=40)",
            "(&(objectclass=inetOrgPerson)(departmentNumber=240*))",
        ] {
            let parsed = f(s);
            assert_eq!(parsed.to_string(), s, "canonical form differs for {s}");
            assert_eq!(Filter::parse(&parsed.to_string()).unwrap(), parsed);
        }
    }

    #[test]
    fn escapes_in_values() {
        let filt = f(r"(cn=a\2ab)"); // a*b literal
        match &filt {
            Filter::Pred(p) => match p.comparison() {
                Comparison::Eq(v) => assert_eq!(v.raw(), "a*b"),
                other => panic!("expected equality, got {other:?}"),
            },
            other => panic!("expected predicate, got {other:?}"),
        }
        // Round trips.
        assert_eq!(Filter::parse(&filt.to_string()).unwrap(), filt);
    }

    #[test]
    fn parse_errors_carry_position() {
        for bad in ["", "(", "(sn=)", "(&)", "(sn=Doe", "sn=Doe", "(sn~=x)", "(age>=3*0)", "((sn=a))x"] {
            let e = Filter::parse(bad);
            assert!(e.is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn is_positive_classification() {
        assert!(f("(&(sn=Doe)(age>=3))").is_positive());
        assert!(!f("(&(sn=Doe)(!(age>=3)))").is_positive());
    }

    #[test]
    fn predicate_collection_order() {
        let filt = f("(&(sn=Doe)(|(a=1)(b=2)))");
        let attrs: Vec<_> = filt.predicates().iter().map(|p| p.attr().as_str().to_owned()).collect();
        assert_eq!(attrs, ["sn", "a", "b"]);
        assert_eq!(filt.predicate_count(), 3);
    }

    #[test]
    fn match_all_matches_everything_with_objectclass() {
        assert!(Filter::match_all().matches(&entry()));
    }

    #[test]
    fn simplify_flattens_and_dedups() {
        assert_eq!(f("(&(a=1)(&(b=2)(c=3)))").simplify().to_string(), "(&(a=1)(b=2)(c=3))");
        assert_eq!(f("(|(a=1)(|(a=1)(b=2)))").simplify().to_string(), "(|(a=1)(b=2))");
        assert_eq!(f("(&(a=1)(a=1))").simplify().to_string(), "(a=1)");
        assert_eq!(f("(!(!(sn=x)))").simplify().to_string(), "(sn=x)");
        // Mixed kinds do not flatten across the boundary.
        assert_eq!(
            f("(&(a=1)(|(b=2)(c=3)))").simplify().to_string(),
            "(&(a=1)(|(b=2)(c=3)))"
        );
        // Simplification is idempotent.
        let g = f("(&(a=1)(&(a=1)(!(!(b=2)))))").simplify();
        assert_eq!(g.simplify(), g);
    }

    #[test]
    fn simplify_preserves_matching() {
        let e = entry();
        for s in [
            "(&(sn=Doe)(&(givenName=John)(sn=Doe)))",
            "(|(sn=Smith)(|(sn=Doe)))",
            "(!(!(age>=30)))",
            "(&(sn=Doe))",
        ] {
            let orig = f(s);
            let simp = orig.simplify();
            assert_eq!(orig.matches(&e), simp.matches(&e), "{s}");
        }
    }

    #[test]
    fn comparison_kind_labels() {
        assert_eq!(f("(a=1)").predicates()[0].comparison().kind(), "=");
        assert_eq!(f("(a>=1)").predicates()[0].comparison().kind(), ">=");
        assert_eq!(f("(a=1*)").predicates()[0].comparison().kind(), "_*");
        assert_eq!(f("(a=*1)").predicates()[0].comparison().kind(), "*_");
        assert_eq!(f("(a=1*2)").predicates()[0].comparison().kind(), "_*_");
        assert_eq!(f("(a=*)").predicates()[0].comparison().kind(), "=*");
    }
}
