//! Error types for parsing names and filters.

use std::error::Error;
use std::fmt;

/// Error returned when a string is not a valid RFC 2254 filter.
///
/// Carries the byte offset at which parsing failed and a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterParseError {
    pos: usize,
    msg: String,
}

impl FilterParseError {
    pub(crate) fn new(pos: usize, msg: impl Into<String>) -> Self {
        FilterParseError { pos, msg: msg.into() }
    }

    /// Byte offset in the input at which the error was detected.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Human-readable description of what went wrong.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for FilterParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid filter at byte {}: {}", self.pos, self.msg)
    }
}

impl Error for FilterParseError {}

/// Error returned when a string is not a valid distinguished name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameParseError {
    msg: String,
}

impl NameParseError {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        NameParseError { msg: msg.into() }
    }
}

impl fmt::Display for NameParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distinguished name: {}", self.msg)
    }
}

impl Error for NameParseError {}
