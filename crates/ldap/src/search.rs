//! Search requests: the query quadruple *(base, scope, filter, attributes)*.

use crate::{AttrName, Dn, Entry, Filter};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// How deep below the base a search extends.
///
/// The numeric order (`Base` < `OneLevel` < `Subtree`) follows the paper's
/// convention `BASE=0, SINGLE LEVEL=1, SUBTREE=2` and is used directly by
/// the containment algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// Only the base entry itself.
    Base = 0,
    /// Immediate children of the base (not the base itself).
    OneLevel = 1,
    /// The base entry and its whole subtree.
    Subtree = 2,
}

impl Scope {
    /// True if an entry named `dn` falls in the region defined by `base`
    /// and this scope.
    pub fn contains(self, base: &Dn, dn: &Dn) -> bool {
        match self {
            Scope::Base => base == dn,
            Scope::OneLevel => base.is_parent_of(dn),
            Scope::Subtree => base.is_ancestor_or_self_of(dn),
        }
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scope::Base => "base",
            Scope::OneLevel => "one",
            Scope::Subtree => "sub",
        })
    }
}

/// Which attributes a search requests.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum AttrSelection {
    /// `*` — all user attributes.
    #[default]
    All,
    /// An explicit list.
    List(BTreeSet<AttrName>),
}

impl AttrSelection {
    /// Creates an explicit list selection.
    pub fn list<I, A>(attrs: I) -> Self
    where
        I: IntoIterator<Item = A>,
        A: Into<AttrName>,
    {
        AttrSelection::List(attrs.into_iter().map(Into::into).collect())
    }

    /// True when `self` requests a subset of what `other` requests
    /// (condition (ii) of semantic query containment).
    pub fn is_subset_of(&self, other: &AttrSelection) -> bool {
        match (self, other) {
            (_, AttrSelection::All) => true,
            (AttrSelection::All, AttrSelection::List(_)) => false,
            (AttrSelection::List(a), AttrSelection::List(b)) => a.is_subset(b),
        }
    }

    /// Projects an entry onto this selection.
    pub fn project(&self, entry: &Entry) -> Entry {
        match self {
            AttrSelection::All => entry.clone(),
            AttrSelection::List(attrs) => entry.project(attrs.iter()),
        }
    }
}

/// An LDAP search operation (a *query*): base, scope, filter and requested
/// attributes.
///
/// ```
/// use fbdr_ldap::{Filter, Scope, SearchRequest};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let q = SearchRequest::new(
///     "o=xyz".parse()?,
///     Scope::Subtree,
///     Filter::parse("(serialNumber=0456*)")?,
/// );
/// assert_eq!(q.to_string(), "base=\"o=xyz\" scope=sub filter=(serialNumber=0456*) attrs=*");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchRequest {
    base: Dn,
    scope: Scope,
    filter: Filter,
    attrs: AttrSelection,
}

impl SearchRequest {
    /// Creates a search over all user attributes.
    pub fn new(base: Dn, scope: Scope, filter: Filter) -> Self {
        SearchRequest { base, scope, filter, attrs: AttrSelection::All }
    }

    /// Creates a search requesting specific attributes.
    pub fn with_attrs(base: Dn, scope: Scope, filter: Filter, attrs: AttrSelection) -> Self {
        SearchRequest { base, scope, filter, attrs }
    }

    /// A whole-DIT subtree search from the root — the shape produced by
    /// *minimally directory enabled* applications (§3.1.1).
    pub fn from_root(filter: Filter) -> Self {
        SearchRequest::new(Dn::root(), Scope::Subtree, filter)
    }

    /// The search base.
    pub fn base(&self) -> &Dn {
        &self.base
    }

    /// The search scope.
    pub fn scope(&self) -> Scope {
        self.scope
    }

    /// The search filter.
    pub fn filter(&self) -> &Filter {
        &self.filter
    }

    /// The requested attributes.
    pub fn attrs(&self) -> &AttrSelection {
        &self.attrs
    }

    /// True if `entry` is in the base/scope region and satisfies the filter.
    pub fn matches(&self, entry: &Entry) -> bool {
        self.scope.contains(&self.base, entry.dn()) && self.filter.matches(entry)
    }

    /// Estimated wire size of the request in bytes (for the cost model).
    pub fn estimated_size(&self) -> usize {
        self.base.to_string().len() + self.filter.to_string().len() + 16
    }
}

impl fmt::Display for SearchRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "base=\"{}\" scope={} filter={} attrs=", self.base, self.scope, self.filter)?;
        match &self.attrs {
            AttrSelection::All => f.write_str("*"),
            AttrSelection::List(l) => {
                let names: Vec<&str> = l.iter().map(AttrName::as_str).collect();
                f.write_str(&names.join(","))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn person() -> Entry {
        Entry::new(dn("cn=John,ou=research,c=us,o=xyz"))
            .with("objectclass", "person")
            .with("cn", "John")
    }

    #[test]
    fn scope_base() {
        let b = dn("cn=John,ou=research,c=us,o=xyz");
        assert!(Scope::Base.contains(&b, &b));
        assert!(!Scope::Base.contains(&dn("o=xyz"), &b));
    }

    #[test]
    fn scope_one_level() {
        let base = dn("ou=research,c=us,o=xyz");
        assert!(Scope::OneLevel.contains(&base, &dn("cn=John,ou=research,c=us,o=xyz")));
        assert!(!Scope::OneLevel.contains(&base, &base));
        assert!(!Scope::OneLevel.contains(&base, &dn("cn=a,cn=John,ou=research,c=us,o=xyz")));
    }

    #[test]
    fn scope_subtree_includes_base() {
        let base = dn("c=us,o=xyz");
        assert!(Scope::Subtree.contains(&base, &base));
        assert!(Scope::Subtree.contains(&base, &dn("cn=x,ou=y,c=us,o=xyz")));
        assert!(!Scope::Subtree.contains(&base, &dn("c=in,o=xyz")));
    }

    #[test]
    fn scope_ordering_matches_paper() {
        assert!(Scope::Base < Scope::OneLevel);
        assert!(Scope::OneLevel < Scope::Subtree);
    }

    #[test]
    fn attr_selection_subset() {
        let all = AttrSelection::All;
        let cn_mail = AttrSelection::list(["cn", "mail"]);
        let cn = AttrSelection::list(["cn"]);
        assert!(cn.is_subset_of(&cn_mail));
        assert!(cn.is_subset_of(&all));
        assert!(cn_mail.is_subset_of(&all));
        assert!(!cn_mail.is_subset_of(&cn));
        assert!(!all.is_subset_of(&cn));
        assert!(all.is_subset_of(&all));
    }

    #[test]
    fn request_matching() {
        let q = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::parse("(cn=John)").unwrap());
        assert!(q.matches(&person()));
        let q2 = SearchRequest::new(dn("c=in,o=xyz"), Scope::Subtree, Filter::parse("(cn=John)").unwrap());
        assert!(!q2.matches(&person()));
    }

    #[test]
    fn root_based_query_matches_everything_in_dit() {
        let q = SearchRequest::from_root(Filter::parse("(objectclass=*)").unwrap());
        assert!(q.matches(&person()));
        assert!(q.base().is_root());
    }

    #[test]
    fn projection_through_selection() {
        let e = person().with("mail", "j@x.com");
        let sel = AttrSelection::list(["mail"]);
        let p = sel.project(&e);
        assert!(p.has_attr(&"mail".into()));
        assert!(!p.has_attr(&"cn".into()));
    }
}
