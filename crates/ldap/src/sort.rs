//! Server-side sorting of search results (RFC 2891) — the example LDAP
//! control the paper cites in §2.2.
//!
//! A [`SortKey`] names an attribute and a direction; a sort control is an
//! ordered list of keys. Sorting uses the same typed ordering as range
//! predicates: values that parse as integers order numerically, others
//! lexicographically on normalized text; entries missing the attribute
//! sort last (per RFC 2891 treating missing attributes as largest).
//!
//! ```
//! use fbdr_ldap::{sort_entries, Entry, SortKey};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut entries = vec![
//!     Entry::new("cn=b,o=x".parse()?).with("age", "9"),
//!     Entry::new("cn=a,o=x".parse()?).with("age", "30"),
//! ];
//! sort_entries(&mut entries, &[SortKey::ascending("age")]);
//! assert_eq!(entries[0].dn().to_string(), "cn=b,o=x"); // 9 < 30 numerically
//! # Ok(())
//! # }
//! ```

use crate::{AttrName, AttrValue, Entry};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// One key of an RFC 2891 sort control.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortKey {
    attr: AttrName,
    reverse: bool,
}

impl SortKey {
    /// Ascending sort on `attr`.
    pub fn ascending(attr: impl Into<AttrName>) -> Self {
        SortKey { attr: attr.into(), reverse: false }
    }

    /// Descending sort on `attr` (the control's `reverseOrder` flag).
    pub fn descending(attr: impl Into<AttrName>) -> Self {
        SortKey { attr: attr.into(), reverse: true }
    }

    /// The attribute sorted by.
    pub fn attr(&self) -> &AttrName {
        &self.attr
    }

    /// True when the order is reversed.
    pub fn is_descending(&self) -> bool {
        self.reverse
    }

    /// Compares two entries under this key.
    fn compare(&self, a: &Entry, b: &Entry) -> Ordering {
        let ka = sort_value(a, &self.attr);
        let kb = sort_value(b, &self.attr);
        let ord = match (ka, kb) {
            (Some(x), Some(y)) => typed_cmp(x, y),
            // Missing attributes sort as largest (RFC 2891 §2.2).
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => Ordering::Equal,
        };
        if self.reverse {
            ord.reverse()
        } else {
            ord
        }
    }
}

/// The value an entry sorts by for an attribute: its smallest value (the
/// RFC leaves multi-valued choice to the server; smallest is the common
/// behaviour).
fn sort_value<'e>(e: &'e Entry, attr: &AttrName) -> Option<&'e AttrValue> {
    e.values(attr).min_by(|a, b| typed_cmp(a, b))
}

/// The lawful [`AttrValue`] total order: integers (numeric) before
/// non-integers (lexicographic). A mixed textual interleave would be
/// intransitive and make `sort_by` panic on inconsistent comparators.
fn typed_cmp(a: &AttrValue, b: &AttrValue) -> Ordering {
    a.cmp(b)
}

/// Sorts entries by a list of keys (most significant first), with the DN
/// as the final tie-breaker so the order is total and deterministic.
pub fn sort_entries(entries: &mut [Entry], keys: &[SortKey]) {
    entries.sort_by(|a, b| {
        for k in keys {
            match k.compare(a, b) {
                Ordering::Equal => continue,
                other => return other,
            }
        }
        a.dn().cmp(b.dn())
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(cn: &str) -> Entry {
        Entry::new(format!("cn={cn},o=x").parse().unwrap())
    }

    #[test]
    fn numeric_ascending() {
        let mut v = vec![
            e("a").with("serialNumber", "100"),
            e("b").with("serialNumber", "9"),
            e("c").with("serialNumber", "050"),
        ];
        sort_entries(&mut v, &[SortKey::ascending("serialNumber")]);
        let order: Vec<&str> = v.iter().map(|x| x.dn().rdn().unwrap().value().raw()).collect();
        assert_eq!(order, ["b", "c", "a"]); // 9 < 50 < 100
    }

    #[test]
    fn descending_reverses() {
        let mut v = vec![e("a").with("sn", "alpha"), e("b").with("sn", "beta")];
        sort_entries(&mut v, &[SortKey::descending("sn")]);
        assert_eq!(v[0].dn().to_string(), "cn=b,o=x");
    }

    #[test]
    fn missing_attribute_sorts_last() {
        let mut v = vec![e("missing"), e("present").with("mail", "a@b")];
        sort_entries(&mut v, &[SortKey::ascending("mail")]);
        assert_eq!(v[0].dn().to_string(), "cn=present,o=x");
        // Even in descending order, RFC 2891 keeps absents largest —
        // reversal applies to the whole comparison, putting them first.
        sort_entries(&mut v, &[SortKey::descending("mail")]);
        assert_eq!(v[0].dn().to_string(), "cn=missing,o=x");
    }

    #[test]
    fn multi_key_sort() {
        let mut v = vec![
            e("a").with("dept", "7").with("sn", "zeta"),
            e("b").with("dept", "7").with("sn", "alpha"),
            e("c").with("dept", "3").with("sn", "midway"),
        ];
        sort_entries(&mut v, &[SortKey::ascending("dept"), SortKey::ascending("sn")]);
        let order: Vec<&str> = v.iter().map(|x| x.dn().rdn().unwrap().value().raw()).collect();
        assert_eq!(order, ["c", "b", "a"]);
    }

    #[test]
    fn multivalued_sorts_by_smallest() {
        let mut v = vec![
            e("a").with("cn", "zz").with("cn", "bb"),
            e("b").with("cn", "cc"),
        ];
        sort_entries(&mut v, &[SortKey::ascending("cn")]);
        assert_eq!(v[0].dn().to_string(), "cn=a,o=x"); // bb < cc
    }

    #[test]
    fn deterministic_tie_break_on_dn() {
        let mut v = vec![e("z").with("dept", "1"), e("a").with("dept", "1")];
        sort_entries(&mut v, &[SortKey::ascending("dept")]);
        assert_eq!(v[0].dn().to_string(), "cn=a,o=x");
    }

    #[test]
    fn empty_key_list_sorts_by_dn() {
        let mut v = vec![e("b"), e("a")];
        sort_entries(&mut v, &[]);
        assert_eq!(v[0].dn().to_string(), "cn=a,o=x");
    }
}
