//! LDIF (LDAP Data Interchange Format, RFC 2849) content records:
//! serialization and parsing of entries.
//!
//! The subset implemented is content LDIF — `dn:` followed by
//! `attribute: value` lines, records separated by blank lines — with
//! base64 encoding (`::`) for values that LDIF cannot carry in the clear
//! (leading/trailing spaces, leading `:`/`<`, non-ASCII or control
//! characters) and line continuations (a leading space joins to the
//! previous line).
//!
//! ```
//! use fbdr_ldap::{ldif, Entry};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let e = Entry::new("cn=John Doe,o=xyz".parse()?)
//!     .with("objectclass", "inetOrgPerson")
//!     .with("mail", "john@xyz.com");
//! let text = ldif::to_ldif(std::slice::from_ref(&e));
//! let parsed = ldif::parse_ldif(&text)?;
//! assert_eq!(parsed, vec![e]);
//! # Ok(())
//! # }
//! ```

use crate::{Entry, NameParseError};
use std::error::Error;
use std::fmt;

/// Error from LDIF parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdifError {
    line: usize,
    msg: String,
}

impl LdifError {
    fn new(line: usize, msg: impl Into<String>) -> Self {
        LdifError { line, msg: msg.into() }
    }

    /// 1-based line number the error was detected at.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for LdifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LDIF error at line {}: {}", self.line, self.msg)
    }
}

impl Error for LdifError {}

impl From<NameParseError> for LdifError {
    fn from(e: NameParseError) -> Self {
        LdifError { line: 0, msg: e.to_string() }
    }
}

/// Serializes entries as LDIF content records.
pub fn to_ldif(entries: &[Entry]) -> String {
    let mut out = String::new();
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        push_line(&mut out, "dn", &e.dn().to_string());
        for (a, vs) in e.attrs() {
            for v in vs {
                push_line(&mut out, a.as_str(), v.raw());
            }
        }
    }
    out
}

/// Parses LDIF content records into entries.
///
/// # Errors
///
/// Returns [`LdifError`] with the offending line for malformed input:
/// records not starting with `dn:`, lines without a separator, invalid
/// base64, or invalid DNs.
pub fn parse_ldif(text: &str) -> Result<Vec<Entry>, LdifError> {
    // Unfold continuations, remembering original line numbers.
    let mut logical: Vec<(usize, String)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        if let Some(rest) = raw.strip_prefix(' ') {
            match logical.last_mut() {
                Some((_, prev)) if !prev.is_empty() => prev.push_str(rest),
                _ => return Err(LdifError::new(i + 1, "continuation without a previous line")),
            }
        } else {
            logical.push((i + 1, raw.to_owned()));
        }
    }

    let mut entries = Vec::new();
    let mut current: Option<Entry> = None;
    for (lineno, line) in logical {
        if line.is_empty() {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (attr, value) = split_attr_value(&line, lineno)?;
        if attr.eq_ignore_ascii_case("dn") {
            if let Some(e) = current.take() {
                entries.push(e);
            }
            let dn = value
                .parse()
                .map_err(|e: NameParseError| LdifError::new(lineno, e.to_string()))?;
            current = Some(Entry::new(dn));
        } else {
            match &mut current {
                Some(e) => {
                    e.add(attr.as_str(), value.as_str());
                }
                None => {
                    return Err(LdifError::new(lineno, "attribute line before any dn:"));
                }
            }
        }
    }
    if let Some(e) = current.take() {
        entries.push(e);
    }
    Ok(entries)
}

fn split_attr_value(line: &str, lineno: usize) -> Result<(String, String), LdifError> {
    let colon = line
        .find(':')
        .ok_or_else(|| LdifError::new(lineno, format!("missing ':' in {line:?}")))?;
    let attr = line[..colon].trim().to_owned();
    if attr.is_empty() {
        return Err(LdifError::new(lineno, "empty attribute name"));
    }
    let rest = &line[colon + 1..];
    if let Some(b64) = rest.strip_prefix(':') {
        let bytes = base64_decode(b64.trim_start())
            .ok_or_else(|| LdifError::new(lineno, "invalid base64 value"))?;
        let s = String::from_utf8(bytes)
            .map_err(|_| LdifError::new(lineno, "base64 value is not UTF-8"))?;
        Ok((attr, s))
    } else {
        Ok((attr, rest.strip_prefix(' ').unwrap_or(rest).to_owned()))
    }
}

/// True when LDIF requires base64 for this value.
fn needs_base64(v: &str) -> bool {
    v.is_empty()
        || v.starts_with(' ')
        || v.ends_with(' ')
        || v.starts_with(':')
        || v.starts_with('<')
        || v.chars().any(|c| !(' '..='~').contains(&c))
}

fn push_line(out: &mut String, attr: &str, value: &str) {
    let line = if needs_base64(value) {
        format!("{attr}:: {}", base64_encode(value.as_bytes()))
    } else {
        format!("{attr}: {value}")
    };
    // Fold at 76 characters per RFC 2849.
    let bytes = line.as_bytes();
    let mut start = 0;
    let mut first = true;
    while start < bytes.len() {
        let width = if first { 76 } else { 75 };
        let mut end = (start + width).min(bytes.len());
        // Don't split a UTF-8 code point.
        while end < bytes.len() && bytes[end] & 0b1100_0000 == 0b1000_0000 {
            end -= 1;
        }
        if !first {
            out.push(' ');
        }
        out.push_str(&line[start..end]);
        out.push('\n');
        first = false;
        start = end;
    }
}

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [chunk[0], *chunk.get(1).unwrap_or(&0), *chunk.get(2).unwrap_or(&0)];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(B64[(n >> 18) as usize & 63] as char);
        out.push(B64[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { B64[(n >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { B64[n as usize & 63] as char } else { '=' });
    }
    out
}

fn base64_decode(s: &str) -> Option<Vec<u8>> {
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some(u32::from(c - b'A')),
            b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let s: Vec<u8> = s.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
    if !s.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 4 * 3);
    for chunk in s.chunks(4) {
        let pad = chunk.iter().filter(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && (chunk[2] == b'=' && chunk[3] != b'=')) {
            return None;
        }
        let mut n: u32 = 0;
        for (i, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' {
                if i < 2 {
                    return None;
                }
                0
            } else {
                val(c)?
            };
            n = (n << 6) | v;
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn person() -> Entry {
        Entry::new("cn=John Doe,ou=research,c=us,o=xyz".parse().unwrap())
            .with("objectclass", "inetOrgPerson")
            .with("cn", "John Doe")
            .with("cn", "John M Doe")
            .with("mail", "john@us.xyz.com")
            .with("serialNumber", "0456")
    }

    #[test]
    fn round_trip_simple() {
        let entries = vec![person(), Entry::new("o=xyz".parse().unwrap()).with("o", "xyz")];
        let text = to_ldif(&entries);
        let parsed = parse_ldif(&text).unwrap();
        assert_eq!(parsed, entries);
    }

    #[test]
    fn renders_expected_shape() {
        let text = to_ldif(&[person()]);
        assert!(text.starts_with("dn: cn=John Doe,ou=research,c=us,o=xyz\n"));
        assert!(text.contains("mail: john@us.xyz.com\n"));
        assert!(text.contains("serialNumber: 0456\n"));
    }

    #[test]
    fn base64_for_awkward_values() {
        let e = Entry::new("cn=x,o=y".parse().unwrap())
            .with("description", " leading space")
            .with("info", "trailing space ")
            .with("note", ":starts with colon")
            .with("uni", "héllo wörld");
        let text = to_ldif(std::slice::from_ref(&e));
        assert!(text.contains("description:: "), "got:\n{text}");
        assert!(text.contains("uni:: "));
        let parsed = parse_ldif(&text).unwrap();
        assert_eq!(parsed, vec![e]);
    }

    #[test]
    fn long_lines_fold_and_unfold() {
        let long: String = "x".repeat(300);
        let e = Entry::new("cn=a,o=y".parse().unwrap()).with("description", &long);
        let text = to_ldif(std::slice::from_ref(&e));
        assert!(text.lines().all(|l| l.len() <= 76), "a line exceeds 76 chars");
        let parsed = parse_ldif(&text).unwrap();
        assert_eq!(parsed, vec![e]);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\ndn: cn=a,o=y\ncn: a\n\n\n# another\ndn: cn=b,o=y\ncn: b\n";
        let parsed = parse_ldif(text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].dn().to_string(), "cn=b,o=y");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_ldif("dn: cn=a,o=y\nbroken line\n").unwrap_err();
        assert_eq!(e.line(), 2);
        let e = parse_ldif("cn: before dn\n").unwrap_err();
        assert_eq!(e.line(), 1);
        let e = parse_ldif("dn: cn=a,o=y\nx:: !!!not-base64!!!\n").unwrap_err();
        assert_eq!(e.line(), 2);
        let e = parse_ldif(" leading continuation\n").unwrap_err();
        assert_eq!(e.line(), 1);
    }

    #[test]
    fn base64_codec_round_trip() {
        for s in ["", "a", "ab", "abc", "abcd", "héllo wörld", "\u{1F600} emoji"] {
            let enc = base64_encode(s.as_bytes());
            let dec = base64_decode(&enc).unwrap();
            assert_eq!(String::from_utf8(dec).unwrap(), s);
        }
        assert_eq!(base64_encode(b"Man"), "TWFu");
        assert_eq!(base64_encode(b"Ma"), "TWE=");
        assert_eq!(base64_encode(b"M"), "TQ==");
        assert!(base64_decode("TWF").is_none());
        assert!(base64_decode("T!==").is_none());
    }

    #[test]
    fn multivalued_preserved() {
        let text = to_ldif(&[person()]);
        let parsed = parse_ldif(&text).unwrap();
        assert_eq!(parsed[0].values(&"cn".into()).count(), 2);
    }
}
