#![warn(missing_docs)]
//! LDAP data-model substrate for the *filter based directory replication*
//! (fbdr) workspace.
//!
//! This crate implements the parts of the LDAP v3 information, naming and
//! functional models (RFC 2251/2252/2254) that the replication algorithms of
//! the paper depend on:
//!
//! * [`Dn`] / [`Rdn`] — the hierarchical naming model, with the ancestor
//!   (`isSuffix`) and parent relations used by the containment algorithms.
//! * [`AttrName`] / [`AttrValue`] — attribute names (case-insensitive) and
//!   values with LDAP `caseIgnoreMatch`-style normalization plus a typed
//!   integer view used for exact range reasoning.
//! * [`Entry`] — a set of attribute/value pairs named by a DN.
//! * [`Filter`] — the RFC 2254 search-filter AST with a parser
//!   ([`Filter::parse`]) and canonical printer, and direct evaluation
//!   against entries ([`Filter::matches`]).
//! * [`Template`] — LDAP templates (query prototypes, §3.4.2 of the paper):
//!   a filter with every assertion value replaced by `_`.
//! * [`SearchRequest`] / [`Scope`] — the query quadruple *(base, scope,
//!   filter, attributes)*.
//!
//! # Example
//!
//! ```
//! use fbdr_ldap::{Dn, Entry, Filter, Scope, SearchRequest};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dn: Dn = "cn=John Doe,ou=research,c=us,o=xyz".parse()?;
//! let mut entry = Entry::new(dn);
//! entry.add_str("objectclass", "inetOrgPerson");
//! entry.add_str("cn", "John Doe");
//! entry.add_str("serialNumber", "045612");
//!
//! let filter = Filter::parse("(&(objectclass=inetOrgPerson)(serialNumber=0456*))")?;
//! assert!(filter.matches(&entry));
//!
//! let query = SearchRequest::new("o=xyz".parse()?, Scope::Subtree, filter);
//! assert!(query.matches(&entry));
//! # Ok(())
//! # }
//! ```

pub mod ldif;

mod attr;
mod sort;
mod dn;
mod entry;
mod error;
mod filter;
mod search;
mod template;
mod value;

pub use attr::AttrName;
pub use dn::{Dn, Rdn};
pub use entry::Entry;
pub use error::{FilterParseError, NameParseError};
pub use filter::{Comparison, Filter, Predicate, SubstringPattern};
pub use search::{AttrSelection, Scope, SearchRequest};
pub use sort::{sort_entries, SortKey};
pub use template::{SlotKey, Template, TemplateId};
pub use value::AttrValue;
