//! Case-insensitive attribute names.

use serde::de::Deserializer;
use serde::ser::Serializer;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// An LDAP attribute type name (e.g. `cn`, `serialNumber`).
///
/// Attribute names are case-insensitive in LDAP; `AttrName` keeps the
/// original spelling for display but compares, orders and hashes by the
/// ASCII-lowercased form.
///
/// ```
/// use fbdr_ldap::AttrName;
///
/// assert_eq!(AttrName::new("serialNumber"), AttrName::new("SERIALNUMBER"));
/// ```
#[derive(Debug, Clone)]
pub struct AttrName {
    raw: String,
    lower: String,
}

impl Serialize for AttrName {
    /// Serializes as the plain spelling (usable as a map key in JSON).
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_str(&self.raw)
    }
}

impl<'de> Deserialize<'de> for AttrName {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        Ok(AttrName::new(String::deserialize(de)?))
    }
}

impl AttrName {
    /// Creates an attribute name from its spelling.
    pub fn new(raw: impl Into<String>) -> Self {
        let raw = raw.into();
        let lower = raw.to_ascii_lowercase();
        AttrName { raw, lower }
    }

    /// The original spelling.
    pub fn as_str(&self) -> &str {
        &self.raw
    }

    /// The lowercased matching form.
    pub fn lower(&self) -> &str {
        &self.lower
    }
}

impl PartialEq for AttrName {
    fn eq(&self, other: &Self) -> bool {
        self.lower == other.lower
    }
}

impl Eq for AttrName {}

impl Hash for AttrName {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.lower.hash(state);
    }
}

impl PartialOrd for AttrName {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for AttrName {
    fn cmp(&self, other: &Self) -> Ordering {
        self.lower.cmp(&other.lower)
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

impl From<&str> for AttrName {
    fn from(s: &str) -> Self {
        AttrName::new(s)
    }
}

impl From<String> for AttrName {
    fn from(s: String) -> Self {
        AttrName::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn case_insensitive_equality_and_hash() {
        let a = AttrName::new("objectClass");
        let b = AttrName::new("OBJECTCLASS");
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn ordering_ignores_case() {
        assert!(AttrName::new("CN") < AttrName::new("mail"));
    }

    #[test]
    fn display_preserves_spelling() {
        assert_eq!(AttrName::new("serialNumber").to_string(), "serialNumber");
    }
}
