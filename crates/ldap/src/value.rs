//! Attribute values with LDAP-style normalized matching.
//!
//! LDAP attribute comparison for the directory-string syntaxes the paper
//! uses is case-insensitive with insignificant whitespace
//! (`caseIgnoreMatch`). [`AttrValue`] stores the original spelling for
//! display and a normalized form for equality, hashing and ordering.
//!
//! Values that parse as signed 64-bit integers additionally expose a numeric
//! view ([`AttrValue::as_int`]); ordering between two such values is numeric
//! (`integerOrderingMatch`), which the containment crate relies on for exact
//! range satisfiability over discrete domains.

use serde::de::Deserializer;
use serde::ser::Serializer;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// An LDAP attribute assertion/stored value.
///
/// Equality, ordering and hashing use the normalized form: lowercase, outer
/// whitespace trimmed, inner whitespace runs collapsed to one space. Two
/// values that both parse as integers order numerically.
///
/// ```
/// use fbdr_ldap::AttrValue;
///
/// assert_eq!(AttrValue::new("John  Doe"), AttrValue::new(" john doe "));
/// assert!(AttrValue::new("9") < AttrValue::new("10")); // numeric order
/// assert!(AttrValue::new("a9") > AttrValue::new("a10")); // lexicographic
/// ```
#[derive(Debug, Clone)]
pub struct AttrValue {
    raw: String,
    norm: String,
    int: Option<i64>,
}

impl Serialize for AttrValue {
    /// Serializes as the plain spelling; the normalized form and integer
    /// view are derived, not data.
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_str(&self.raw)
    }
}

impl<'de> Deserialize<'de> for AttrValue {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        Ok(AttrValue::new(String::deserialize(de)?))
    }
}

impl AttrValue {
    /// Creates a value from its string spelling.
    pub fn new(raw: impl Into<String>) -> Self {
        let raw = raw.into();
        let norm = normalize(&raw);
        let int = norm.parse::<i64>().ok();
        AttrValue { raw, norm, int }
    }

    /// The original spelling of the value.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// The normalized (matching) form of the value.
    pub fn normalized(&self) -> &str {
        &self.norm
    }

    /// Numeric view if the normalized value is a signed 64-bit integer.
    pub fn as_int(&self) -> Option<i64> {
        self.int
    }

    /// True if both `self` and `other` are integers (and hence compare
    /// numerically).
    pub fn is_numeric_with(&self, other: &AttrValue) -> bool {
        self.int.is_some() && other.int.is_some()
    }

    /// True if the normalized form of `self` starts with the normalized
    /// form of `prefix`. Used for substring (`initial`) assertions.
    pub fn starts_with(&self, prefix: &AttrValue) -> bool {
        self.norm.starts_with(&prefix.norm)
    }
}

/// Normalizes per caseIgnoreMatch: trim, collapse spaces, lowercase.
fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true; // trims leading whitespace
    for c in s.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            for lc in c.to_lowercase() {
                out.push(lc);
            }
            last_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

impl PartialEq for AttrValue {
    fn eq(&self, other: &Self) -> bool {
        self.norm == other.norm
    }
}

impl Eq for AttrValue {}

impl Hash for AttrValue {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.norm.hash(state);
    }
}

impl PartialOrd for AttrValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for AttrValue {
    /// A lawful total order: every integer-valued text sorts before every
    /// non-integer text; integers compare numerically (ties broken on the
    /// normalized text, keeping `Ord` consistent with `Eq` for spellings
    /// like "0456" vs "456"); non-integers compare lexicographically.
    ///
    /// Interleaving the two classes by comparing mixed pairs textually —
    /// the "obvious" rule — is *not transitive* ("1a" < "2" < "03" <
    /// "1a") and would corrupt ordered containers. Range *predicates* do
    /// not use this order; they are typed by their assertion value (see
    /// [`Comparison::matches_value`](crate::Comparison::matches_value)).
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.int, other.int) {
            (Some(a), Some(b)) => a.cmp(&b).then_with(|| self.norm.cmp(&other.norm)),
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => self.norm.cmp(&other.norm),
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::new(s)
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::new(s)
    }
}

impl From<i64> for AttrValue {
    fn from(n: i64) -> Self {
        AttrValue::new(n.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_case_and_space() {
        assert_eq!(AttrValue::new("John  M   Doe"), AttrValue::new("john m doe"));
        assert_eq!(AttrValue::new("  x  "), AttrValue::new("X"));
        assert_ne!(AttrValue::new("johnm doe"), AttrValue::new("john m doe"));
    }

    #[test]
    fn numeric_ordering_when_both_ints() {
        assert!(AttrValue::new("2") < AttrValue::new("10"));
        assert!(AttrValue::new("-5") < AttrValue::new("3"));
        assert_eq!(AttrValue::new("007").as_int(), Some(7));
    }

    #[test]
    fn lexicographic_when_either_not_int() {
        assert!(AttrValue::new("10x") < AttrValue::new("2x"));
        assert!(AttrValue::new("abc") < AttrValue::new("abd"));
    }

    #[test]
    fn ord_consistent_with_eq_for_numeric_ties() {
        let a = AttrValue::new("0456");
        let b = AttrValue::new("456");
        assert_ne!(a, b);
        assert_ne!(a.cmp(&b), Ordering::Equal);
        assert_eq!(a.as_int(), b.as_int());
    }

    #[test]
    fn display_preserves_raw() {
        assert_eq!(AttrValue::new("John Doe").to_string(), "John Doe");
    }

    #[test]
    fn prefix_match_is_normalized() {
        assert!(AttrValue::new("Smithers").starts_with(&AttrValue::new("smith")));
        assert!(!AttrValue::new("Smith").starts_with(&AttrValue::new("smithers")));
    }
}
