//! Property tests for the distributed directory: referral chasing must be
//! *complete* (collect exactly the entries a global view would return) and
//! must terminate on arbitrary partitions of a random tree.

use fbdr_dit::{DitStore, NamingContext};
use fbdr_ldap::{Dn, Entry, Filter, Scope, SearchRequest};
use fbdr_net::{Network, Server};
use proptest::prelude::*;

/// A random two-level DIT under o=xyz: containers `ou=o<i>` with leaves
/// `cn=e<j>`. `cut(i)` decides whether container subtree `i` is delegated
/// to its own server.
#[derive(Debug, Clone)]
struct World {
    containers: Vec<usize>, // leaves per container
    cuts: Vec<bool>,        // delegated?
}

fn world() -> impl Strategy<Value = World> {
    (
        prop::collection::vec(0usize..5, 1..6),
        prop::collection::vec(any::<bool>(), 6),
    )
        .prop_map(|(containers, cuts)| World { containers, cuts })
}

fn dn(s: &str) -> Dn {
    s.parse().expect("valid dn")
}

fn leaf_entry(ci: usize, j: usize) -> Entry {
    Entry::new(dn(&format!("cn=e{ci}x{j},ou=o{ci},o=xyz")))
        .with("objectclass", "person")
        .with("tag", &format!("{}", (ci + j) % 3))
}

/// Builds the partitioned network plus a flat global store for oracle
/// comparison.
fn build(w: &World) -> (Network, DitStore) {
    let mut global = DitStore::new();
    global.add_suffix(dn("o=xyz"));
    global.add(Entry::new(dn("o=xyz"))).expect("add root");

    let mut root_dit = DitStore::new();
    root_dit.add_suffix(dn("o=xyz"));
    root_dit.add(Entry::new(dn("o=xyz"))).expect("add root");
    let mut root_ctx = NamingContext::new(dn("o=xyz"));
    let mut subordinate_servers: Vec<Server> = Vec::new();

    for (ci, &leaves) in w.containers.iter().enumerate() {
        let container = Entry::new(dn(&format!("ou=o{ci},o=xyz"))).with("objectclass", "organizationalUnit");
        global.add(container.clone()).expect("add container");
        let delegated = w.cuts.get(ci).copied().unwrap_or(false);
        if delegated {
            let url = format!("ldap://sub{ci}");
            root_ctx = root_ctx.with_referral(dn(&format!("ou=o{ci},o=xyz")), url.clone());
            let mut sub_dit = DitStore::new();
            sub_dit.add_suffix(dn(&format!("ou=o{ci},o=xyz")));
            sub_dit.add(container).expect("add container");
            for j in 0..leaves {
                let e = leaf_entry(ci, j);
                global.add(e.clone()).expect("add leaf");
                sub_dit.add(e).expect("add leaf");
            }
            subordinate_servers.push(Server::new(
                url,
                sub_dit,
                vec![NamingContext::new(dn(&format!("ou=o{ci},o=xyz")))],
                Some("ldap://root".into()),
            ));
        } else {
            root_dit.add(container).expect("add container");
            for j in 0..leaves {
                let e = leaf_entry(ci, j);
                global.add(e.clone()).expect("add leaf");
                root_dit.add(e).expect("add leaf");
            }
        }
    }
    let mut net = Network::new();
    net.add_server(Server::new("ldap://root", root_dit, vec![root_ctx], None));
    for s in subordinate_servers {
        net.add_server(s);
    }
    (net, global)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The referral-chasing client collects exactly the global answer,
    /// from any starting server.
    #[test]
    fn chased_search_is_complete(w in world(), tag in 0usize..3, start_at_sub in any::<bool>()) {
        let (net, global) = build(&w);
        let req = SearchRequest::new(
            dn("o=xyz"),
            Scope::Subtree,
            Filter::parse(&format!("(tag={tag})")).expect("valid filter"),
        );
        let mut want: Vec<String> = global
            .search_dns(&req)
            .iter()
            .map(|d| d.to_string())
            .collect();
        want.sort();

        let start = if start_at_sub {
            net.urls().find(|u| u.starts_with("ldap://sub")).unwrap_or("ldap://root").to_owned()
        } else {
            "ldap://root".to_owned()
        };
        let mut client = net.client();
        let result = client.search(&start, &req).expect("resolvable topology");
        let mut got: Vec<String> = result.entries.iter().map(|e| e.dn().to_string()).collect();
        got.sort();
        prop_assert_eq!(got, want, "incomplete result from {}", start);
        // Round trips: one per server touched, plus at most one default
        // referral hop for name resolution.
        let delegated = w.cuts.iter().take(w.containers.len()).filter(|&&c| c).count() as u64;
        prop_assert!(result.stats.round_trips <= delegated + 2);
    }

    /// Base and one-level scopes are also complete across partitions.
    #[test]
    fn scoped_searches_complete(w in world()) {
        let (net, global) = build(&w);
        for req in [
            SearchRequest::new(dn("o=xyz"), Scope::OneLevel, Filter::match_all()),
            SearchRequest::new(dn("o=xyz"), Scope::Base, Filter::match_all()),
        ] {
            let mut want: Vec<String> =
                global.search_dns(&req).iter().map(|d| d.to_string()).collect();
            want.sort();
            let mut client = net.client();
            let result = client.search("ldap://root", &req).expect("resolvable");
            let mut got: Vec<String> =
                result.entries.iter().map(|e| e.dn().to_string()).collect();
            got.sort();
            prop_assert_eq!(got, want, "scope {:?}", req.scope());
        }
    }

    /// Entry lookups inside a delegated subtree resolve from anywhere.
    #[test]
    fn base_lookup_in_delegated_subtree(w in world()) {
        let Some(ci) = w.cuts.iter().take(w.containers.len()).position(|&c| c) else {
            return Ok(()); // nothing delegated in this world
        };
        if w.containers[ci] == 0 {
            return Ok(());
        }
        let (net, global) = build(&w);
        let target = dn(&format!("cn=e{ci}x0,ou=o{ci},o=xyz"));
        prop_assume!(global.contains(&target));
        let req = SearchRequest::new(target.clone(), Scope::Base, Filter::match_all());
        let mut client = net.client();
        let result = client.search("ldap://root", &req).expect("resolvable");
        prop_assert_eq!(result.entries.len(), 1);
        prop_assert_eq!(result.entries[0].dn(), &target);
    }
}
