//! The service abstraction: anything that can answer (or refer) searches
//! can be a node in the [`Network`](crate::Network) — a master
//! [`Server`](crate::Server) holding naming contexts, or a partial
//! replica that answers contained queries and refers everything else.

use crate::server::ServerOutcome;
use fbdr_ldap::SearchRequest;

/// A directory node addressable by URL in a [`Network`](crate::Network).
///
/// Implementations must be `Send + Sync` so one network can serve
/// concurrent clients from multiple threads: `handle_search` takes `&self`
/// and may be invoked from any number of threads simultaneously, so a node
/// wanting high read throughput should answer without an exclusive lock
/// (the `FilterReplica`-backed nodes in `fbdr-core` answer from immutable
/// content snapshots for exactly this reason).
pub trait DirectoryService: std::fmt::Debug + Send + Sync {
    /// The node's URL (its identity in the network).
    fn url(&self) -> &str;

    /// Handles one search request; referral chasing is the client's job.
    /// Must be safe to call concurrently with itself and with any
    /// node-specific mutation path the implementation offers.
    fn handle_search(&self, req: &SearchRequest) -> ServerOutcome;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Network, Server};
    use fbdr_dit::{DitStore, NamingContext};
    use fbdr_ldap::{Entry, Filter, Scope};

    /// A minimal custom service: answers nothing, always refers.
    #[derive(Debug)]
    struct AlwaysRefer {
        url: String,
        target: String,
    }

    impl DirectoryService for AlwaysRefer {
        fn url(&self) -> &str {
            &self.url
        }

        fn handle_search(&self, _req: &SearchRequest) -> ServerOutcome {
            ServerOutcome::DefaultReferral(self.target.clone())
        }
    }

    #[test]
    fn custom_services_participate_in_referral_chasing() {
        let mut dit = DitStore::new();
        dit.add_suffix("o=xyz".parse().unwrap());
        dit.add(Entry::new("o=xyz".parse().unwrap()).with("objectclass", "organization"))
            .unwrap();
        let mut net = Network::new();
        net.add_server(Server::new(
            "ldap://master",
            dit,
            vec![NamingContext::new("o=xyz".parse().unwrap())],
            None,
        ));
        net.add_service(Box::new(AlwaysRefer {
            url: "ldap://edge".into(),
            target: "ldap://master".into(),
        }));

        let req = SearchRequest::new(
            "o=xyz".parse().unwrap(),
            Scope::Subtree,
            Filter::match_all(),
        );
        let mut client = net.client();
        let res = client.search("ldap://edge", &req).unwrap();
        assert_eq!(res.entries.len(), 1);
        assert_eq!(res.stats.round_trips, 2); // edge refers, master answers
    }
}
