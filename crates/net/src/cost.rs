//! Network cost model and per-operation statistics.

use serde::{Deserialize, Serialize};

/// Cost parameters for the simulated network.
///
/// Defaults model a WAN client against a remote master (the scenario that
/// motivates partial replication): 50 ms round-trip time.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// Client↔server round-trip time in milliseconds.
    pub rtt_ms: f64,
    /// Fixed per-PDU overhead in bytes (envelope, message id, controls).
    pub pdu_overhead: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { rtt_ms: 50.0, pdu_overhead: 16 }
    }
}

impl CostModel {
    /// A LAN-ish model (1 ms RTT) for replica-local traffic.
    pub fn lan() -> Self {
        CostModel { rtt_ms: 1.0, pdu_overhead: 16 }
    }

    /// Estimated elapsed time for an operation that took `round_trips`
    /// sequential round trips.
    pub fn elapsed_ms(&self, round_trips: u64) -> f64 {
        self.rtt_ms * round_trips as f64
    }
}

/// Accumulated statistics for one or more distributed operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpStats {
    /// Sequential request/response exchanges with any server.
    pub round_trips: u64,
    /// Entry PDUs received.
    pub entries_returned: u64,
    /// Referral / continuation-reference PDUs received.
    pub referrals_received: u64,
    /// Request bytes sent (including per-PDU overhead).
    pub bytes_sent: u64,
    /// Response bytes received (entries + referrals + overhead).
    pub bytes_received: u64,
}

impl OpStats {
    /// Merges another operation's statistics into this one.
    pub fn absorb(&mut self, other: &OpStats) {
        self.round_trips += other.round_trips;
        self.entries_returned += other.entries_returned;
        self.referrals_received += other.referrals_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_scales_with_round_trips() {
        let m = CostModel::default();
        assert_eq!(m.elapsed_ms(4), 200.0);
        assert!(CostModel::lan().elapsed_ms(4) < m.elapsed_ms(1));
    }

    #[test]
    fn absorb_sums_fields() {
        let mut a = OpStats { round_trips: 1, entries_returned: 3, ..OpStats::default() };
        let b = OpStats { round_trips: 2, referrals_received: 1, ..OpStats::default() };
        a.absorb(&b);
        assert_eq!(a.round_trips, 3);
        assert_eq!(a.entries_returned, 3);
        assert_eq!(a.referrals_received, 1);
    }
}
