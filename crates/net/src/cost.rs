//! Network cost model and per-operation statistics.

use serde::{Deserialize, Serialize};

/// Cost parameters for the simulated network.
///
/// Defaults model a WAN client against a remote master (the scenario that
/// motivates partial replication): 50 ms round-trip time.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// Client↔server round-trip time in milliseconds.
    pub rtt_ms: f64,
    /// Fixed per-PDU overhead in bytes (envelope, message id, controls).
    pub pdu_overhead: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { rtt_ms: 50.0, pdu_overhead: 16 }
    }
}

impl CostModel {
    /// A LAN-ish model (1 ms RTT) for replica-local traffic.
    pub fn lan() -> Self {
        CostModel { rtt_ms: 1.0, pdu_overhead: 16 }
    }

    /// Estimated elapsed time for an operation that took `round_trips`
    /// sequential round trips.
    pub fn elapsed_ms(&self, round_trips: u64) -> f64 {
        self.rtt_ms * round_trips as f64
    }
}

/// Accumulated statistics for one or more distributed operations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpStats {
    /// Sequential request/response exchanges with any server.
    pub round_trips: u64,
    /// Entry PDUs received.
    pub entries_returned: u64,
    /// Referral / continuation-reference PDUs received.
    pub referrals_received: u64,
    /// Request bytes sent (including per-PDU overhead).
    pub bytes_sent: u64,
    /// Response bytes received (entries + referrals + overhead).
    pub bytes_received: u64,
}

impl OpStats {
    /// Merges another operation's statistics into this one.
    pub fn absorb(&mut self, other: &OpStats) {
        self.round_trips += other.round_trips;
        self.entries_returned += other.entries_returned;
        self.referrals_received += other.referrals_received;
        self.bytes_sent += other.bytes_sent;
        self.bytes_received += other.bytes_received;
    }

    /// Total bytes on the wire, both directions.
    pub fn bytes_total(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

/// Direction of one hop of a multi-round exchange, seen from the client
/// (replica) side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HopDirection {
    /// Client → server (a request, a digest, a probe).
    LocalToRemote,
    /// Server → client (a response, shipped entries, a summary).
    RemoteToLocal,
}

/// One recorded hop: which round of the exchange it belongs to, its
/// direction, and how many bytes were *state* (entries, the payload being
/// synchronized) versus *metadata* (digests, summaries, cookies — the
/// protocol's own overhead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hop {
    /// 1-based round-trip number the hop belongs to.
    pub round: u64,
    /// Who sent it.
    pub direction: HopDirection,
    /// Payload bytes (entries shipped).
    pub state_bytes: u64,
    /// Protocol-overhead bytes (digests, range summaries, cookies).
    pub metadata_bytes: u64,
}

impl Hop {
    /// Total bytes of this hop.
    pub fn bytes(&self) -> u64 {
        self.state_bytes + self.metadata_bytes
    }
}

/// Per-hop accounting for a multi-round reconciliation-style exchange.
///
/// Protocols register each hop as it happens (`begin_round` once per
/// round trip, then one `register` per direction); the tracker folds the
/// log into an [`OpStats`] and keeps the hop list for per-round analysis
/// — which round shipped the entries, how much of the wire cost was
/// digest overhead.
///
/// ```
/// use fbdr_net::cost::{ExchangeTracker, HopDirection};
///
/// let mut t = ExchangeTracker::new();
/// t.begin_round();
/// t.register(HopDirection::LocalToRemote, 0, 300); // digest up
/// t.register(HopDirection::RemoteToLocal, 4_000, 120); // entries down
/// let stats = t.to_stats();
/// assert_eq!(stats.round_trips, 1);
/// assert_eq!(stats.bytes_sent, 300);
/// assert_eq!(stats.bytes_received, 4_120);
/// assert_eq!(t.metadata_bytes(), 420);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExchangeTracker {
    hops: Vec<Hop>,
    round: u64,
}

impl ExchangeTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        ExchangeTracker::default()
    }

    /// Starts the next round trip; subsequent hops are attributed to it.
    /// Returns the new 1-based round number.
    pub fn begin_round(&mut self) -> u64 {
        self.round += 1;
        self.round
    }

    /// Records one hop of the current round.
    pub fn register(&mut self, direction: HopDirection, state_bytes: u64, metadata_bytes: u64) {
        self.hops.push(Hop {
            round: self.round.max(1),
            direction,
            state_bytes,
            metadata_bytes,
        });
    }

    /// Round trips recorded so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// The recorded hop log, in wire order.
    pub fn hops(&self) -> &[Hop] {
        &self.hops
    }

    /// Protocol-overhead bytes across all hops (digest/summary cost).
    pub fn metadata_bytes(&self) -> u64 {
        self.hops.iter().map(|h| h.metadata_bytes).sum()
    }

    /// Payload bytes across all hops (entries shipped).
    pub fn state_bytes(&self) -> u64 {
        self.hops.iter().map(|h| h.state_bytes).sum()
    }

    /// Folds the hop log into aggregate operation statistics.
    pub fn to_stats(&self) -> OpStats {
        let mut s = OpStats { round_trips: self.round, ..OpStats::default() };
        for h in &self.hops {
            match h.direction {
                HopDirection::LocalToRemote => s.bytes_sent += h.bytes(),
                HopDirection::RemoteToLocal => s.bytes_received += h.bytes(),
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_scales_with_round_trips() {
        let m = CostModel::default();
        assert_eq!(m.elapsed_ms(4), 200.0);
        assert!(CostModel::lan().elapsed_ms(4) < m.elapsed_ms(1));
    }

    #[test]
    fn absorb_sums_fields() {
        let mut a = OpStats { round_trips: 1, entries_returned: 3, ..OpStats::default() };
        let b = OpStats { round_trips: 2, referrals_received: 1, ..OpStats::default() };
        a.absorb(&b);
        assert_eq!(a.round_trips, 3);
        assert_eq!(a.entries_returned, 3);
        assert_eq!(a.referrals_received, 1);
    }

    #[test]
    fn tracker_attributes_hops_to_rounds() {
        let mut t = ExchangeTracker::new();
        t.begin_round();
        t.register(HopDirection::LocalToRemote, 0, 100);
        t.register(HopDirection::RemoteToLocal, 500, 40);
        t.begin_round();
        t.register(HopDirection::LocalToRemote, 0, 64);
        t.register(HopDirection::RemoteToLocal, 200, 16);
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.hops().len(), 4);
        assert_eq!(t.hops()[0].round, 1);
        assert_eq!(t.hops()[3].round, 2);
        assert_eq!(t.metadata_bytes(), 220);
        assert_eq!(t.state_bytes(), 700);
        let s = t.to_stats();
        assert_eq!(s.round_trips, 2);
        assert_eq!(s.bytes_sent, 164);
        assert_eq!(s.bytes_received, 756);
        assert_eq!(s.bytes_total(), 920);
    }

    #[test]
    fn tracker_register_without_round_lands_in_round_one() {
        let mut t = ExchangeTracker::new();
        t.register(HopDirection::LocalToRemote, 10, 0);
        assert_eq!(t.hops()[0].round, 1);
        // `rounds()` still reports what was explicitly begun.
        assert_eq!(t.rounds(), 0);
    }
}
