//! The referral-chasing client.

use crate::cost::OpStats;
use crate::server::ServerOutcome;
use crate::Network;
use fbdr_ldap::{Dn, Entry, Scope, SearchRequest};
use fbdr_obs::event;
use std::collections::{HashSet, VecDeque};
use std::error::Error;
use std::fmt;

/// Error from a distributed operation.
///
/// Every variant is a root cause ([`Error::source`] returns `None`):
/// network-level failures are terminal here, while replica-side sync
/// failures chain through `SyncError` in `fbdr-resync`. Only the *initial*
/// search target can produce these errors — failures at referred servers
/// degrade to partial results (see `SearchResult::unreachable`), never to
/// an `Err`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The named server is not part of the network.
    ///
    /// Invariant: carries the URL exactly as the caller supplied it, and
    /// is only produced for the initial target — an unknown *continuation*
    /// target is recorded in `SearchResult::unreachable` instead.
    UnknownServer(String),
    /// No server holds the target base.
    ///
    /// Invariant: the carried DN is the request base (or a continuation
    /// base derived from it); the network was consulted and genuinely has
    /// no naming context covering it.
    NoSuchObject(Dn),
    /// Referral chasing revisited a `(server, base)` pair — broken
    /// referral topology.
    ///
    /// Invariant: carries the URL at which the cycle closed; the same
    /// request was already dispatched to that server for the same base,
    /// so continuing would loop forever.
    ReferralLoop(String),
    /// The initial target is temporarily unreachable. Transient: retrying
    /// later may succeed. (An unreachable *continuation* target does not
    /// error — the search returns partial results instead.)
    Unavailable(String),
}

impl NetError {
    /// True for errors worth retrying (the server may come back).
    pub fn is_transient(&self) -> bool {
        matches!(self, NetError::Unavailable(_))
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownServer(u) => write!(f, "unknown server: {u}"),
            NetError::NoSuchObject(dn) => write!(f, "no such object: {dn}"),
            NetError::ReferralLoop(u) => write!(f, "referral loop via {u}"),
            NetError::Unavailable(u) => write!(f, "server unavailable: {u}"),
        }
    }
}

impl Error for NetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        // All variants are root causes; nothing to chain to.
        None
    }
}

/// Result of a fully-chased distributed search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// All entries collected across servers, deduplicated by DN.
    pub entries: Vec<Entry>,
    /// Cost accounting for the whole operation.
    pub stats: OpStats,
    /// Referred servers that could not be reached; when non-empty the
    /// result is partial (entries held by those servers are missing).
    pub unreachable: Vec<String>,
}

impl SearchResult {
    /// True when every referred server answered (no partial coverage).
    pub fn is_complete(&self) -> bool {
        self.unreachable.is_empty()
    }
}

/// A client that performs distributed operations against a [`Network`],
/// chasing default referrals and continuation references (Figure 2).
#[derive(Debug)]
pub struct Client<'a> {
    net: &'a Network,
    total: OpStats,
}

impl<'a> Client<'a> {
    pub(crate) fn new(net: &'a Network) -> Self {
        Client { net, total: OpStats::default() }
    }

    /// Statistics accumulated over the client's lifetime.
    pub fn lifetime_stats(&self) -> OpStats {
        self.total
    }

    /// Performs a search starting at `server_url`, chasing referrals until
    /// the result is complete.
    ///
    /// Availability errors are handled asymmetrically: if the *initial*
    /// target is unknown or unavailable the search fails (the client got
    /// nothing), but if a *referred* server fails mid-chase the partial
    /// result is returned with the failed server recorded in
    /// [`SearchResult::unreachable`] — some answer beats no answer.
    ///
    /// # Errors
    ///
    /// * [`NetError::UnknownServer`] if the initial target is unknown.
    /// * [`NetError::Unavailable`] if the initial target is down.
    /// * [`NetError::NoSuchObject`] if no server holds the base.
    /// * [`NetError::ReferralLoop`] on cyclic referrals.
    pub fn search(&mut self, server_url: &str, req: &SearchRequest) -> Result<SearchResult, NetError> {
        let mut stats = OpStats::default();
        let mut entries: Vec<Entry> = Vec::new();
        let mut unreachable: Vec<String> = Vec::new();
        let mut seen_dns: HashSet<String> = HashSet::new();
        let mut visited: HashSet<(String, String)> = HashSet::new();
        let mut queue: VecDeque<(String, SearchRequest, bool)> = VecDeque::new();
        queue.push_back((server_url.to_owned(), req.clone(), true));
        let overhead = self.net.cost_model().pdu_overhead as u64;

        while let Some((url, request, initial)) = queue.pop_front() {
            let key = (url.clone(), request.base().to_string());
            if !visited.insert(key) {
                return Err(NetError::ReferralLoop(url));
            }
            let server = match self.net.server(&url) {
                Some(s) => s,
                None if initial => return Err(NetError::UnknownServer(url)),
                None => {
                    unreachable.push(url);
                    continue;
                }
            };
            stats.round_trips += 1;
            stats.bytes_sent += request.estimated_size() as u64 + overhead;
            match server.handle_search(&request) {
                ServerOutcome::DefaultReferral(next) => {
                    stats.referrals_received += 1;
                    stats.bytes_received += next.len() as u64 + overhead;
                    event!(
                        self.net.obs(),
                        "net",
                        "referral",
                        kind = "default",
                        from = url.as_str(),
                        to = next.as_str(),
                    );
                    queue.push_back((next, request, false));
                }
                ServerOutcome::NoSuchObject => {
                    return Err(NetError::NoSuchObject(request.base().clone()));
                }
                ServerOutcome::Unavailable => {
                    if initial {
                        return Err(NetError::Unavailable(url));
                    }
                    unreachable.push(url);
                }
                ServerOutcome::Results { entries: found, continuations } => {
                    for e in found {
                        stats.entries_returned += 1;
                        stats.bytes_received += e.estimated_size() as u64 + overhead;
                        if seen_dns.insert(e.dn().to_string()) {
                            entries.push(e);
                        }
                    }
                    for (base, next_url) in continuations {
                        stats.referrals_received += 1;
                        stats.bytes_received += (base.to_string().len() + next_url.len()) as u64 + overhead;
                        event!(
                            self.net.obs(),
                            "net",
                            "referral",
                            kind = "continuation",
                            from = url.as_str(),
                            to = next_url.as_str(),
                            base = base.to_string(),
                        );
                        let next_req = continuation_request(&request, base);
                        queue.push_back((next_url, next_req, false));
                    }
                }
            }
        }
        self.total.absorb(&stats);
        let obs = self.net.obs();
        if obs.is_active() {
            let reg = obs.registry();
            reg.counter("fbdr_net_searches_total").inc();
            reg.counter("fbdr_net_round_trips_total").add(stats.round_trips);
            reg.counter("fbdr_net_referrals_total").add(stats.referrals_received);
            if !unreachable.is_empty() {
                reg.counter("fbdr_net_partial_results_total").inc();
            }
        }
        Ok(SearchResult { entries, stats, unreachable })
    }
}

/// Builds the modified request a continuation reference requires: the base
/// moves to the subordinate context's root, and the scope adapts (a
/// one-level search continuing into a child referral becomes a base
/// search of that child).
fn continuation_request(orig: &SearchRequest, new_base: Dn) -> SearchRequest {
    let scope = match orig.scope() {
        Scope::Subtree => Scope::Subtree,
        Scope::OneLevel => Scope::Base,
        Scope::Base => Scope::Base,
    };
    SearchRequest::with_attrs(new_base, scope, orig.filter().clone(), orig.attrs().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Server;
    use fbdr_dit::{DitStore, NamingContext};
    use fbdr_ldap::Filter;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    /// The three-server o=xyz deployment of Figure 2.
    fn figure2_network() -> Network {
        let mut net = Network::new();

        // hostA: suffix o=xyz with referrals to hostB and hostC.
        let mut dit_a = DitStore::new();
        dit_a.add_suffix(dn("o=xyz"));
        dit_a.add(Entry::new(dn("o=xyz")).with("objectclass", "organization")).unwrap();
        dit_a.add(Entry::new(dn("c=us,o=xyz")).with("objectclass", "country")).unwrap();
        dit_a
            .add(Entry::new(dn("cn=Fred Jones,c=us,o=xyz")).with("objectclass", "person"))
            .unwrap();
        let ctx_a = NamingContext::new(dn("o=xyz"))
            .with_referral(dn("ou=research,c=us,o=xyz"), "ldap://hostB")
            .with_referral(dn("c=in,o=xyz"), "ldap://hostC");
        net.add_server(Server::new("ldap://hostA", dit_a, vec![ctx_a], None));

        // hostB: the research subtree.
        let mut dit_b = DitStore::new();
        dit_b.add_suffix(dn("ou=research,c=us,o=xyz"));
        dit_b
            .add(Entry::new(dn("ou=research,c=us,o=xyz")).with("objectclass", "organizationalUnit"))
            .unwrap();
        for name in ["John Doe", "Carl Miller", "John Smith"] {
            dit_b
                .add(
                    Entry::new(dn(&format!("cn={name},ou=research,c=us,o=xyz")))
                        .with("objectclass", "person")
                        .with("cn", name),
                )
                .unwrap();
        }
        let ctx_b = NamingContext::new(dn("ou=research,c=us,o=xyz"));
        net.add_server(Server::new(
            "ldap://hostB",
            dit_b,
            vec![ctx_b],
            Some("ldap://hostA".into()),
        ));

        // hostC: the India subtree.
        let mut dit_c = DitStore::new();
        dit_c.add_suffix(dn("c=in,o=xyz"));
        dit_c.add(Entry::new(dn("c=in,o=xyz")).with("objectclass", "country")).unwrap();
        dit_c
            .add(Entry::new(dn("cn=Asha Rao,c=in,o=xyz")).with("objectclass", "person"))
            .unwrap();
        let ctx_c = NamingContext::new(dn("c=in,o=xyz"));
        net.add_server(Server::new(
            "ldap://hostC",
            dit_c,
            vec![ctx_c],
            Some("ldap://hostA".into()),
        ));
        net
    }

    #[test]
    fn figure2_walkthrough_costs_four_round_trips() {
        let net = figure2_network();
        let mut client = net.client();
        // Client sends the subtree search for o=xyz to hostB, as in the
        // paper's walkthrough.
        let req = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::match_all());
        let result = client.search("ldap://hostB", &req).unwrap();
        // hostB → default referral; hostA → 3 entries + 2 continuations;
        // hostB and hostC → remaining entries. Four round trips total.
        assert_eq!(result.stats.round_trips, 4);
        assert_eq!(result.stats.referrals_received, 3); // 1 default + 2 continuations
        assert_eq!(result.entries.len(), 3 + 4 + 2);
    }

    #[test]
    fn direct_hit_is_one_round_trip() {
        let net = figure2_network();
        let mut client = net.client();
        let req = SearchRequest::new(dn("ou=research,c=us,o=xyz"), Scope::Subtree, Filter::match_all());
        let result = client.search("ldap://hostB", &req).unwrap();
        assert_eq!(result.stats.round_trips, 1);
        assert_eq!(result.entries.len(), 4);
        assert_eq!(result.stats.referrals_received, 0);
    }

    #[test]
    fn filtered_distributed_search() {
        let net = figure2_network();
        let mut client = net.client();
        let req = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::parse("(cn=John*)").unwrap());
        let result = client.search("ldap://hostA", &req).unwrap();
        let mut names: Vec<String> = result
            .entries
            .iter()
            .map(|e| e.dn().rdn().unwrap().value().raw().to_owned())
            .collect();
        names.sort();
        assert_eq!(names, ["John Doe", "John Smith"]);
        // hostA + 2 continuations = 3 round trips.
        assert_eq!(result.stats.round_trips, 3);
    }

    #[test]
    fn unknown_base_errors() {
        let net = figure2_network();
        let mut client = net.client();
        let req = SearchRequest::new(dn("o=absent"), Scope::Subtree, Filter::match_all());
        match client.search("ldap://hostB", &req) {
            Err(NetError::NoSuchObject(_)) => {}
            other => panic!("expected NoSuchObject, got {other:?}"),
        }
    }

    #[test]
    fn unknown_server_errors() {
        let net = figure2_network();
        let mut client = net.client();
        let req = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::match_all());
        assert!(matches!(
            client.search("ldap://nowhere", &req),
            Err(NetError::UnknownServer(_))
        ));
    }

    #[test]
    fn lifetime_stats_accumulate() {
        let net = figure2_network();
        let mut client = net.client();
        let req = SearchRequest::new(dn("c=in,o=xyz"), Scope::Subtree, Filter::match_all());
        client.search("ldap://hostC", &req).unwrap();
        client.search("ldap://hostC", &req).unwrap();
        assert_eq!(client.lifetime_stats().round_trips, 2);
        assert_eq!(client.lifetime_stats().entries_returned, 4);
    }

    /// A node that is down: every request times out.
    #[derive(Debug)]
    struct Down(String);

    impl crate::DirectoryService for Down {
        fn url(&self) -> &str {
            &self.0
        }

        fn handle_search(&self, _req: &SearchRequest) -> ServerOutcome {
            ServerOutcome::Unavailable
        }
    }

    #[test]
    fn downed_continuation_target_yields_partial_results() {
        let mut net = figure2_network();
        net.remove_server("ldap://hostC");
        net.add_service(Box::new(Down("ldap://hostC".into())));
        let mut client = net.client();
        let req = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::match_all());
        let res = client.search("ldap://hostA", &req).unwrap();
        // hostA and hostB answered; hostC's two entries are missing.
        assert_eq!(res.entries.len(), 3 + 4);
        assert!(!res.is_complete());
        assert_eq!(res.unreachable, ["ldap://hostC"]);
    }

    #[test]
    fn downed_initial_target_errors() {
        let mut net = figure2_network();
        net.remove_server("ldap://hostA");
        net.add_service(Box::new(Down("ldap://hostA".into())));
        let mut client = net.client();
        let req = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::match_all());
        let err = client.search("ldap://hostA", &req).unwrap_err();
        assert!(matches!(err, NetError::Unavailable(_)));
        assert!(err.is_transient());
        assert!(!NetError::UnknownServer("x".into()).is_transient());
    }

    #[test]
    fn unknown_continuation_server_yields_partial_results() {
        let mut net = figure2_network();
        net.remove_server("ldap://hostB");
        let mut client = net.client();
        let req = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::match_all());
        let res = client.search("ldap://hostA", &req).unwrap();
        assert_eq!(res.entries.len(), 3 + 2);
        assert_eq!(res.unreachable, ["ldap://hostB"]);
    }

    #[test]
    fn referral_loop_detected() {
        // Two servers pointing default referrals at each other, neither
        // holding the base.
        let mut net = Network::new();
        let mk = |url: &str, other: &str| {
            let mut dit = DitStore::new();
            dit.add_suffix(dn("o=q"));
            Server::new(url, dit, vec![NamingContext::new(dn("o=q"))], Some(other.into()))
        };
        net.add_server(mk("ldap://x", "ldap://y"));
        net.add_server(mk("ldap://y", "ldap://x"));
        let mut client = net.client();
        let req = SearchRequest::new(dn("o=zz"), Scope::Subtree, Filter::match_all());
        assert!(matches!(client.search("ldap://x", &req), Err(NetError::ReferralLoop(_))));
    }
}
