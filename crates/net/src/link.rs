//! Deterministic per-link latency profiles for simulated deployments.
//!
//! A [`LinkProfile`] describes one network path (master → replica) as a
//! base one-way latency plus a bounded jitter. The jitter for any given
//! message is a pure function of `(link seed, message sequence)`, so a
//! fleet simulation that replays the same event order reproduces the
//! same delivery times bit for bit — no RNG state threads through the
//! simulator.

use serde::{Deserialize, Serialize};

/// One network path's latency model: `base_ms` plus a uniform jitter in
/// `0..jitter_ms` (inclusive of 0, exclusive of `jitter_ms`; zero jitter
/// means a constant-latency link).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Fixed one-way latency floor, in milliseconds.
    pub base_ms: u64,
    /// Upper bound (exclusive) of the per-message jitter, in
    /// milliseconds. 0 disables jitter.
    pub jitter_ms: u64,
}

impl LinkProfile {
    /// A zero-latency link (deliveries land on the send tick).
    pub fn instant() -> Self {
        LinkProfile { base_ms: 0, jitter_ms: 0 }
    }

    /// A constant-latency link with no jitter.
    pub fn constant(base_ms: u64) -> Self {
        LinkProfile { base_ms, jitter_ms: 0 }
    }

    /// A jittered link: `base_ms` plus up to `jitter_ms` extra.
    pub fn jittered(base_ms: u64, jitter_ms: u64) -> Self {
        LinkProfile { base_ms, jitter_ms }
    }

    /// The one-way latency of message `n` on the link identified by
    /// `seed`. Deterministic: the same `(seed, n)` always yields the
    /// same latency.
    pub fn latency_ms(&self, seed: u64, n: u64) -> u64 {
        if self.jitter_ms == 0 {
            return self.base_ms;
        }
        self.base_ms + splitmix64(seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % self.jitter_ms
    }
}

impl Default for LinkProfile {
    fn default() -> Self {
        LinkProfile::instant()
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mix usable as a stateless
/// hash for seeded, replayable decisions.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_link_has_no_jitter() {
        let l = LinkProfile::constant(5);
        assert_eq!(l.latency_ms(1, 0), 5);
        assert_eq!(l.latency_ms(2, 99), 5);
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let l = LinkProfile::jittered(10, 8);
        for n in 0..100 {
            let a = l.latency_ms(42, n);
            assert!((10..18).contains(&a));
            assert_eq!(a, l.latency_ms(42, n), "same (seed, n) must replay");
        }
        // Different seeds decorrelate the jitter streams.
        let distinct =
            (0..100).filter(|&n| l.latency_ms(1, n) != l.latency_ms(2, n)).count();
        assert!(distinct > 50, "only {distinct} of 100 differed");
    }
}
