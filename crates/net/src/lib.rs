#![warn(missing_docs)]
//! Simulated distributed LDAP directory (§2.3, Figure 2 of the paper).
//!
//! A [`Network`] holds a set of [`Server`]s, each serving one or more
//! naming contexts out of its own `DitStore`. A [`Client`] submits
//! search requests to a server and transparently chases the two kinds of
//! referral LDAP produces:
//!
//! * **default referrals** during distributed name resolution, when the
//!   contacted server does not hold the target base, and
//! * **continuation references** for subordinate naming contexts held by
//!   other servers.
//!
//! Every request/response exchange counts as one round trip and its PDUs
//! are costed in bytes ([`OpStats`]) — this is the machinery behind the
//! paper's observation that referral-based operation completion is
//! extremely slow (four round trips for the Figure 2 walkthrough).
//!
//! # Example
//!
//! ```
//! use fbdr_net::{Network, Server};
//! use fbdr_dit::{DitStore, NamingContext};
//! use fbdr_ldap::{Entry, Filter, Scope, SearchRequest};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dit = DitStore::new();
//! dit.add_suffix("o=xyz".parse()?);
//! dit.add(Entry::new("o=xyz".parse()?).with("objectclass", "organization"))?;
//! let ctx = NamingContext::new("o=xyz".parse()?);
//! let mut net = Network::new();
//! net.add_server(Server::new("ldap://hostA", dit, vec![ctx], None));
//!
//! let mut client = net.client();
//! let req = SearchRequest::new("o=xyz".parse()?, Scope::Subtree, Filter::match_all());
//! let result = client.search("ldap://hostA", &req)?;
//! assert_eq!(result.entries.len(), 1);
//! assert_eq!(result.stats.round_trips, 1);
//! # Ok(())
//! # }
//! ```

mod client;
pub mod cost;
pub mod link;
mod server;
mod service;
pub mod shard;

pub use client::{Client, NetError, SearchResult};
pub use cost::{CostModel, ExchangeTracker, Hop, HopDirection, OpStats};
pub use link::LinkProfile;
pub use server::{Server, ServerOutcome};
pub use service::DirectoryService;
pub use shard::{ShardId, ShardMap};

use fbdr_obs::Obs;
use std::collections::HashMap;

/// A set of directory nodes jointly serving a namespace: master servers
/// holding naming contexts and, optionally, partial replicas or other
/// custom [`DirectoryService`]s.
#[derive(Debug, Default)]
pub struct Network {
    servers: HashMap<String, Box<dyn DirectoryService>>,
    cost: CostModel,
    /// Observability handle shared with clients created via
    /// [`Network::client`]; [`Obs::off`] unless attached.
    obs: Obs,
}

impl Network {
    /// Creates an empty network with the default cost model.
    pub fn new() -> Self {
        Network::default()
    }

    /// Creates an empty network with an explicit cost model.
    pub fn with_cost(cost: CostModel) -> Self {
        Network { cost, ..Network::default() }
    }

    /// Attaches observability: clients created via [`Network::client`]
    /// count searches, round trips and referrals into the registry and
    /// emit `net.referral` trace events while chasing.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The observability handle clients of this network record through.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Adds (or replaces) a master server, keyed by its URL.
    pub fn add_server(&mut self, server: Server) {
        self.add_service(Box::new(server));
    }

    /// Adds (or replaces) any directory service, keyed by its URL.
    pub fn add_service(&mut self, service: Box<dyn DirectoryService>) {
        self.servers.insert(service.url().to_owned(), service);
    }

    /// Removes a node by URL (e.g. to swap in a fault-injecting wrapper).
    /// Returns the removed service, if any.
    pub fn remove_server(&mut self, url: &str) -> Option<Box<dyn DirectoryService>> {
        self.servers.remove(url)
    }

    /// Looks up a node by URL.
    pub fn server(&self, url: &str) -> Option<&dyn DirectoryService> {
        self.servers.get(url).map(Box::as_ref)
    }

    /// Server URLs in the network.
    pub fn urls(&self) -> impl Iterator<Item = &str> {
        self.servers.keys().map(String::as_str)
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Creates a referral-chasing client for this network.
    pub fn client(&self) -> Client<'_> {
        Client::new(self)
    }
}
