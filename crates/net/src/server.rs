//! A directory server holding one or more naming contexts.

use fbdr_dit::{DitStore, NamingContext};
use fbdr_ldap::{Dn, Entry, Scope, SearchRequest};

/// How a server responds to a search request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerOutcome {
    /// The server does not hold the target base: the client should retry
    /// at this URL (a *default referral*, used for distributed name
    /// resolution).
    DefaultReferral(String),
    /// The server does not hold the target base and has nowhere to point.
    NoSuchObject,
    /// The server is temporarily unreachable (crash, partition, overload).
    /// Unlike [`ServerOutcome::NoSuchObject`] this says nothing about the
    /// name space — retrying later may succeed.
    Unavailable,
    /// Entries from the locally held part of the region, plus continuation
    /// references `(new base, server url)` for subordinate naming contexts
    /// that intersect the search region.
    Results {
        /// Locally matching entries.
        entries: Vec<Entry>,
        /// Continuation references the client must chase.
        continuations: Vec<(Dn, String)>,
    },
}

/// One LDAP server: a DIT store plus the naming contexts it masters and an
/// optional default referral pointing at a superior server.
///
/// Implements [`DirectoryService`](crate::DirectoryService), so it can be
/// added to a [`Network`](crate::Network) alongside replicas and other
/// custom nodes.
#[derive(Debug)]
pub struct Server {
    url: String,
    dit: DitStore,
    contexts: Vec<NamingContext>,
    default_referral: Option<String>,
}

impl Server {
    /// Creates a server.
    pub fn new(
        url: impl Into<String>,
        dit: DitStore,
        contexts: Vec<NamingContext>,
        default_referral: Option<String>,
    ) -> Self {
        Server { url: url.into(), dit, contexts, default_referral }
    }

    /// The server's URL (its identity in the network).
    pub fn url(&self) -> &str {
        &self.url
    }

    /// The naming contexts this server masters.
    pub fn contexts(&self) -> &[NamingContext] {
        &self.contexts
    }

    /// The server's DIT store.
    pub fn dit(&self) -> &DitStore {
        &self.dit
    }

    /// Mutable access to the DIT (to apply updates in tests/workloads).
    pub fn dit_mut(&mut self) -> &mut DitStore {
        &mut self.dit
    }

    /// Handles one search request, without any referral chasing — that is
    /// the client's job.
    pub fn handle_search(&self, req: &SearchRequest) -> ServerOutcome {
        // Name resolution: find the context holding the base object. A
        // *topmost* server (one with no superior to refer to) additionally
        // answers searches based above its suffixes — the root-based
        // queries minimally directory-enabled applications issue (§3.1.1)
        // — over every context inside the search region. Subordinate
        // servers instead punt such searches to their superior.
        let holder = self.contexts.iter().find(|c| c.holds(req.base()));
        let relevant: Vec<&NamingContext> = match holder {
            Some(c) => vec![c],
            None if self.default_referral.is_none() => self
                .contexts
                .iter()
                .filter(|c| req.base().is_ancestor_of(c.suffix()))
                .collect(),
            None => Vec::new(),
        };
        if relevant.is_empty() {
            // If the base sits inside a referral subtree of one of our
            // contexts, point at the subordinate server directly.
            for c in &self.contexts {
                for (rdn, url) in c.referrals() {
                    if rdn.is_ancestor_or_self_of(req.base()) {
                        return ServerOutcome::DefaultReferral(url.clone());
                    }
                }
            }
            return match &self.default_referral {
                Some(url) => ServerOutcome::DefaultReferral(url.clone()),
                None => ServerOutcome::NoSuchObject,
            };
        }
        let entries = self.dit.search(req);
        let mut continuations = Vec::new();
        for ctx in relevant {
            match req.scope() {
                Scope::Base => {}
                Scope::OneLevel => continuations.extend(
                    ctx.referrals_under(req.base())
                        .filter(|(dn, _)| req.base().is_parent_of(dn))
                        .cloned(),
                ),
                Scope::Subtree => {
                    continuations.extend(ctx.referrals_under(req.base()).cloned())
                }
            }
        }
        ServerOutcome::Results { entries, continuations }
    }
}

impl crate::DirectoryService for Server {
    fn url(&self) -> &str {
        Server::url(self)
    }

    fn handle_search(&self, req: &SearchRequest) -> ServerOutcome {
        Server::handle_search(self, req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbdr_ldap::Filter;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn host_a() -> Server {
        let mut dit = DitStore::new();
        dit.add_suffix(dn("o=xyz"));
        dit.add(Entry::new(dn("o=xyz")).with("objectclass", "organization")).unwrap();
        dit.add(Entry::new(dn("c=us,o=xyz")).with("objectclass", "country")).unwrap();
        dit.add(Entry::new(dn("cn=Fred Jones,c=us,o=xyz")).with("objectclass", "person")).unwrap();
        let ctx = NamingContext::new(dn("o=xyz"))
            .with_referral(dn("ou=research,c=us,o=xyz"), "ldap://hostB")
            .with_referral(dn("c=in,o=xyz"), "ldap://hostC");
        Server::new("ldap://hostA", dit, vec![ctx], None)
    }

    #[test]
    fn holds_base_returns_local_entries_and_continuations() {
        let a = host_a();
        let req = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::match_all());
        match a.handle_search(&req) {
            ServerOutcome::Results { entries, continuations } => {
                assert_eq!(entries.len(), 3);
                assert_eq!(continuations.len(), 2);
            }
            other => panic!("expected results, got {other:?}"),
        }
    }

    #[test]
    fn missing_base_gives_default_referral() {
        let mut dit = DitStore::new();
        dit.add_suffix(dn("ou=research,c=us,o=xyz"));
        let ctx = NamingContext::new(dn("ou=research,c=us,o=xyz"));
        let b = Server::new("ldap://hostB", dit, vec![ctx], Some("ldap://hostA".into()));
        let req = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::match_all());
        assert_eq!(
            b.handle_search(&req),
            ServerOutcome::DefaultReferral("ldap://hostA".into())
        );
    }

    #[test]
    fn base_inside_referral_subtree_points_at_subordinate() {
        let a = host_a();
        let req = SearchRequest::new(
            dn("cn=x,ou=research,c=us,o=xyz"),
            Scope::Base,
            Filter::match_all(),
        );
        assert_eq!(
            a.handle_search(&req),
            ServerOutcome::DefaultReferral("ldap://hostB".into())
        );
    }

    #[test]
    fn no_default_referral_is_no_such_object() {
        let a = host_a();
        let req = SearchRequest::new(dn("o=abc"), Scope::Subtree, Filter::match_all());
        assert_eq!(a.handle_search(&req), ServerOutcome::NoSuchObject);
    }

    #[test]
    fn base_scope_has_no_continuations() {
        let a = host_a();
        let req = SearchRequest::new(dn("o=xyz"), Scope::Base, Filter::match_all());
        match a.handle_search(&req) {
            ServerOutcome::Results { entries, continuations } => {
                assert_eq!(entries.len(), 1);
                assert!(continuations.is_empty());
            }
            other => panic!("expected results, got {other:?}"),
        }
    }
}
