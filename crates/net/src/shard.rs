//! Shard map: partitioning the namespace across masters by naming
//! context.
//!
//! The DIT's root-first `TreeKey` ordering makes every subtree a
//! contiguous range, so a partition by naming context is just a list of
//! subtree suffixes, each owned by one shard. A [`ShardMap`] maps a DN to
//! its owning [`ShardId`] (deepest containing suffix wins, a default
//! shard catches everything else) and splits a search region across the
//! shards it overlaps — the routing core behind the sharded master in
//! `fbdr-resync`.

use fbdr_dit::NamingContext;
use fbdr_ldap::{Dn, Scope, SearchRequest};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one master shard within a sharded deployment.
///
/// A plain index newtype: shard ids are dense (`0..shard_count`), so they
/// double as indices into per-shard state vectors.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ShardId(u16);

impl ShardId {
    /// The first shard — the whole deployment, when unsharded.
    pub const ZERO: ShardId = ShardId(0);

    /// Creates a shard id.
    pub fn new(id: u16) -> Self {
        ShardId(id)
    }

    /// The shard id as an index into per-shard vectors.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard{}", self.0)
    }
}

/// Maps DNs to owning shards via subtree suffixes.
///
/// Each entry assigns the subtree rooted at a suffix DN to a shard; the
/// deepest containing suffix wins, so shards can nest (a sub-suffix can
/// be carved out of an enclosing shard's territory). DNs outside every
/// suffix belong to the default shard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    /// `(suffix, shard)` assignments. Order is irrelevant for lookup
    /// (deepest match wins); kept in insertion order.
    entries: Vec<(Dn, ShardId)>,
    default: ShardId,
    shard_count: u16,
}

impl ShardMap {
    /// The trivial map: one shard owning the whole namespace.
    pub fn single() -> Self {
        ShardMap { entries: Vec::new(), default: ShardId::ZERO, shard_count: 1 }
    }

    /// An empty map with the given default shard.
    pub fn new(default: ShardId) -> Self {
        ShardMap { entries: Vec::new(), default, shard_count: default.0 + 1 }
    }

    /// Assigns the subtree rooted at `suffix` to `shard`.
    pub fn assign(&mut self, suffix: Dn, shard: ShardId) {
        self.shard_count = self.shard_count.max(shard.0 + 1);
        self.entries.push((suffix, shard));
    }

    /// Builder-style [`ShardMap::assign`].
    pub fn with_subtree(mut self, suffix: Dn, shard: ShardId) -> Self {
        self.assign(suffix, shard);
        self
    }

    /// Suffix `i` goes to shard `i`; everything else to shard 0.
    ///
    /// # Panics
    ///
    /// Panics when `suffixes` is empty or longer than `u16::MAX` shards.
    pub fn by_suffixes(suffixes: Vec<Dn>) -> Self {
        assert!(!suffixes.is_empty(), "a shard map needs at least one suffix");
        let mut map = ShardMap::new(ShardId::ZERO);
        for (i, s) in suffixes.into_iter().enumerate() {
            let id = u16::try_from(i).expect("at most u16::MAX shards");
            map.assign(s, ShardId(id));
        }
        map
    }

    /// Context `i`'s suffix goes to shard `i` (referrals are delimiting
    /// metadata, not shard boundaries — a referral target that should be
    /// its own shard gets its own context).
    pub fn by_contexts(contexts: &[NamingContext]) -> Self {
        ShardMap::by_suffixes(contexts.iter().map(|c| c.suffix().clone()).collect())
    }

    /// Number of shards the map addresses (dense: `0..shard_count`).
    pub fn shard_count(&self) -> usize {
        usize::from(self.shard_count)
    }

    /// The shard owning DNs outside every assigned suffix.
    pub fn default_shard(&self) -> ShardId {
        self.default
    }

    /// The `(suffix, shard)` assignments.
    pub fn entries(&self) -> &[(Dn, ShardId)] {
        &self.entries
    }

    /// All shard ids, ascending.
    pub fn shards(&self) -> impl Iterator<Item = ShardId> {
        (0..self.shard_count).map(ShardId)
    }

    /// The shard owning `dn`: the deepest assigned suffix containing it,
    /// or the default shard.
    pub fn shard_of(&self, dn: &Dn) -> ShardId {
        self.entries
            .iter()
            .filter(|(s, _)| s.is_ancestor_or_self_of(dn))
            .max_by_key(|(s, _)| s.depth())
            .map_or(self.default, |(_, id)| *id)
    }

    /// Shards whose territory can intersect the region `(base, scope)`:
    /// the owner of the base plus, for scopes reaching below it, the
    /// owners of every assigned suffix inside the region.
    pub fn overlapping(&self, base: &Dn, scope: Scope) -> Vec<ShardId> {
        let mut out = vec![self.shard_of(base)];
        match scope {
            Scope::Base => {}
            Scope::OneLevel => {
                out.extend(
                    self.entries
                        .iter()
                        .filter(|(s, _)| base.is_parent_of(s))
                        .map(|(_, id)| *id),
                );
            }
            Scope::Subtree => {
                out.extend(
                    self.entries
                        .iter()
                        .filter(|(s, _)| base.is_ancestor_of(s))
                        .map(|(_, id)| *id),
                );
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Splits a search request across the shards it overlaps: one
    /// sub-request per shard, ascending by shard id.
    ///
    /// The owner of the base keeps the request verbatim. A shard reached
    /// only through suffixes *below* the base gets its base clamped down
    /// to the deepest DN covering all of that shard's in-region suffixes
    /// — a shard only ever stores its own slice, so a clamped base that
    /// still over-covers (several suffixes under one ancestor) is
    /// harmless: the shard's evaluation cannot see entries it does not
    /// hold.
    pub fn split(&self, request: &SearchRequest) -> Vec<(ShardId, SearchRequest)> {
        let base = request.base();
        let scope = request.scope();
        let base_owner = self.shard_of(base);
        self.overlapping(base, scope)
            .into_iter()
            .map(|shard| {
                if shard == base_owner {
                    return (shard, request.clone());
                }
                let in_region: Vec<&Dn> = self
                    .entries
                    .iter()
                    .filter(|(s, id)| *id == shard && scope.contains(base, s) && base != s)
                    .map(|(s, _)| s)
                    .collect();
                let clamped = common_ancestor(&in_region).unwrap_or_else(|| base.clone());
                let sub_scope = match scope {
                    // The region's only reachable point of a child suffix
                    // is the suffix entry itself.
                    Scope::OneLevel if in_region.len() == 1 => Scope::Base,
                    s => s,
                };
                (
                    shard,
                    SearchRequest::with_attrs(
                        clamped,
                        sub_scope,
                        request.filter().clone(),
                        request.attrs().clone(),
                    ),
                )
            })
            .collect()
    }
}

/// The deepest DN that is an ancestor-or-self of every input (root-first
/// longest common prefix of the RDN sequences). `None` for an empty set.
fn common_ancestor(dns: &[&Dn]) -> Option<Dn> {
    let first = dns.first()?;
    let mut prefix: Vec<_> = first.rdns().iter().rev().cloned().collect();
    for dn in &dns[1..] {
        let mut len = 0;
        for (a, b) in prefix.iter().zip(dn.rdns().iter().rev()) {
            if a != b {
                break;
            }
            len += 1;
        }
        prefix.truncate(len);
    }
    prefix.reverse();
    Some(Dn::from_rdns(prefix))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbdr_ldap::Filter;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    /// Countries g0/g1 on shards 0/1, everything else (o=xyz skeleton,
    /// divisions, locations) on shard 0 by default.
    fn map() -> ShardMap {
        ShardMap::by_suffixes(vec![dn("c=g0,o=xyz"), dn("c=g1,o=xyz")])
    }

    #[test]
    fn deepest_suffix_wins() {
        let m = ShardMap::new(ShardId::ZERO)
            .with_subtree(dn("c=us,o=xyz"), ShardId::new(1))
            .with_subtree(dn("ou=research,c=us,o=xyz"), ShardId::new(2));
        assert_eq!(m.shard_of(&dn("cn=a,c=us,o=xyz")), ShardId::new(1));
        assert_eq!(m.shard_of(&dn("cn=a,ou=research,c=us,o=xyz")), ShardId::new(2));
        assert_eq!(m.shard_of(&dn("o=xyz")), ShardId::ZERO);
        assert_eq!(m.shard_count(), 3);
    }

    #[test]
    fn overlap_by_scope() {
        let m = map();
        // Root subtree reaches every shard.
        assert_eq!(
            m.overlapping(&Dn::root(), Scope::Subtree),
            vec![ShardId::new(0), ShardId::new(1)]
        );
        // A base inside one country stays on its shard.
        assert_eq!(m.overlapping(&dn("cn=a,c=g1,o=xyz"), Scope::Subtree), vec![ShardId::new(1)]);
        // One level below o=xyz touches the country *entries* themselves.
        assert_eq!(
            m.overlapping(&dn("o=xyz"), Scope::OneLevel),
            vec![ShardId::new(0), ShardId::new(1)]
        );
        // Base scope never leaves the owner.
        assert_eq!(m.overlapping(&dn("c=g1,o=xyz"), Scope::Base), vec![ShardId::new(1)]);
    }

    #[test]
    fn split_clamps_foreign_bases() {
        let m = map();
        let req = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::match_all());
        let parts = m.split(&req);
        assert_eq!(parts.len(), 2);
        // Shard 0 owns the base: request verbatim.
        assert_eq!(parts[0].0, ShardId::new(0));
        assert_eq!(&parts[0].1, &req);
        // Shard 1 is reached through its suffix: base clamped down.
        assert_eq!(parts[1].0, ShardId::new(1));
        assert_eq!(parts[1].1.base(), &dn("c=g1,o=xyz"));
        assert_eq!(parts[1].1.scope(), Scope::Subtree);
    }

    #[test]
    fn split_one_level_foreign_suffix_becomes_base_scope() {
        let m = map();
        let req = SearchRequest::new(dn("o=xyz"), Scope::OneLevel, Filter::match_all());
        let parts = m.split(&req);
        assert_eq!(parts[1].0, ShardId::new(1));
        assert_eq!(parts[1].1.base(), &dn("c=g1,o=xyz"));
        assert_eq!(parts[1].1.scope(), Scope::Base);
    }

    #[test]
    fn split_merges_multiple_suffixes_by_common_ancestor() {
        let m = ShardMap::new(ShardId::ZERO)
            .with_subtree(dn("c=a,o=xyz"), ShardId::new(1))
            .with_subtree(dn("c=b,o=xyz"), ShardId::new(1));
        let req = SearchRequest::new(Dn::root(), Scope::Subtree, Filter::match_all());
        let parts = m.split(&req);
        assert_eq!(parts.len(), 2);
        // Both of shard 1's suffixes sit under o=xyz; the clamped base is
        // their common ancestor (over-covering is fine — shard 1 only
        // holds its own slice).
        assert_eq!(parts[1].1.base(), &dn("o=xyz"));
    }

    #[test]
    fn by_contexts_uses_suffixes() {
        let m = ShardMap::by_contexts(&[
            NamingContext::new(dn("c=us,o=xyz")),
            NamingContext::new(dn("c=in,o=xyz")),
        ]);
        assert_eq!(m.shard_of(&dn("cn=x,c=in,o=xyz")), ShardId::new(1));
        assert_eq!(m.shard_count(), 2);
    }

    #[test]
    fn single_map_routes_everything_to_shard_zero() {
        let m = ShardMap::single();
        assert_eq!(m.shard_count(), 1);
        assert_eq!(m.shard_of(&dn("cn=anything,o=anywhere")), ShardId::ZERO);
        let req = SearchRequest::from_root(Filter::match_all());
        assert_eq!(m.split(&req), vec![(ShardId::ZERO, req)]);
    }
}
