//! Sharded masters: the directory partitioned across several
//! [`SyncMaster`]s by naming context, behind one facade.
//!
//! A [`ShardedMaster`] owns one `SyncMaster` per shard of a
//! [`ShardMap`]; updates route to the shard owning the target DN, so
//! each shard maintains its own `RoutingIndex`, replay buffers and
//! reconcile stash over just its slice of the DIT. Because the shard
//! map partitions by subtree suffix and each shard's store holds only
//! its own slice, a search region that spans shards is answered by
//! evaluating per-shard sub-requests and concatenating — the union is
//! exactly the unsharded answer.
//!
//! On the replica side a [`ShardCoordinator`] drives one ReSync session
//! per shard a filter overlaps: it splits the filter's base/scope with
//! [`ShardMap::split`], merges the per-shard cookies into a
//! [`CompositeCookie`], and runs the retry/reconcile/reinstall ladder
//! *independently per shard* — a slow or partitioned shard degrades to
//! stale content for its slice while the other shards keep serving
//! fresh updates.

use crate::driver::{Clock, DriverStats, RetryConfig, SyncDriver, SyncTransport, SystemClock};
use crate::master::{GcConfig, GcReport, MasterFootprint, NotifyFlush, NotifyPolicy};
use crate::protocol::{
    Cookie, NotifyBatch, ReSyncControl, SyncAction, SyncError, SyncResponse, SyncTraffic,
};
use crate::reconcile::{
    RangeRequest, RangeResponse, ReconcileConfig, ReconcileItem, ReconcileRequest,
    ReconcileResponse,
};
use crate::SyncMaster;
use crossbeam::channel::Receiver;
use fbdr_dit::{ChangeRecord, DitError, UpdateOp};
use fbdr_ldap::{Dn, Entry, SearchRequest};
use fbdr_net::{ShardId, ShardMap};
use fbdr_obs::Obs;
use serde::{Deserialize, Serialize};

// ----------------------------------------------------------------------
// Composite cookie
// ----------------------------------------------------------------------

/// The resumption state of one filter across a sharded master: one
/// [`Cookie`] per shard holding a live session.
///
/// Parts are kept sorted by shard id, and (de)serialization goes through
/// the sorted form, so the wire encoding is byte-stable no matter in
/// which order shards completed their exchanges — two composite cookies
/// with the same sessions always serialize identically.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompositeCookie {
    parts: Vec<(ShardId, Cookie)>,
}

impl Serialize for CompositeCookie {
    fn serialize<S: serde::Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        // `parts` is sorted by shard id by construction, so this is the
        // canonical byte-stable form.
        ser.collect_seq(self.parts.iter())
    }
}

impl<'de> Deserialize<'de> for CompositeCookie {
    fn deserialize<D: serde::Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        // Normalize on the way in, so even a hand-reordered encoding
        // round-trips to the canonical form.
        Ok(CompositeCookie::from(Vec::<(ShardId, Cookie)>::deserialize(de)?))
    }
}

impl CompositeCookie {
    /// An empty composite (no live sessions).
    pub fn new() -> Self {
        CompositeCookie::default()
    }

    /// The cookie for `shard`, if a session is live there.
    pub fn get(&self, shard: ShardId) -> Option<Cookie> {
        self.parts
            .binary_search_by_key(&shard, |(s, _)| *s)
            .ok()
            .map(|i| self.parts[i].1)
    }

    /// Sets (or replaces) the cookie for `shard`.
    pub fn insert(&mut self, shard: ShardId, cookie: Cookie) {
        match self.parts.binary_search_by_key(&shard, |(s, _)| *s) {
            Ok(i) => self.parts[i].1 = cookie,
            Err(i) => self.parts.insert(i, (shard, cookie)),
        }
    }

    /// Drops the cookie for `shard` (the session ended or died).
    pub fn remove(&mut self, shard: ShardId) -> Option<Cookie> {
        self.parts
            .binary_search_by_key(&shard, |(s, _)| *s)
            .ok()
            .map(|i| self.parts.remove(i).1)
    }

    /// Shard/cookie pairs, ascending by shard id.
    pub fn iter(&self) -> impl Iterator<Item = (ShardId, Cookie)> + '_ {
        self.parts.iter().copied()
    }

    /// Number of live per-shard sessions.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when no shard holds a session.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl From<Vec<(ShardId, Cookie)>> for CompositeCookie {
    fn from(mut parts: Vec<(ShardId, Cookie)>) -> Self {
        parts.sort_by_key(|(s, _)| *s);
        parts.dedup_by_key(|(s, _)| *s);
        CompositeCookie { parts }
    }
}

impl From<CompositeCookie> for Vec<(ShardId, Cookie)> {
    fn from(c: CompositeCookie) -> Self {
        c.parts
    }
}

// ----------------------------------------------------------------------
// Sharded master
// ----------------------------------------------------------------------

/// Several [`SyncMaster`]s jointly serving one namespace, partitioned by
/// a [`ShardMap`].
///
/// Updates route to the shard owning the target DN
/// ([`UpdateOp::target`]); searches and session establishment split by
/// base/scope. As a [`SyncTransport`] the facade is fully
/// shard-addressable through the `_at` legs; the plain legs serve
/// requests that stay within one shard (they route by the request
/// base's owner), while the cookie-only plain legs (`take_receiver`,
/// `abandon`, `reconcile_ranges`) are inert — a bare cookie does not
/// identify a shard, and per-shard session ids collide across shards,
/// so only the `_at` forms can act safely.
#[derive(Debug, Serialize, Deserialize)]
pub struct ShardedMaster {
    map: ShardMap,
    shards: Vec<SyncMaster>,
}

impl ShardedMaster {
    /// Creates a sharded master with one empty [`SyncMaster`] per shard
    /// of `map`. Populate each shard's slice via
    /// [`ShardedMaster::shard_mut`].
    pub fn new(map: ShardMap) -> Self {
        let shards = (0..map.shard_count()).map(|_| SyncMaster::new()).collect();
        ShardedMaster { map, shards }
    }

    /// Wraps pre-built masters, one per shard of `map` (shard `i` ↔
    /// `masters[i]`).
    ///
    /// # Panics
    ///
    /// Panics when the count does not match the map.
    pub fn from_masters(map: ShardMap, masters: Vec<SyncMaster>) -> Self {
        assert_eq!(masters.len(), map.shard_count(), "one master per shard");
        ShardedMaster { map, shards: masters }
    }

    /// The shard map in force.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Read access to one shard's master.
    pub fn shard(&self, shard: ShardId) -> &SyncMaster {
        &self.shards[shard.index()]
    }

    /// Mutable access to one shard's master (e.g. to load its DIT slice).
    pub fn shard_mut(&mut self, shard: ShardId) -> &mut SyncMaster {
        &mut self.shards[shard.index()]
    }

    /// Applies one update at the shard owning its target DN.
    ///
    /// # Errors
    ///
    /// Propagates [`DitError`] from the owning shard's store.
    pub fn apply(&mut self, op: UpdateOp) -> Result<ChangeRecord, DitError> {
        let shard = self.map.shard_of(op.target());
        self.shards[shard.index()].apply(op)
    }

    /// Applies a batch: ops are partitioned by owning shard (preserving
    /// per-shard order) and each shard applies its part as one batch.
    /// Records come back in the original op order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`DitError`]; earlier shards' batches stay
    /// applied (same per-op semantics as [`SyncMaster::apply_batch`]).
    pub fn apply_batch(
        &mut self,
        ops: impl IntoIterator<Item = UpdateOp>,
    ) -> Result<Vec<ChangeRecord>, DitError> {
        let ops: Vec<UpdateOp> = ops.into_iter().collect();
        let mut buckets: Vec<(Vec<usize>, Vec<UpdateOp>)> =
            (0..self.shards.len()).map(|_| (Vec::new(), Vec::new())).collect();
        for (i, op) in ops.into_iter().enumerate() {
            let shard = self.map.shard_of(op.target());
            buckets[shard.index()].0.push(i);
            buckets[shard.index()].1.push(op);
        }
        let mut out: Vec<Option<ChangeRecord>> = Vec::new();
        out.resize_with(buckets.iter().map(|(idx, _)| idx.len()).sum(), || None);
        for (shard, (indices, part)) in buckets.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            let records = self.shards[shard].apply_batch(part)?;
            for (i, r) in indices.into_iter().zip(records) {
                out[i] = Some(r);
            }
        }
        Ok(out.into_iter().map(|r| r.expect("every op was routed")).collect())
    }

    /// Answers a search by evaluating the per-shard splits and
    /// concatenating; results come back in hierarchical DN order.
    ///
    /// Each shard's answer is restricted to the entries the map assigns
    /// to it: shards hold disjoint *owned* slices, but glue entries (the
    /// suffix skeleton above a shard's subtrees) are materialized on
    /// every shard, and an over-covering clamped sub-request would
    /// otherwise return those copies once per shard.
    pub fn search(&self, request: &SearchRequest) -> Vec<Entry> {
        let mut out = Vec::new();
        for (shard, sub) in self.map.split(request) {
            out.extend(
                self.shards[shard.index()]
                    .dit()
                    .search(&sub)
                    .into_iter()
                    .filter(|e| self.map.shard_of(e.dn()) == shard),
            );
        }
        out.sort_by(|a, b| a.dn().cmp_hierarchical(b.dn()));
        out
    }

    /// Total updates applied across all shards.
    pub fn ops_applied(&self) -> u64 {
        self.shards.iter().map(SyncMaster::ops_applied).sum()
    }

    /// Total live sessions across all shards.
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(SyncMaster::session_count).sum()
    }

    /// Drops every shard's live persist channels (e.g. a network
    /// disconnect hitting the whole deployment). Returns the number of
    /// channels dropped across all shards; sessions stay pollable.
    pub fn drop_persist_channels(&mut self) -> usize {
        self.shards.iter_mut().map(SyncMaster::drop_persist_channels).sum()
    }

    /// Sets the persist-mode notification policy on every shard.
    pub fn set_notify_policy(&mut self, policy: NotifyPolicy) {
        for shard in &mut self.shards {
            shard.set_notify_policy(policy);
        }
    }

    /// Attaches one observability handle to every shard: counters and
    /// histograms from all shards aggregate into the same registry.
    pub fn set_obs(&mut self, obs: Obs) {
        for shard in &mut self.shards {
            shard.set_obs(obs.clone());
        }
    }

    /// Advances every shard's notification clock to `now_ms` (monotonic).
    pub fn advance_to(&mut self, now_ms: u64) {
        for shard in &mut self.shards {
            shard.advance_to(now_ms);
        }
    }

    /// Flushes due coalesced notifications on every shard (see
    /// [`SyncMaster::flush_notifications`]). Returns one record per
    /// wakeup, tagged with the shard it fired on, in shard order.
    pub fn flush_notifications(&mut self, force: bool) -> Vec<(ShardId, NotifyFlush)> {
        let mut out = Vec::new();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let id = ShardId::new(i as u16);
            out.extend(shard.flush_notifications(force).into_iter().map(|f| (id, f)));
        }
        out
    }

    /// Total persist-mode wakeups sent across all shards.
    pub fn notify_wakeups(&self) -> u64 {
        self.shards.iter().map(SyncMaster::notify_wakeups).sum()
    }

    /// Total raw updates carried by those wakeups across all shards.
    pub fn notify_updates(&self) -> u64 {
        self.shards.iter().map(SyncMaster::notify_updates).sum()
    }

    /// Total notification-queue overflows (channel teardowns) across all
    /// shards.
    pub fn notify_overflows(&self) -> u64 {
        self.shards.iter().map(SyncMaster::notify_overflows).sum()
    }

    /// Sets every shard's garbage-collector knobs (see [`GcConfig`]).
    pub fn set_gc_config(&mut self, gc: GcConfig) {
        for shard in &mut self.shards {
            shard.set_gc_config(gc);
        }
    }

    /// Bounds every shard's replay buffer (see
    /// [`SyncMaster::set_replay_expiry_ops`]).
    pub fn set_replay_expiry_ops(&mut self, ops: u64) {
        for shard in &mut self.shards {
            shard.set_replay_expiry_ops(ops);
        }
    }

    /// Runs one causal-stability collection pass on every shard (see
    /// [`SyncMaster::collect_garbage`]) and returns the summed report.
    pub fn collect_garbage(&mut self) -> GcReport {
        let mut report = GcReport::default();
        for shard in &mut self.shards {
            report.merge(shard.collect_garbage());
        }
        report
    }

    /// The fleet's stability watermark: the minimum of every shard's (the
    /// slowest acknowledger anywhere pins it). `None` when no shard has
    /// sessions.
    pub fn stability_watermark(&self) -> Option<u64> {
        self.shards.iter().filter_map(SyncMaster::stability_watermark).min()
    }

    /// The worst per-shard stability lag (each shard's op counter runs
    /// independently, so lags are comparable per shard, not summed).
    pub fn stability_lag(&self) -> u64 {
        self.shards.iter().map(SyncMaster::stability_lag).max().unwrap_or(0)
    }

    /// Summed deterministic byte accounting across all shards (see
    /// [`SyncMaster::memory_footprint`]).
    pub fn memory_footprint(&self) -> MasterFootprint {
        let mut f = MasterFootprint::default();
        for shard in &self.shards {
            f.merge(shard.memory_footprint());
        }
        f
    }
}

impl SyncTransport for ShardedMaster {
    fn resync(
        &mut self,
        request: &SearchRequest,
        ctl: ReSyncControl,
    ) -> Result<SyncResponse, SyncError> {
        let shard = self.map.shard_of(request.base());
        self.shards[shard.index()].resync(request, ctl)
    }

    fn take_receiver(&mut self, _cookie: Cookie) -> Option<Receiver<NotifyBatch>> {
        // A bare cookie does not identify a shard; see the type docs.
        None
    }

    fn abandon(&mut self, _cookie: Cookie) {
        // Inert: session ids collide across shards, so acting on a bare
        // cookie could kill an unrelated shard's session.
    }

    fn reconcile(
        &mut self,
        request: &SearchRequest,
        req: ReconcileRequest,
    ) -> Result<ReconcileResponse, SyncError> {
        let shard = self.map.shard_of(request.base());
        self.shards[shard.index()].reconcile(request, req)
    }

    fn reconcile_ranges(
        &mut self,
        _cookie: Cookie,
        _req: &RangeRequest,
    ) -> Result<RangeResponse, SyncError> {
        Err(SyncError::ReconcileFailed(
            "a bare cookie does not identify a shard; use reconcile_ranges_at".into(),
        ))
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn resync_at(
        &mut self,
        shard: ShardId,
        request: &SearchRequest,
        ctl: ReSyncControl,
    ) -> Result<SyncResponse, SyncError> {
        self.shards[shard.index()].resync(request, ctl)
    }

    fn take_receiver_at(&mut self, shard: ShardId, cookie: Cookie) -> Option<Receiver<NotifyBatch>> {
        self.shards[shard.index()].take_receiver(cookie)
    }

    fn abandon_at(&mut self, shard: ShardId, cookie: Cookie) {
        self.shards[shard.index()].abandon(cookie);
    }

    fn reconcile_at(
        &mut self,
        shard: ShardId,
        request: &SearchRequest,
        req: ReconcileRequest,
    ) -> Result<ReconcileResponse, SyncError> {
        self.shards[shard.index()].reconcile(request, req)
    }

    fn reconcile_ranges_at(
        &mut self,
        shard: ShardId,
        cookie: Cookie,
        req: &RangeRequest,
    ) -> Result<RangeResponse, SyncError> {
        self.shards[shard.index()].reconcile_ranges(cookie, req)
    }
}

// ----------------------------------------------------------------------
// Replica-side coordinator
// ----------------------------------------------------------------------

/// The replica's view of one filter's held content, sliced by shard —
/// what the coordinator needs to reconcile or reinstall a single shard
/// without touching the others.
pub trait ShardContent {
    /// Reconciliation items (item hash + replica-local id) for the held
    /// entries owned by `shard`.
    fn items(&self, shard: ShardId) -> Vec<ReconcileItem>;

    /// Resolves a normalized DN key to the replica-local id of a held
    /// item on `shard` (as used to build [`ShardContent::items`]).
    fn resolve(&self, shard: ShardId, key: &str) -> Option<u32>;

    /// The DN of the held item `id` on `shard`.
    fn dn_of(&self, shard: ShardId, id: u32) -> Option<Dn>;

    /// DNs of all held entries owned by `shard` (deleted wholesale
    /// before a reinstall replays the shard's content).
    fn held_dns(&self, shard: ShardId) -> Vec<Dn>;
}

/// How one shard's exchange ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardStatus {
    /// Incremental update delivered on the existing session.
    Updated,
    /// Session was re-established by a reconciliation exchange.
    Reconciled,
    /// Session was re-established by a full content reinstall.
    Reinstalled,
    /// Transient failure; the shard's slice is served stale until the
    /// next cycle (its cookie, if any, is kept for resumption).
    Stale,
    /// Hard failure; the shard's slice is stale and its session state
    /// untrusted.
    Failed(SyncError),
}

/// The outcome of one shard's sync exchange: the actions to apply to
/// this shard's slice (already including reinstall-preceding deletes),
/// plus status and traffic.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// Which shard.
    pub shard: ShardId,
    /// Actions for the replica to apply, in order.
    pub actions: Vec<SyncAction>,
    /// Status of the exchange.
    pub status: ShardStatus,
    /// Traffic cost of the exchange(s) for this shard.
    pub traffic: SyncTraffic,
}

impl ShardOutcome {
    /// True when the shard delivered fresh content this cycle.
    pub fn is_fresh(&self) -> bool {
        matches!(
            self.status,
            ShardStatus::Updated | ShardStatus::Reconciled | ShardStatus::Reinstalled
        )
    }
}

/// Drives one filter's per-shard ReSync sessions against a sharded
/// transport, each shard independently: retries, the
/// reconcile-vs-reinstall ladder, and serve-stale degradation are all
/// per shard, so one slow or partitioned shard cannot stall the rest.
///
/// Holds one [`SyncDriver`] per shard — per-shard retry state, jitter
/// streams and robustness counters.
#[derive(Debug)]
pub struct ShardCoordinator<C: Clock = SystemClock> {
    map: ShardMap,
    drivers: Vec<SyncDriver<C>>,
}

impl ShardCoordinator<SystemClock> {
    /// A coordinator on wall-clock time with default retry/reconcile
    /// policies.
    pub fn new(map: ShardMap) -> Self {
        ShardCoordinator::with_config(map, RetryConfig::default(), ReconcileConfig::default())
    }

    /// A coordinator with explicit retry and reconcile policies (applied
    /// to every shard's driver; per-shard jitter seeds are decorrelated).
    pub fn with_config(map: ShardMap, retry: RetryConfig, reconcile: ReconcileConfig) -> Self {
        let drivers = (0..map.shard_count())
            .map(|i| {
                let seed = retry.jitter_seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F);
                SyncDriver::new(RetryConfig { jitter_seed: seed, ..retry })
                    .with_reconcile(reconcile)
            })
            .collect();
        ShardCoordinator { map, drivers }
    }
}

impl<C: Clock> ShardCoordinator<C> {
    /// A coordinator over explicit per-shard drivers (e.g. on simulated
    /// clocks in tests).
    ///
    /// # Panics
    ///
    /// Panics when the driver count does not match the map.
    pub fn with_drivers(map: ShardMap, drivers: Vec<SyncDriver<C>>) -> Self {
        assert_eq!(drivers.len(), map.shard_count(), "one driver per shard");
        ShardCoordinator { map, drivers }
    }

    /// The shard map in force.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// One shard's driver.
    pub fn driver(&self, shard: ShardId) -> &SyncDriver<C> {
        &self.drivers[shard.index()]
    }

    /// Robustness counters aggregated across every shard's driver.
    pub fn stats(&self) -> DriverStats {
        let mut out = DriverStats::default();
        for d in &self.drivers {
            out.absorb(&d.stats());
        }
        out
    }

    /// Establishes one session per shard the filter overlaps and returns
    /// the initial content actions, the composite cookie, and the load
    /// traffic. All-or-nothing: on any failure the sessions already
    /// established are abandoned and the error propagates.
    ///
    /// # Errors
    ///
    /// The first [`SyncError`] any shard's exchange produced (after that
    /// shard's retry budget).
    pub fn install(
        &mut self,
        transport: &mut dyn SyncTransport,
        request: &SearchRequest,
    ) -> Result<(Vec<SyncAction>, CompositeCookie, SyncTraffic), SyncError> {
        let mut actions = Vec::new();
        let mut cookie = CompositeCookie::new();
        let mut traffic = SyncTraffic::default();
        for (shard, sub) in self.map.split(request) {
            let r = self.drivers[shard.index()].resync_at(
                transport,
                shard,
                &sub,
                ReSyncControl::poll(None),
            );
            match r {
                Ok(resp) => {
                    traffic.absorb(&resp.traffic());
                    actions.extend(resp.actions);
                    if let Some(c) = resp.cookie {
                        cookie.insert(shard, c);
                    }
                }
                Err(e) => {
                    for (s, c) in cookie.iter() {
                        transport.abandon_at(s, c);
                    }
                    return Err(e);
                }
            }
        }
        Ok((actions, cookie, traffic))
    }

    /// Runs one sync cycle for the filter: every overlapped shard gets an
    /// incremental poll on its session, and failures walk the per-shard
    /// recovery ladder (retry → reconcile within the divergence budget →
    /// reinstall → serve stale). `cookie` is updated in place with each
    /// shard's new session state; the outcomes carry the actions to
    /// apply.
    ///
    /// Never fails as a whole: per-shard hard failures come back as
    /// [`ShardStatus::Failed`] while the other shards' outcomes stand.
    pub fn sync_filter(
        &mut self,
        transport: &mut dyn SyncTransport,
        request: &SearchRequest,
        cookie: &mut CompositeCookie,
        content: &dyn ShardContent,
    ) -> Vec<ShardOutcome> {
        self.map
            .split(request)
            .into_iter()
            .map(|(shard, sub)| {
                let out = self.sync_shard(transport, shard, &sub, cookie.get(shard), content);
                match &out.status {
                    ShardStatus::Stale => {} // keep the old cookie for resumption
                    ShardStatus::Failed(_) => {
                        cookie.remove(shard);
                    }
                    _ => match out.cookie {
                        Some(c) => cookie.insert(shard, c),
                        None => {
                            cookie.remove(shard);
                        }
                    },
                }
                ShardOutcome {
                    shard,
                    actions: out.actions,
                    status: out.status,
                    traffic: out.traffic,
                }
            })
            .collect()
    }

    /// One shard's exchange plus its recovery ladder; mirrors the
    /// unsharded ladder in `FilterReplica::sync_with`, scoped to the
    /// shard's slice.
    fn sync_shard(
        &mut self,
        transport: &mut dyn SyncTransport,
        shard: ShardId,
        sub: &SearchRequest,
        prior: Option<Cookie>,
        content: &dyn ShardContent,
    ) -> ShardExchange {
        let driver = &mut self.drivers[shard.index()];
        match driver.resync_at(transport, shard, sub, ReSyncControl::poll(prior)) {
            Ok(resp) => ShardExchange {
                traffic: resp.traffic(),
                actions: resp.actions,
                cookie: resp.cookie,
                status: ShardStatus::Updated,
            },
            Err(e) if e.is_transient() => ShardExchange::stale(),
            Err(e) if e.needs_reinstall() => {
                // The session is dead. Abandon leaked session state, then
                // reconcile when the estimated divergence is within
                // budget, otherwise reinstall from scratch.
                if matches!(
                    e,
                    SyncError::ReplayExpired { .. }
                        | SyncError::RetriesExhausted { .. }
                ) {
                    if let Some(c) = prior {
                        transport.abandon_at(shard, c);
                    }
                }
                let budget = driver.reconcile_config().divergence_budget;
                let within = e.estimated_divergence().is_some_and(|d| d <= budget);
                if within {
                    let items = content.items(shard);
                    let resolve = |key: &str| content.resolve(shard, key);
                    match self.drivers[shard.index()]
                        .reconcile_at(transport, shard, sub, &items, &resolve)
                    {
                        Ok(outcome) => {
                            let traffic = outcome.traffic();
                            let mut actions: Vec<SyncAction> = outcome
                                .delete_ids
                                .iter()
                                .filter_map(|&id| content.dn_of(shard, id))
                                .map(SyncAction::Delete)
                                .collect();
                            actions.extend(outcome.upserts.into_iter().map(SyncAction::Add));
                            return ShardExchange {
                                actions,
                                cookie: Some(outcome.cookie),
                                status: ShardStatus::Reconciled,
                                traffic,
                            };
                        }
                        Err(e) if e.is_transient() => return ShardExchange::stale(),
                        Err(_) => {
                            self.drivers[shard.index()]
                                .note_reconcile_fallback("shard reconcile failed");
                        }
                    }
                } else {
                    self.drivers[shard.index()].note_reconcile_fallback(
                        if e.estimated_divergence().is_some() {
                            "divergence over budget"
                        } else {
                            "divergence unknown"
                        },
                    );
                }
                self.reinstall_shard(transport, shard, sub, content)
            }
            Err(e) => ShardExchange::failed(e),
        }
    }

    /// Rung 3: reload the shard's slice from scratch — delete everything
    /// held for the shard, then replay the fresh content.
    fn reinstall_shard(
        &mut self,
        transport: &mut dyn SyncTransport,
        shard: ShardId,
        sub: &SearchRequest,
        content: &dyn ShardContent,
    ) -> ShardExchange {
        let driver = &mut self.drivers[shard.index()];
        driver.note_reinstall();
        match driver.resync_at(transport, shard, sub, ReSyncControl::poll(None)) {
            Ok(resp) => {
                let traffic = resp.traffic();
                let mut actions: Vec<SyncAction> =
                    content.held_dns(shard).into_iter().map(SyncAction::Delete).collect();
                actions.extend(resp.actions);
                ShardExchange {
                    actions,
                    cookie: resp.cookie,
                    status: ShardStatus::Reinstalled,
                    traffic,
                }
            }
            Err(e) if e.is_transient() => ShardExchange::stale(),
            Err(e) => ShardExchange::failed(e),
        }
    }
}

/// Internal per-shard exchange result (before the cookie is merged back
/// into the composite).
struct ShardExchange {
    actions: Vec<SyncAction>,
    cookie: Option<Cookie>,
    status: ShardStatus,
    traffic: SyncTraffic,
}

impl ShardExchange {
    fn stale() -> Self {
        ShardExchange {
            actions: Vec::new(),
            cookie: None,
            status: ShardStatus::Stale,
            traffic: SyncTraffic::default(),
        }
    }

    fn failed(e: SyncError) -> Self {
        ShardExchange {
            actions: Vec::new(),
            cookie: None,
            status: ShardStatus::Failed(e),
            traffic: SyncTraffic::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbdr_ldap::{Filter, Scope};

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn person(cn: &str, country: &str, dept: &str) -> Entry {
        Entry::new(dn(&format!("cn={cn},c={country},o=xyz")))
            .with("objectclass", "person")
            .with("dept", dept)
    }

    /// Two shards: c=a on shard 0, c=b on shard 1.
    fn sharded() -> ShardedMaster {
        let map = ShardMap::by_suffixes(vec![dn("c=a,o=xyz"), dn("c=b,o=xyz")]);
        let mut m = ShardedMaster::new(map);
        for (i, cc) in ["a", "b"].iter().enumerate() {
            let s = m.shard_mut(ShardId::new(i as u16));
            s.dit_mut().add_suffix(dn("o=xyz"));
            s.dit_mut().add(Entry::new(dn("o=xyz"))).unwrap();
            s.dit_mut()
                .add(Entry::new(dn(&format!("c={cc},o=xyz"))).with("objectclass", "country"))
                .unwrap();
        }
        m
    }

    fn subtree(base: &str, filter: &str) -> SearchRequest {
        SearchRequest::new(dn(base), Scope::Subtree, Filter::parse(filter).unwrap())
    }

    #[test]
    fn updates_route_to_owning_shard() {
        let mut m = sharded();
        m.apply(UpdateOp::Add(person("e1", "a", "7"))).unwrap();
        m.apply(UpdateOp::Add(person("e2", "b", "7"))).unwrap();
        assert_eq!(m.shard(ShardId::new(0)).ops_applied(), 1);
        assert_eq!(m.shard(ShardId::new(1)).ops_applied(), 1);
        assert_eq!(m.ops_applied(), 2);
    }

    #[test]
    fn batch_preserves_original_record_order() {
        let mut m = sharded();
        let records = m
            .apply_batch(vec![
                UpdateOp::Add(person("e1", "b", "7")),
                UpdateOp::Add(person("e2", "a", "7")),
                UpdateOp::Delete(dn("cn=e1,c=b,o=xyz")),
            ])
            .unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].dn, dn("cn=e1,c=b,o=xyz"));
        assert_eq!(records[1].dn, dn("cn=e2,c=a,o=xyz"));
        assert_eq!(records[2].dn, dn("cn=e1,c=b,o=xyz"));
    }

    #[test]
    fn search_unions_shard_slices() {
        let mut m = sharded();
        m.apply(UpdateOp::Add(person("e1", "a", "7"))).unwrap();
        m.apply(UpdateOp::Add(person("e2", "b", "7"))).unwrap();
        m.apply(UpdateOp::Add(person("e3", "b", "9"))).unwrap();
        let hits = m.search(&subtree("o=xyz", "(dept=7)"));
        let dns: Vec<String> = hits.iter().map(|e| e.dn().to_string()).collect();
        assert_eq!(dns, vec!["cn=e1,c=a,o=xyz", "cn=e2,c=b,o=xyz"]);
    }

    #[test]
    fn composite_cookie_serde_is_order_stable() {
        let mut fwd = CompositeCookie::new();
        fwd.insert(ShardId::new(0), Cookie::new(1, 2));
        fwd.insert(ShardId::new(3), Cookie::new(4, 5));
        let mut rev = CompositeCookie::new();
        rev.insert(ShardId::new(3), Cookie::new(4, 5));
        rev.insert(ShardId::new(0), Cookie::new(1, 2));
        let a = serde_json::to_string(&fwd).unwrap();
        let b = serde_json::to_string(&rev).unwrap();
        assert_eq!(a, b, "insertion order must not leak into the encoding");
        let back: CompositeCookie = serde_json::from_str(&a).unwrap();
        assert_eq!(back, fwd);
        // Even an unsorted encoding normalizes on decode.
        let unsorted = serde_json::to_string(&vec![
            (ShardId::new(3), Cookie::new(4, 5)),
            (ShardId::new(0), Cookie::new(1, 2)),
        ])
        .unwrap();
        assert_ne!(unsorted, a);
        let c: CompositeCookie = serde_json::from_str(&unsorted).unwrap();
        assert_eq!(serde_json::to_string(&c).unwrap(), a);
    }

    #[test]
    fn coordinator_installs_and_polls_across_shards() {
        let mut m = sharded();
        let mut coord = ShardCoordinator::new(m.map().clone());
        let req = subtree("o=xyz", "(dept=7)");

        m.apply(UpdateOp::Add(person("e1", "a", "7"))).unwrap();
        m.apply(UpdateOp::Add(person("e2", "b", "7"))).unwrap();
        let (actions, mut cookie, _) = coord.install(&mut m, &req).unwrap();
        assert_eq!(actions.len(), 2);
        assert_eq!(cookie.len(), 2, "one session per overlapped shard");
        assert_eq!(m.session_count(), 2);

        // An update on shard 1 reaches only shard 1's session.
        m.apply(UpdateOp::Add(person("e3", "b", "7"))).unwrap();
        let outs = m.map().split(&req).len();
        let content = NoContent;
        let outcomes = coord.sync_filter(&mut m, &req, &mut cookie, &content);
        assert_eq!(outcomes.len(), outs);
        let total: usize = outcomes.iter().map(|o| o.actions.len()).sum();
        assert_eq!(total, 1);
        assert!(outcomes.iter().all(|o| o.status == ShardStatus::Updated));
    }

    /// A content view for tests that hold nothing locally.
    struct NoContent;
    impl ShardContent for NoContent {
        fn items(&self, _shard: ShardId) -> Vec<ReconcileItem> {
            Vec::new()
        }
        fn resolve(&self, _shard: ShardId, _key: &str) -> Option<u32> {
            None
        }
        fn dn_of(&self, _shard: ShardId, _id: u32) -> Option<Dn> {
            None
        }
        fn held_dns(&self, _shard: ShardId) -> Vec<Dn> {
            Vec::new()
        }
    }

    #[test]
    fn dead_session_on_one_shard_reinstalls_only_that_shard() {
        let mut m = sharded();
        let mut coord = ShardCoordinator::new(m.map().clone());
        let req = subtree("o=xyz", "(dept=7)");
        m.apply(UpdateOp::Add(person("e1", "a", "7"))).unwrap();
        m.apply(UpdateOp::Add(person("e2", "b", "7"))).unwrap();
        let (_, mut cookie, _) = coord.install(&mut m, &req).unwrap();

        // Kill shard 1's session behind the coordinator's back.
        let c1 = cookie.get(ShardId::new(1)).unwrap();
        m.shard_mut(ShardId::new(1)).abandon(c1);

        m.apply(UpdateOp::Add(person("e3", "b", "7"))).unwrap();
        let outcomes = coord.sync_filter(&mut m, &req, &mut cookie, &NoContent);
        let by_shard =
            |s: u16| outcomes.iter().find(|o| o.shard == ShardId::new(s)).unwrap();
        assert_eq!(by_shard(0).status, ShardStatus::Updated);
        assert_eq!(by_shard(1).status, ShardStatus::Reinstalled);
        // The reinstall replays shard 1's full slice.
        assert_eq!(by_shard(1).actions.len(), 2);
        assert_eq!(coord.stats().reinstalls, 1);
        // Both shards hold live sessions again; the next poll is clean.
        assert_eq!(cookie.len(), 2);
        let outcomes = coord.sync_filter(&mut m, &req, &mut cookie, &NoContent);
        assert!(outcomes.iter().all(|o| o.status == ShardStatus::Updated));
    }
}
