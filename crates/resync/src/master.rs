//! The master (supplier) side of the ReSync protocol.

use crate::intern::{dn_key, DnTable};
use crate::protocol::{
    Cookie, NotifyBatch, ReSyncControl, SyncAction, SyncError, SyncMode, SyncResponse,
};
use crate::reconcile::{
    bucket_of, entry_version, item_hash, RangeRequest, RangeResponse, RangeSummary,
    ReconcileRequest, ReconcileResponse,
};
use crate::routing::RoutingIndex;
use crossbeam::channel::{unbounded, Receiver, Sender};
use fbdr_dit::{ChangeRecord, DitError, DitStore, UpdateOp};
use fbdr_ldap::{Dn, Entry, SearchRequest};
use fbdr_obs::{event, Obs};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Sorted-`Vec<u32>` posting-list helpers for session bookkeeping. The
/// id space is the master's [`DnTable`]; lists are tiny relative to a
/// `HashSet<Dn>` (4 bytes per member, no per-DN string hashing) and
/// membership is a binary search.
fn pl_contains(list: &[u32], id: u32) -> bool {
    list.binary_search(&id).is_ok()
}

fn pl_insert(list: &mut Vec<u32>, id: u32) {
    if let Err(pos) = list.binary_search(&id) {
        list.insert(pos, id);
    }
}

fn pl_remove(list: &mut Vec<u32>, id: u32) {
    if let Ok(pos) = list.binary_search(&id) {
        list.remove(pos);
    }
}

/// Per-session state: the request, what the replica has been sent, the
/// live content, and the **session history** — DNs that left the content
/// since the last response (the paper's alternative to changelogs and
/// tombstones).
///
/// All DN sets are interned-id posting lists (sorted `Vec<u32>`) over the
/// owning master's [`DnTable`] — the master resolves ids back to DNs when
/// building responses.
#[derive(Debug, Serialize, Deserialize)]
struct Session {
    request: SearchRequest,
    /// Ids of DNs the replica holds (content as of the last response).
    sent: Vec<u32>,
    /// Current content ids, maintained at update time.
    current: Vec<u32>,
    /// `E10`: ids that left the content since the last response and are
    /// held by the replica.
    departed: Vec<u32>,
    /// `E11` candidates: in-content ids modified since the last response.
    changed: Vec<u32>,
    /// Persist-mode notification channel, if the session is persistent.
    /// Not persisted: a restored persist session degrades to polling (its
    /// cookie stays valid), exactly like a dropped TCP connection.
    #[serde(skip)]
    notify: Option<Sender<NotifyBatch>>,
    /// Receiver parked until the client picks it up.
    #[serde(skip)]
    parked_receiver: Option<Receiver<NotifyBatch>>,
    /// Raw updates queued for the next notification flush (coalescing
    /// policies only; the immediate policy sends at apply time). Not
    /// persisted: the channel the queue feeds does not survive either.
    #[serde(skip)]
    dirty: u64,
    /// Master time (ms) when the oldest queued update landed.
    #[serde(skip)]
    dirty_since_ms: Option<u64>,
    /// Master op-count at last activity, for idle expiry.
    last_active: u64,
    /// Master clock (ms) at last activity, for the GC eviction deadline
    /// ([`GcConfig::session_deadline_ms`]).
    #[serde(default)]
    last_active_ms: u64,
    /// Master op-count through which delivery is **acknowledged**: the
    /// replica has echoed a cookie proving it holds every action built at
    /// or before this op-count. The minimum across live sessions is the
    /// master's stability watermark.
    #[serde(default)]
    stable_at: u64,
    /// Sequence number of the last response issued on this session (the
    /// low 32 bits of the cookie the replica holds).
    seq: u32,
    /// The last response's actions, kept until the next request
    /// acknowledges them by echoing the issued cookie. A request carrying
    /// the *previous* cookie means the response was lost in transit; the
    /// batch is re-delivered verbatim. Persisted, so at-least-once
    /// delivery survives a master crash/restart.
    pending: Option<Vec<SyncAction>>,
    /// Master op-count when `pending` was built, for replay expiry.
    pending_at: u64,
    /// Item set frozen at a reconciliation digest round, awaiting the
    /// (optional) range round. Cleared by the first ordinary poll on the
    /// session. Persisted so an in-flight reconciliation survives a
    /// master crash between rounds.
    #[serde(default)]
    reconcile: Option<ReconcileStash>,
}

/// The master's `(item hash, id)` set as of a session's digest round,
/// sorted by hash, plus the bucket shift the range summary was built
/// with. The range round answers against this frozen set, never the live
/// content — updates landing between rounds are delivered by the next
/// ordinary poll.
#[derive(Debug, Serialize, Deserialize)]
struct ReconcileStash {
    shift: u32,
    items: Vec<(u64, u32)>,
    /// Master op-count when the stash was frozen, for oldest-first
    /// eviction under [`GcConfig::stash_max_items`].
    #[serde(default)]
    at: u64,
}

/// Knobs of the master's causal-stability garbage collector
/// ([`SyncMaster::collect_garbage`]).
///
/// The collector reclaims everything no live session can ever ask for
/// again: replay buffers past the replay-expiry window, reconcile
/// stashes over the global item cap (oldest first), sessions unreachable
/// past the deadline, and [`DnTable`] slots referenced by no surviving
/// session ledger (released for id recycling). It runs automatically
/// every [`GcConfig::every_ops`] applied updates and can be invoked
/// directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcConfig {
    /// Evict sessions whose last activity is more than this many
    /// master-clock milliseconds ago, so one dead replica cannot pin the
    /// fleet's garbage forever. Persist sessions with a live channel are
    /// exempt (their inactivity is the channel's silence, not death).
    /// `None` (the default) never evicts by time — idle expiry via
    /// [`SyncMaster::expire_idle`] still applies.
    pub session_deadline_ms: Option<u64>,
    /// Total frozen reconcile-stash items retained across all sessions;
    /// exchanges are evicted oldest-first over this cap (their range
    /// round fails with [`SyncError::ReconcileFailed`] and the replica
    /// falls back to reinstall, the standard degradation path).
    pub stash_max_items: usize,
    /// Run the collector automatically every this many applied updates.
    /// `None` disables automatic collection (the un-GC'd ablation arm).
    pub every_ops: Option<u64>,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            session_deadline_ms: None,
            stash_max_items: 1 << 20,
            every_ops: Some(1024),
        }
    }
}

impl GcConfig {
    /// Disables every reclamation path — the monotonic-growth baseline
    /// the soak benchmark's ablation arm measures.
    pub fn disabled() -> Self {
        GcConfig { session_deadline_ms: None, stash_max_items: usize::MAX, every_ops: None }
    }
}

/// What one [`SyncMaster::collect_garbage`] pass reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GcReport {
    /// Sessions evicted by the unreachability deadline.
    pub sessions_evicted: usize,
    /// Replay buffers dropped eagerly (already past the replay-expiry
    /// window, so a retry was going to get [`SyncError::ReplayExpired`]
    /// either way — the batch bytes just no longer wait for it).
    pub pending_dropped: usize,
    /// Reconcile-stash items evicted over [`GcConfig::stash_max_items`].
    pub stash_items_evicted: usize,
    /// [`DnTable`] slots released for recycling (referenced by no
    /// surviving session ledger or stash).
    pub ids_released: usize,
}

impl GcReport {
    /// Accumulates another report (per-shard sums).
    pub fn merge(&mut self, other: GcReport) {
        self.sessions_evicted += other.sessions_evicted;
        self.pending_dropped += other.pending_dropped;
        self.stash_items_evicted += other.stash_items_evicted;
        self.ids_released += other.ids_released;
    }
}

/// Deterministic byte accounting of a master's long-lived session state
/// ([`SyncMaster::memory_footprint`]): sums of structure sizes computed
/// from lengths and capacities, never allocator statistics, so equal
/// histories report equal bytes on every platform.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MasterFootprint {
    /// Live sessions.
    pub sessions: usize,
    /// Live [`DnTable`] slots.
    pub table_live: usize,
    /// Total [`DnTable`] slots ever allocated (the id-space bound —
    /// flat under GC, monotonic without it).
    pub table_capacity: usize,
    /// [`DnTable`] bytes (interned DNs plus per-slot overhead).
    pub table_bytes: usize,
    /// Per-session posting-list bytes (`sent`/`current`/`departed`/
    /// `changed` capacities).
    pub postings_bytes: usize,
    /// Unacknowledged replay-buffer bytes (pending batches).
    pub replay_bytes: usize,
    /// Frozen reconcile-stash bytes.
    pub stash_bytes: usize,
}

impl MasterFootprint {
    /// Total accounted bytes.
    pub fn total_bytes(&self) -> usize {
        self.table_bytes + self.postings_bytes + self.replay_bytes + self.stash_bytes
    }

    /// Accumulates another footprint (per-shard sums).
    pub fn merge(&mut self, other: MasterFootprint) {
        self.sessions += other.sessions;
        self.table_live += other.table_live;
        self.table_capacity += other.table_capacity;
        self.table_bytes += other.table_bytes;
        self.postings_bytes += other.postings_bytes;
        self.replay_bytes += other.replay_bytes;
        self.stash_bytes += other.stash_bytes;
    }
}

/// When persist-mode notifications are handed to a session's channel.
///
/// The [immediate](NotifyPolicy::immediate) policy (the default, and the
/// original behavior) sends one [`NotifyBatch`] per update the moment it
/// is applied — lowest staleness, one wakeup per update per interested
/// session. A [coalescing](NotifyPolicy::coalescing) policy queues
/// updates on the session ledger instead and flushes them in one batch
/// when either knob fires ([`SyncMaster::flush_notifications`]):
///
/// * `max_batch` — the session has this many raw updates queued;
/// * `max_delay_ms` — the oldest queued update has waited this long.
///
/// Coalescing bounds each session's queue with `max_queue`: a session
/// that accumulates more raw updates than that between flushes has its
/// channel torn down (backpressure — the replica observes the disconnect
/// and falls back to polling, the standard degradation path). The poll
/// ledger is unaffected, so no update is ever lost, only its push-mode
/// delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NotifyPolicy {
    /// `false`: send per update at apply time. `true`: queue and flush.
    pub coalesce: bool,
    /// Flush when a session has this many raw updates queued.
    pub max_batch: u64,
    /// Flush when the oldest queued update has waited this long (ms).
    pub max_delay_ms: u64,
    /// Tear down a session's channel when its queue exceeds this many raw
    /// updates (coalescing only; the immediate policy never queues).
    pub max_queue: u64,
}

impl NotifyPolicy {
    /// One notification per update, sent at apply time (the default).
    pub fn immediate() -> Self {
        NotifyPolicy { coalesce: false, max_batch: 1, max_delay_ms: 0, max_queue: u64::MAX }
    }

    /// Queue updates and flush a coalesced batch per session when either
    /// `max_batch` updates are queued or the oldest has waited
    /// `max_delay_ms`. The queue bound defaults to `64 * max_batch`.
    pub fn coalescing(max_batch: u64, max_delay_ms: u64) -> Self {
        NotifyPolicy {
            coalesce: true,
            max_batch: max_batch.max(1),
            max_delay_ms,
            max_queue: max_batch.max(1).saturating_mul(64),
        }
    }

    /// Overrides the backpressure bound.
    pub fn with_max_queue(mut self, max_queue: u64) -> Self {
        self.max_queue = max_queue.max(1);
        self
    }
}

impl Default for NotifyPolicy {
    fn default() -> Self {
        NotifyPolicy::immediate()
    }
}

/// What one session flush produced — returned by
/// [`SyncMaster::flush_notifications`] so an event-driven harness can
/// schedule exactly one delivery per wakeup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NotifyFlush {
    /// Session the batch was sent to.
    pub session: u32,
    /// Entry actions in the batch (after per-DN coalescing).
    pub actions: usize,
    /// Raw updates the batch coalesces.
    pub coalesced_from: u64,
    /// Master time (ms) when the oldest coalesced update landed.
    pub first_enqueued_ms: u64,
}

/// A master directory server that owns a [`DitStore`] and maintains ReSync
/// sessions over it.
///
/// All updates **must** flow through [`SyncMaster::apply`] once sessions
/// exist — that is where session history is recorded. [`SyncMaster::dit_mut`]
/// is intended for initial bulk loading and suffix registration.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct SyncMaster {
    dit: DitStore,
    sessions: HashMap<u64, Session>,
    next_session: u64,
    ops_applied: u64,
    /// DN ↔ dense id table backing every session's posting lists.
    table: DnTable,
    /// Which sessions can an update touch? Maintained across the session
    /// lifecycle; never serialized — rebuilt from the surviving sessions
    /// on first use after deserialization (see `ensure_routing`).
    #[serde(skip)]
    routing: RoutingIndex,
    /// Reused candidate buffer, so steady-state routing allocates nothing.
    #[serde(skip)]
    scratch: Vec<u32>,
    /// Disables unacknowledged-batch replay, restoring the pre-fix
    /// fire-and-forget semantics. Only useful to demonstrate the
    /// divergence the replay buffer prevents.
    replay_disabled: bool,
    /// `Some(n)`: a pending batch is replayable for at most `n` applied
    /// updates; after that a retry gets [`SyncError::ReplayExpired`] and
    /// must reinstall. `None`: batches are held until acknowledged.
    replay_expiry_ops: Option<u64>,
    /// How many responses were re-delivered from the replay buffer.
    redeliveries: u64,
    /// Persist-mode notification flush policy.
    #[serde(default)]
    notify_policy: NotifyPolicy,
    /// Causal-stability garbage-collector knobs.
    #[serde(default)]
    gc: GcConfig,
    /// Master clock in milliseconds, advanced by [`SyncMaster::advance_to`]
    /// — the time base for coalescing delays and batch staleness stamps.
    /// A master never told the time runs everything at t=0, which only
    /// matters to coalescing policies with a delay knob.
    #[serde(default)]
    now_ms: u64,
    /// Notification wakeups sent (batches on any persist channel).
    #[serde(default)]
    notify_wakeups: u64,
    /// Raw updates those wakeups carried (`>= notify_wakeups`; the ratio
    /// is the amplification coalescing saves).
    #[serde(default)]
    notify_updates: u64,
    /// Persist channels torn down by queue-bound backpressure.
    #[serde(default)]
    notify_overflows: u64,
    /// Process-local observability; not persisted (a restored master
    /// starts with [`Obs::off`] and can be re-attached via
    /// [`SyncMaster::set_obs`], like reopening a connection).
    #[serde(skip)]
    obs: Obs,
    /// Instrument handles for the per-update routing metrics, resolved
    /// once in [`SyncMaster::set_obs`] — the registry's name-keyed,
    /// lock-guarded lookup is too slow for the apply hot path.
    #[serde(skip)]
    route_metrics: Option<RouteMetrics>,
}

#[derive(Debug, Clone)]
struct RouteMetrics {
    candidates: std::sync::Arc<fbdr_obs::Histogram>,
    indexed: std::sync::Arc<fbdr_obs::Counter>,
    scan: std::sync::Arc<fbdr_obs::Counter>,
    skipped: std::sync::Arc<fbdr_obs::Counter>,
}

impl SyncMaster {
    /// Creates a master with an empty DIT.
    pub fn new() -> Self {
        SyncMaster::default()
    }

    /// Creates a master around an already-loaded DIT.
    pub fn with_dit(dit: DitStore) -> Self {
        SyncMaster { dit, ..SyncMaster::default() }
    }

    /// The underlying DIT store.
    pub fn dit(&self) -> &DitStore {
        &self.dit
    }

    /// Mutable access to the DIT for setup (suffixes, bulk load). Updates
    /// applied here bypass session bookkeeping; use [`SyncMaster::apply`]
    /// once sessions exist.
    pub fn dit_mut(&mut self) -> &mut DitStore {
        &mut self.dit
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Total updates applied through this master.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// How many responses were served from the replay buffer (a lost or
    /// duplicated delivery was recovered).
    pub fn redeliveries(&self) -> u64 {
        self.redeliveries
    }

    /// Sets the persist-mode notification flush policy (see
    /// [`NotifyPolicy`]). Takes effect for subsequent updates; any
    /// already-queued updates flush under the new policy's knobs.
    pub fn set_notify_policy(&mut self, policy: NotifyPolicy) {
        self.notify_policy = policy;
    }

    /// The persist-mode notification flush policy in force.
    pub fn notify_policy(&self) -> NotifyPolicy {
        self.notify_policy
    }

    /// Advances the master clock to `now_ms` (monotonic: earlier values
    /// are ignored). The clock stamps notification batches and drives the
    /// coalescing delay knob; event-driven harnesses call this before
    /// each batch of applies.
    pub fn advance_to(&mut self, now_ms: u64) {
        self.now_ms = self.now_ms.max(now_ms);
    }

    /// The master clock, in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Notification wakeups sent so far (one per [`NotifyBatch`] on any
    /// persist channel).
    pub fn notify_wakeups(&self) -> u64 {
        self.notify_wakeups
    }

    /// Raw updates those wakeups carried. `notify_updates /
    /// notify_wakeups` is the measured coalescing factor.
    pub fn notify_updates(&self) -> u64 {
        self.notify_updates
    }

    /// Persist channels torn down by queue-bound backpressure.
    pub fn notify_overflows(&self) -> u64 {
        self.notify_overflows
    }

    /// Flushes due persist-mode notification queues, one coalesced
    /// [`NotifyBatch`] per session whose queue is due under the policy
    /// (`force` flushes every non-empty queue regardless). Returns one
    /// [`NotifyFlush`] per batch sent, ascending by session id, so an
    /// event-driven harness can schedule exactly one delivery per wakeup.
    ///
    /// A queue whose updates cancelled out (an entry arrived and departed
    /// between flushes) is cleared without a wakeup — the replica's
    /// content is unaffected, so there is nothing to deliver. Only
    /// meaningful under a coalescing policy; under the immediate policy
    /// queues are always empty and this returns nothing.
    pub fn flush_notifications(&mut self, force: bool) -> Vec<NotifyFlush> {
        if self.sessions.is_empty() {
            return Vec::new();
        }
        let policy = self.notify_policy;
        let now = self.now_ms;
        let mut due: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| {
                s.notify.is_some()
                    && s.dirty > 0
                    && (force
                        || s.dirty >= policy.max_batch
                        || s.dirty_since_ms
                            .is_some_and(|t0| now.saturating_sub(t0) >= policy.max_delay_ms))
            })
            .map(|(&sid, _)| sid)
            .collect();
        due.sort_unstable();
        let mut flushes = Vec::new();
        for sid in due {
            let Some(session) = self.sessions.get_mut(&sid) else { continue };
            let coalesced_from = session.dirty;
            let first_enqueued_ms = session.dirty_since_ms.unwrap_or(now);
            session.dirty = 0;
            session.dirty_since_ms = None;
            // A dropped receiver means the client abandoned the
            // persistent search: tear the channel down *before* touching
            // the ledger, so every queued action survives for the poll
            // the reconnecting replica will eventually issue.
            let live = session.notify.as_ref().is_some_and(|tx| !tx.is_disconnected());
            if !live {
                session.notify = None;
                continue;
            }
            let actions = session.build_actions(&self.dit, &self.table);
            if actions.is_empty() {
                // The queued updates cancelled out (arrived and departed
                // between flushes): nothing to deliver, nothing to keep.
                session.commit_drain();
                continue;
            }
            let n_actions = actions.len();
            let batch = NotifyBatch {
                actions,
                coalesced_from,
                first_enqueued_ms,
                flushed_ms: now,
            };
            let sent = session.notify.as_ref().is_some_and(|tx| tx.send(batch).is_ok());
            if !sent {
                // Disconnected between the probe and the send: keep the
                // ledger uncommitted — the poll path still owns delivery.
                session.notify = None;
                continue;
            }
            session.commit_drain();
            self.notify_wakeups += 1;
            self.notify_updates += coalesced_from;
            flushes.push(NotifyFlush {
                session: sid as u32,
                actions: n_actions,
                coalesced_from,
                first_enqueued_ms,
            });
        }
        if !flushes.is_empty() && self.obs.is_active() {
            let reg = self.obs.registry();
            let wakeups = flushes.len() as u64;
            let updates: u64 = flushes.iter().map(|f| f.coalesced_from).sum();
            reg.counter("fbdr_resync_notify_wakeups_total").add(wakeups);
            reg.counter("fbdr_resync_notify_updates_total").add(updates);
            let depth = reg.histogram("fbdr_resync_notify_batch_updates");
            for f in &flushes {
                depth.record(f.coalesced_from);
            }
        }
        flushes
    }

    /// Attaches observability: resync exchanges increment
    /// `fbdr_resync_requests_total`/`fbdr_resync_redeliveries_total`/
    /// `fbdr_resync_expired_total` and emit `resync.*` trace events
    /// (request/response/redelivery/expiry, with cookie sequence numbers
    /// and entry-action counts).
    ///
    /// The handle does not survive [serialization](SyncMaster): a
    /// restored master starts detached, exactly like its persist
    /// channels.
    pub fn set_obs(&mut self, obs: Obs) {
        self.route_metrics = obs.is_active().then(|| {
            let reg = obs.registry();
            RouteMetrics {
                candidates: reg.histogram("fbdr_resync_route_candidates"),
                indexed: reg.counter("fbdr_resync_route_indexed_total"),
                scan: reg.counter("fbdr_resync_route_scan_total"),
                skipped: reg.counter("fbdr_resync_route_skipped_total"),
            }
        });
        self.obs = obs;
    }

    /// The observability handle this master records through.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Bounds the replay buffer: a pending batch older than `ops` applied
    /// updates is dropped, and a retry for it fails with
    /// [`SyncError::ReplayExpired`] (→ full reinstall at the replica).
    pub fn set_replay_expiry_ops(&mut self, ops: u64) {
        self.replay_expiry_ops = Some(ops);
    }

    /// Disables response replay, restoring the pre-fix fire-and-forget
    /// behavior in which a lost response silently loses its batch (the
    /// session history is cleared when the response is *built*, not when
    /// it is acknowledged). Exists so tests can demonstrate the resulting
    /// divergence; never use in a deployment.
    pub fn disable_replay(&mut self) {
        self.replay_disabled = true;
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    /// Applies an update to the DIT and maintains every live session's
    /// content and history; persist-mode sessions are notified
    /// immediately.
    ///
    /// Fan-out is **routed**: the [`RoutingIndex`] computes the candidate
    /// session set from the entry's *old* attribute state (looked up
    /// before the store applies the op — an entry leaving a filter stops
    /// matching afterwards, but its old values still hit the session's
    /// keys, which is what routes the departure) and its *new* state,
    /// plus the residual scan-list for the affected naming context. Only
    /// candidates are evaluated; sessions outside the set provably need
    /// no action. DN interning and entry clones happen only once routing
    /// finds at least one candidate.
    ///
    /// # Errors
    ///
    /// Propagates [`DitError`] from the store; sessions are untouched on
    /// failure.
    pub fn apply(&mut self, op: UpdateOp) -> Result<ChangeRecord, DitError> {
        self.apply_inner(op, false)
    }

    /// The pre-index fan-out reference: identical semantics to
    /// [`SyncMaster::apply`], but every live session is evaluated against
    /// every update, O(sessions) per op. Kept as the equivalence oracle
    /// and the baseline the `master_fanout` benchmark measures against.
    ///
    /// # Errors
    ///
    /// As [`SyncMaster::apply`].
    pub fn apply_naive(&mut self, op: UpdateOp) -> Result<ChangeRecord, DitError> {
        self.apply_inner(op, true)
    }

    /// Applies a batch of updates through the routed path, amortizing the
    /// routing scratch buffer and index-hydration checks across the
    /// batch. Stops at the first store error (earlier ops stay applied,
    /// exactly as if issued through [`SyncMaster::apply`] one by one).
    ///
    /// # Errors
    ///
    /// The first [`DitError`] encountered, if any.
    pub fn apply_batch(
        &mut self,
        ops: impl IntoIterator<Item = UpdateOp>,
    ) -> Result<Vec<ChangeRecord>, DitError> {
        ops.into_iter().map(|op| self.apply_inner(op, false)).collect()
    }

    /// Rebuilds derived in-memory state when it is out of date: the DN
    /// table's reverse map and the routing index (both arrive empty after
    /// deserialization; sessions and posting lists are authoritative).
    fn ensure_routing(&mut self) {
        self.table.rehydrate();
        if self.routing.len() == self.sessions.len() {
            return;
        }
        self.routing = RoutingIndex::new();
        for (&sid, s) in &self.sessions {
            self.routing.register(sid as u32, &s.request);
        }
    }

    fn apply_inner(&mut self, op: UpdateOp, naive: bool) -> Result<ChangeRecord, DitError> {
        if self.sessions.is_empty() {
            // Nothing to route: no clones, no interning, no index work.
            let rec = self.dit.apply(op)?;
            self.ops_applied += 1;
            self.maybe_collect();
            return Ok(rec);
        }
        self.ensure_routing();
        let mut cand = std::mem::take(&mut self.scratch);
        cand.clear();
        // Candidates from the entry's OLD attribute state, read before the
        // store mutates it. Borrow-only: no DN or entry clones yet.
        let mut residual_hits = 0usize;
        if naive {
            self.routing.all_sessions(&mut cand);
        } else {
            if let Some(old) = self.dit.get(op.target()) {
                self.routing.candidates_for_entry(old, &mut cand);
            }
            let before = cand.len();
            self.routing.residual_for_dn(op.target(), &mut cand);
            residual_hits = cand.len() - before;
        }
        let rec = match self.dit.apply(op) {
            Ok(rec) => rec,
            Err(e) => {
                self.scratch = cand;
                return Err(e);
            }
        };
        self.ops_applied += 1;
        let target = &rec.dn;
        let new_dn = rec.new_dn.as_ref().unwrap_or(target);
        let renamed = rec.new_dn.is_some();
        // Entry state after the operation (None if deleted) — borrowed,
        // never cloned on this path.
        let new_entry = self.dit.get(new_dn);
        if !naive {
            if let Some(e) = new_entry {
                self.routing.candidates_for_entry(e, &mut cand);
            }
            if renamed {
                let before = cand.len();
                self.routing.residual_for_dn(new_dn, &mut cand);
                residual_hits += cand.len() - before;
            }
        }
        let indexed_hits = cand.len() - residual_hits;
        cand.sort_unstable();
        cand.dedup();
        if !naive {
            if let Some(m) = &self.route_metrics {
                m.candidates.record(cand.len() as u64);
                if cand.is_empty() {
                    m.skipped.inc();
                } else {
                    // Not exclusive: an op can reach sessions through posting
                    // keys *and* drag in the residual scan-list.
                    if indexed_hits > 0 {
                        m.indexed.inc();
                    }
                    if residual_hits > 0 {
                        m.scan.inc();
                    }
                }
            }
        }
        if cand.is_empty() {
            self.scratch = cand;
            self.maybe_collect();
            return Ok(rec);
        }
        // At least one session is interested: intern the touched DNs now.
        let target_id = self.table.intern(target);
        let new_id = if renamed { self.table.intern(new_dn) } else { target_id };
        let policy = self.notify_policy;
        let now_ms = self.now_ms;
        let mut outcome = NoteOutcome::default();
        for &sid in &cand {
            let Some(session) = self.sessions.get_mut(&u64::from(sid)) else {
                continue;
            };
            if renamed {
                outcome.merge(session.note_departure(target_id, target, &policy, now_ms));
                if let Some(e) = new_entry {
                    outcome.merge(session.note_arrival_or_change(e, new_id, &policy, now_ms));
                }
            } else {
                match new_entry {
                    Some(e) => {
                        outcome.merge(session.note_arrival_or_change(e, target_id, &policy, now_ms));
                    }
                    None => outcome.merge(session.note_departure(target_id, target, &policy, now_ms)),
                }
            }
        }
        self.scratch = cand;
        if outcome.sent > 0 || outcome.overflows > 0 {
            self.notify_wakeups += u64::from(outcome.sent);
            self.notify_updates += u64::from(outcome.sent);
            self.notify_overflows += u64::from(outcome.overflows);
            if self.obs.is_active() {
                let reg = self.obs.registry();
                if outcome.sent > 0 {
                    reg.counter("fbdr_resync_notify_wakeups_total").add(u64::from(outcome.sent));
                    reg.counter("fbdr_resync_notify_updates_total").add(u64::from(outcome.sent));
                }
                if outcome.overflows > 0 {
                    reg.counter("fbdr_resync_notify_overflows_total")
                        .add(u64::from(outcome.overflows));
                }
            }
        }
        self.maybe_collect();
        Ok(rec)
    }

    // ------------------------------------------------------------------
    // ReSync request handling
    // ------------------------------------------------------------------

    /// Handles a ReSync request: `(search request, control)`.
    ///
    /// * `cookie == None` — starts a session; the full content is sent.
    /// * `cookie == Some` — sends updates accumulated since the last
    ///   request on that session.
    /// * mode `Persist` — additionally arms a notification channel; fetch
    ///   it with [`SyncMaster::take_receiver`].
    /// * mode `SyncEnd` — terminates the session.
    ///
    /// # At-least-once delivery
    ///
    /// Each response carries a cookie whose sequence number acknowledges
    /// delivery when echoed in the next request. Until then the batch is
    /// kept in a per-session replay buffer: a request carrying the
    /// *previous* cookie (the response was lost, or the request was
    /// delivered twice) gets the same batch again, verbatim, under the
    /// same cookie. The buffer is bounded by
    /// [`SyncMaster::set_replay_expiry_ops`].
    ///
    /// # Errors
    ///
    /// [`SyncError::UnknownCookie`] for dead sessions,
    /// [`SyncError::MissingCookie`] for `sync_end` without a cookie,
    /// [`SyncError::RequestMismatch`] when a resumed session was created
    /// for a different search request, and [`SyncError::ReplayExpired`]
    /// when a lost batch can no longer be replayed.
    pub fn resync(&mut self, request: &SearchRequest, ctl: ReSyncControl) -> Result<SyncResponse, SyncError> {
        if self.obs.is_active() {
            self.obs.registry().counter("fbdr_resync_requests_total").inc();
        }
        event!(
            self.obs,
            "resync",
            "request",
            mode = match ctl.mode {
                SyncMode::Poll => "poll",
                SyncMode::Persist => "persist",
                SyncMode::SyncEnd => "sync_end",
            },
            seq = ctl.cookie.map_or(0, |c| c.seq()),
            fresh = ctl.cookie.is_none(),
        );
        match ctl.mode {
            SyncMode::SyncEnd => {
                let cookie = ctl.cookie.ok_or(SyncError::MissingCookie)?;
                self.sessions
                    .remove(&u64::from(cookie.session()))
                    .ok_or(SyncError::UnknownCookie(cookie))?;
                self.routing.remove(cookie.session());
                self.note_session_count();
                return Ok(SyncResponse { actions: Vec::new(), cookie: None, redelivered: false });
            }
            SyncMode::Poll | SyncMode::Persist => {}
        }
        let resumed = ctl.cookie;
        let sid = match resumed {
            None => self.start_session(request),
            Some(c) => u64::from(c.session()),
        };
        let ops_applied = self.ops_applied;
        let now_ms = self.now_ms;
        let replay_disabled = self.replay_disabled;
        let expiry = self.replay_expiry_ops;
        let session = self
            .sessions
            .get_mut(&sid)
            .ok_or_else(|| SyncError::UnknownCookie(resumed.expect("fresh sessions exist")))?;
        if session.request != *request {
            return Err(SyncError::RequestMismatch(Cookie::new(sid as u32, session.seq)));
        }
        session.last_active = ops_applied;
        session.last_active_ms = now_ms;
        // An ordinary poll supersedes any reconciliation in flight: the
        // replica has either completed it (this is the follow-up poll) or
        // abandoned it. Either way the frozen stash is garbage now.
        session.reconcile = None;
        if ctl.mode == SyncMode::Persist && session.notify.is_none() {
            let (tx, rx) = unbounded();
            session.notify = Some(tx);
            session.parked_receiver = Some(rx);
        }
        let mut redelivery = None;
        if let (Some(c), false) = (resumed, replay_disabled) {
            if c.seq() == session.seq {
                // The last issued batch is acknowledged as delivered:
                // everything built at or before `pending_at` is stable on
                // this session, which advances the stability watermark.
                session.pending = None;
                session.stable_at = session.stable_at.max(session.pending_at);
            } else if session.seq > 0 && c.seq() == session.seq - 1 {
                // Retried request: the previous response never arrived
                // (or this request was delivered twice).
                let expired = expiry
                    .is_some_and(|limit| ops_applied.saturating_sub(session.pending_at) > limit);
                match (&session.pending, expired) {
                    (Some(batch), false) => redelivery = Some(batch.clone()),
                    _ => {
                        let oldest_retained = session.pending_at;
                        self.note_expiry(c, "pending batch past replay window");
                        return Err(SyncError::ReplayExpired {
                            cookie: c,
                            oldest_retained,
                            ops_applied,
                        });
                    }
                }
            } else {
                // A cookie from an older exchange: the replica's view is
                // more than one batch behind and cannot be repaired
                // incrementally.
                let oldest_retained = session.pending_at;
                self.note_expiry(c, "cookie more than one batch behind");
                return Err(SyncError::ReplayExpired {
                    cookie: c,
                    oldest_retained,
                    ops_applied,
                });
            }
        }
        if let Some(actions) = redelivery {
            let seq = self.sessions[&sid].seq;
            let cookie = Cookie::new(sid as u32, seq);
            self.redeliveries += 1;
            if self.obs.is_active() {
                self.obs.registry().counter("fbdr_resync_redeliveries_total").inc();
            }
            let resp = SyncResponse { actions, cookie: Some(cookie), redelivered: true };
            event!(
                self.obs,
                "resync",
                "redelivery",
                seq = seq,
                actions = resp.actions.len(),
            );
            return Ok(resp);
        }
        let actions = session.drain_actions(&self.dit, &self.table);
        session.seq = session.seq.wrapping_add(1);
        session.pending = Some(actions.clone());
        session.pending_at = ops_applied;
        let cookie = Cookie::new(sid as u32, session.seq);
        let resp = SyncResponse { actions, cookie: Some(cookie), redelivered: false };
        if self.obs.tracing_enabled() {
            let counts = resp.action_counts();
            event!(
                self.obs,
                "resync",
                "response",
                seq = cookie.seq(),
                adds = counts.adds,
                modifies = counts.modifies,
                deletes = counts.deletes,
                retains = counts.retains,
            );
        }
        Ok(resp)
    }

    /// Records a replay-window expiry: the counter plus a `resync.expiry`
    /// trace event carrying the offending cookie's sequence number.
    fn note_expiry(&self, cookie: Cookie, reason: &'static str) {
        if self.obs.is_active() {
            self.obs.registry().counter("fbdr_resync_expired_total").inc();
        }
        event!(
            self.obs,
            "resync",
            "expiry",
            session = cookie.session(),
            seq = cookie.seq(),
            reason = reason,
        );
    }

    /// Convenience for persist mode: performs the request and hands back
    /// the notification receiver in one call.
    ///
    /// # Errors
    ///
    /// As [`SyncMaster::resync`].
    pub fn resync_persist(
        &mut self,
        request: &SearchRequest,
        cookie: Option<Cookie>,
    ) -> Result<(SyncResponse, Receiver<NotifyBatch>), SyncError> {
        let resp = self.resync(request, ReSyncControl::persist(cookie))?;
        let c = resp.cookie.expect("persist responses carry a cookie");
        let rx = self.take_receiver(c).ok_or(SyncError::UnknownCookie(c))?;
        Ok((resp, rx))
    }

    // ------------------------------------------------------------------
    // Reconciliation (divergence-proportional session recovery)
    // ------------------------------------------------------------------

    /// Digest round of a reconciliation exchange (see
    /// [`crate::reconcile`]): evaluates `request` as for a fresh session,
    /// ships every entry the replica's Bloom digest *definitely* lacks,
    /// and returns a range summary over the full item set plus a cookie
    /// already positioned at the current content. The frozen item set is
    /// stashed on the new session for the optional range round.
    ///
    /// A lost response leaves an orphan session, exactly like a lost
    /// initial poll — the replica retries the whole exchange and the
    /// orphan falls to [`SyncMaster::expire_idle`].
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for transport uniformity.
    pub fn reconcile(
        &mut self,
        request: &SearchRequest,
        req: ReconcileRequest,
    ) -> Result<ReconcileResponse, SyncError> {
        if self.obs.is_active() {
            self.obs.registry().counter("fbdr_resync_reconcile_requests_total").inc();
        }
        let sid = self.start_session(request);
        let current = self.sessions[&sid].current.clone();
        let mut items: Vec<(u64, u32)> = Vec::with_capacity(current.len());
        let mut missing: Vec<&Dn> = Vec::new();
        for &id in &current {
            let dn = self.table.dn_of(id).expect("current ids resolve");
            let Some(e) = self.dit.get(dn) else { continue };
            let h = item_hash(&dn_key(dn), entry_version(e));
            items.push((h, id));
            if !req.digest.contains(h) {
                missing.push(dn);
            }
        }
        let hashes: Vec<u64> = items.iter().map(|&(h, _)| h).collect();
        let summary = RangeSummary::build(req.summary_buckets, &hashes);
        missing.sort();
        let upserts: Vec<Entry> =
            missing.iter().filter_map(|dn| self.dit.get(dn)).cloned().collect();
        items.sort_unstable();
        let stash = ReconcileStash { shift: summary.shift(), items, at: self.ops_applied };
        let session = self.sessions.get_mut(&sid).expect("just created");
        session.sent = current;
        session.seq = 1;
        session.pending = None;
        session.reconcile = Some(stash);
        // Enforce the global stash cap at freeze time, oldest exchange
        // first, so an abandoned reconciliation can never pin more than
        // the configured item budget.
        self.enforce_stash_cap();
        let cookie = Cookie::new(sid as u32, 1);
        event!(
            self.obs,
            "resync",
            "reconcile",
            session = cookie.session(),
            digest_items = req.digest.items(),
            shipped = upserts.len(),
            content = self.sessions[&sid].sent.len(),
        );
        Ok(ReconcileResponse { upserts, summary, cookie })
    }

    /// Range round of a reconciliation exchange: for each probed bucket,
    /// answers from the item set frozen at the digest round — entries for
    /// stashed items the replica did not list (Bloom false positives) and
    /// bare hashes for replica items absent from the stash (deletions the
    /// replica must apply). Idempotent: the stash survives the call, so a
    /// duplicated or retried request gets the same answer.
    ///
    /// # Errors
    ///
    /// [`SyncError::UnknownCookie`] when the session is gone and
    /// [`SyncError::ReconcileFailed`] when no digest round is in flight
    /// for the cookie (e.g. an ordinary poll intervened).
    pub fn reconcile_ranges(
        &mut self,
        cookie: Cookie,
        req: &RangeRequest,
    ) -> Result<RangeResponse, SyncError> {
        let ops_applied = self.ops_applied;
        let now_ms = self.now_ms;
        let session = self
            .sessions
            .get_mut(&u64::from(cookie.session()))
            .ok_or(SyncError::UnknownCookie(cookie))?;
        if cookie.seq() != session.seq {
            return Err(SyncError::ReconcileFailed(
                "cookie does not match the reconcile exchange".into(),
            ));
        }
        session.last_active = ops_applied;
        session.last_active_ms = now_ms;
        let Some(stash) = session.reconcile.take() else {
            return Err(SyncError::ReconcileFailed(
                "no reconcile exchange in flight for this session".into(),
            ));
        };
        let mut missing_ids: Vec<u32> = Vec::new();
        let mut delete_hashes: Vec<u64> = Vec::new();
        for probe in &req.probes {
            // The stash is sorted by hash, and bucket index is the hash's
            // top bits, so each bucket is one contiguous stash range.
            let lo = stash
                .items
                .partition_point(|&(h, _)| bucket_of(h, stash.shift) < probe.bucket as usize);
            let hi = stash
                .items
                .partition_point(|&(h, _)| bucket_of(h, stash.shift) <= probe.bucket as usize);
            for &(h, id) in &stash.items[lo..hi] {
                if probe.hashes.binary_search(&h).is_err() {
                    missing_ids.push(id);
                }
            }
            for &h in &probe.hashes {
                let in_stash = stash.items[lo..hi].binary_search_by_key(&h, |&(sh, _)| sh).is_ok();
                if !in_stash {
                    delete_hashes.push(h);
                }
            }
        }
        session.reconcile = Some(stash);
        let mut missing: Vec<&Dn> =
            missing_ids.iter().filter_map(|&id| self.table.dn_of(id)).collect();
        missing.sort();
        // Entries deleted at the master *since the digest round* resolve
        // to nothing here; the follow-up poll delivers those deletions
        // from the session ledger.
        let upserts: Vec<Entry> =
            missing.iter().filter_map(|dn| self.dit.get(dn)).cloned().collect();
        event!(
            self.obs,
            "resync",
            "reconcile_ranges",
            session = cookie.session(),
            probes = req.probes.len(),
            shipped = upserts.len(),
            deletes = delete_hashes.len(),
        );
        Ok(RangeResponse { upserts, delete_hashes })
    }

    /// Takes the parked notification receiver of a persist session.
    /// Returns `None` if the session is unknown or the receiver was
    /// already taken.
    pub fn take_receiver(&mut self, cookie: Cookie) -> Option<Receiver<NotifyBatch>> {
        self.sessions.get_mut(&u64::from(cookie.session()))?.parked_receiver.take()
    }

    /// Abandons a session (e.g. the client dropped a persistent search).
    pub fn abandon(&mut self, cookie: Cookie) {
        if self.sessions.remove(&u64::from(cookie.session())).is_some() {
            self.routing.remove(cookie.session());
            self.note_session_count();
        }
    }

    /// Tears down every persist notification channel, as a network
    /// partition or connection reset would. Sessions stay alive and
    /// pollable with their cookies; replicas observe the disconnect and
    /// fall back to polling. Returns how many channels were dropped.
    pub fn drop_persist_channels(&mut self) -> usize {
        let mut dropped = 0;
        for s in self.sessions.values_mut() {
            if s.notify.take().is_some() {
                dropped += 1;
            }
            s.parked_receiver = None;
            s.dirty = 0;
            s.dirty_since_ms = None;
        }
        dropped
    }

    /// Expires sessions idle for more than `max_idle_ops` applied updates
    /// — the admin time limit of §5.2. Returns how many were dropped.
    ///
    /// Persist sessions are exempt only while their notification channel
    /// has a live receiver; once the client drops its end, the session is
    /// an ordinary idle candidate (otherwise abandoned persistent searches
    /// would pin their history forever).
    pub fn expire_idle(&mut self, max_idle_ops: u64) -> usize {
        let cutoff = self.ops_applied.saturating_sub(max_idle_ops);
        let dead: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| {
                let live_persist = s.notify.as_ref().is_some_and(|tx| !tx.is_disconnected());
                !(s.last_active >= cutoff || live_persist)
            })
            .map(|(&id, _)| id)
            .collect();
        for id in &dead {
            self.sessions.remove(id);
            self.routing.remove(*id as u32);
        }
        if !dead.is_empty() {
            self.note_session_count();
            // An eviction advances the stability watermark (the dead
            // session was pinning it), so reclaim in the same pass:
            // dropping the session freed its replay buffer and stash, and
            // the sweep releases every table slot only it referenced.
            self.collect_garbage();
        }
        dead.len()
    }

    // ------------------------------------------------------------------
    // Causal-stability garbage collection
    // ------------------------------------------------------------------

    /// Sets the garbage-collector knobs (see [`GcConfig`]).
    pub fn set_gc_config(&mut self, gc: GcConfig) {
        self.gc = gc;
    }

    /// The garbage-collector knobs in force.
    pub fn gc_config(&self) -> GcConfig {
        self.gc
    }

    /// The stability watermark: the master op-count every live session
    /// has acknowledged delivery through. Everything below it is
    /// reclaimable — no session can ever ask for it again. `None` when
    /// no sessions exist (everything is stable).
    pub fn stability_watermark(&self) -> Option<u64> {
        self.sessions.values().map(|s| s.stable_at).min()
    }

    /// How far the master has run ahead of its slowest acknowledger:
    /// `ops_applied - stability_watermark` (0 with no sessions).
    /// Exported as the `fbdr_resync_stability_lag` gauge.
    pub fn stability_lag(&self) -> u64 {
        self.stability_watermark()
            .map_or(0, |w| self.ops_applied.saturating_sub(w))
    }

    /// Runs one causal-stability collection pass and reports what it
    /// reclaimed:
    ///
    /// 1. **Deadline eviction** — sessions whose last activity is more
    ///    than [`GcConfig::session_deadline_ms`] master-clock ms ago are
    ///    removed (live persist channels exempt), so one dead replica
    ///    cannot pin the watermark — and everything under it — forever.
    /// 2. **Replay-buffer compaction** — pending batches already past the
    ///    replay-expiry window are dropped eagerly; the retry that would
    ///    have read them was getting [`SyncError::ReplayExpired`] anyway.
    /// 3. **Stash cap** — reconcile stashes over
    ///    [`GcConfig::stash_max_items`] total items are evicted oldest
    ///    exchange first.
    /// 4. **Id recycling** — every [`DnTable`] slot referenced by no
    ///    surviving session ledger or stash is released to the free list
    ///    (reused under a bumped generation tag), and session posting
    ///    lists are shrunk to fit. Reclamation is reference-driven, so a
    ///    GC'd master answers every live session identically to an
    ///    un-GC'd one.
    ///
    /// Runs automatically every [`GcConfig::every_ops`] applied updates.
    pub fn collect_garbage(&mut self) -> GcReport {
        self.ensure_routing();
        let mut report = GcReport::default();

        // 1. Deadline eviction.
        if let Some(deadline) = self.gc.session_deadline_ms {
            let now = self.now_ms;
            let dead: Vec<u64> = self
                .sessions
                .iter()
                .filter(|(_, s)| {
                    let live_persist =
                        s.notify.as_ref().is_some_and(|tx| !tx.is_disconnected());
                    now.saturating_sub(s.last_active_ms) > deadline && !live_persist
                })
                .map(|(&id, _)| id)
                .collect();
            for id in &dead {
                self.sessions.remove(id);
                self.routing.remove(*id as u32);
            }
            report.sessions_evicted = dead.len();
            if !dead.is_empty() {
                self.note_session_count();
            }
        }

        // 2. Eager replay-buffer drop past the expiry window.
        if let Some(limit) = self.replay_expiry_ops {
            let ops = self.ops_applied;
            for s in self.sessions.values_mut() {
                if s.pending.is_some() && ops.saturating_sub(s.pending_at) > limit {
                    s.pending = None;
                    report.pending_dropped += 1;
                }
            }
        }

        // 3. Reconcile-stash cap, oldest exchange first.
        report.stash_items_evicted = self.enforce_stash_cap();

        // 4. Mark-sweep the DN table over the surviving references and
        // shrink session posting lists whose capacity ran far ahead.
        let mut marked = vec![false; self.table.capacity()];
        let mark = |ids: &[u32], marked: &mut Vec<bool>| {
            for &id in ids {
                if let Some(m) = marked.get_mut(id as usize) {
                    *m = true;
                }
            }
        };
        for s in self.sessions.values_mut() {
            mark(&s.sent, &mut marked);
            mark(&s.current, &mut marked);
            mark(&s.departed, &mut marked);
            mark(&s.changed, &mut marked);
            if let Some(stash) = &s.reconcile {
                for &(_, id) in &stash.items {
                    if let Some(m) = marked.get_mut(id as usize) {
                        *m = true;
                    }
                }
            }
            for list in [&mut s.sent, &mut s.current, &mut s.departed, &mut s.changed] {
                if list.capacity() > 16 && list.capacity() > 2 * list.len() {
                    list.shrink_to_fit();
                }
            }
        }
        for (id, is_marked) in marked.iter().enumerate() {
            if !is_marked && self.table.release(id as u32) {
                report.ids_released += 1;
            }
        }

        if self.obs.is_active() {
            let reg = self.obs.registry();
            reg.counter("fbdr_resync_gc_runs_total").inc();
            reg.counter("fbdr_resync_gc_sessions_evicted_total")
                .add(report.sessions_evicted as u64);
            reg.counter("fbdr_resync_gc_pending_dropped_total")
                .add(report.pending_dropped as u64);
            reg.counter("fbdr_resync_gc_stash_items_evicted_total")
                .add(report.stash_items_evicted as u64);
            reg.counter("fbdr_resync_gc_ids_recycled_total").add(report.ids_released as u64);
            reg.gauge("fbdr_resync_stability_lag").set(self.stability_lag() as i64);
            reg.gauge("fbdr_resync_table_capacity").set(self.table.capacity() as i64);
        }
        event!(
            self.obs,
            "resync",
            "gc",
            evicted = report.sessions_evicted,
            pending_dropped = report.pending_dropped,
            stash_evicted = report.stash_items_evicted,
            ids_released = report.ids_released,
        );
        report
    }

    /// Evicts reconcile stashes, oldest exchange first (ties broken by
    /// session id), until the total stashed items fit
    /// [`GcConfig::stash_max_items`]. Returns how many items were
    /// evicted.
    fn enforce_stash_cap(&mut self) -> usize {
        let cap = self.gc.stash_max_items;
        let mut total: usize =
            self.sessions.values().filter_map(|s| s.reconcile.as_ref()).map(|r| r.items.len()).sum();
        if total <= cap {
            return 0;
        }
        let mut stashed: Vec<(u64, u64, usize)> = self
            .sessions
            .iter()
            .filter_map(|(&sid, s)| s.reconcile.as_ref().map(|r| (r.at, sid, r.items.len())))
            .collect();
        stashed.sort_unstable();
        let mut evicted = 0usize;
        for (_, sid, len) in stashed {
            if total <= cap {
                break;
            }
            if let Some(s) = self.sessions.get_mut(&sid) {
                s.reconcile = None;
                total -= len;
                evicted += len;
            }
        }
        evicted
    }

    /// Hook run after every applied update: collects when the op counter
    /// crosses the [`GcConfig::every_ops`] cadence.
    fn maybe_collect(&mut self) {
        if self.gc.every_ops.is_some_and(|n| n > 0 && self.ops_applied % n == 0) {
            self.collect_garbage();
        }
    }

    /// Deterministic byte accounting of the master's long-lived state
    /// (see [`MasterFootprint`]) — the soak benchmark's memory
    /// high-water instrument.
    pub fn memory_footprint(&self) -> MasterFootprint {
        let mut f = MasterFootprint {
            sessions: self.sessions.len(),
            table_live: self.table.len(),
            table_capacity: self.table.capacity(),
            table_bytes: self.table.approx_bytes(),
            ..MasterFootprint::default()
        };
        for s in self.sessions.values() {
            f.postings_bytes += 4
                * (s.sent.capacity()
                    + s.current.capacity()
                    + s.departed.capacity()
                    + s.changed.capacity());
            if let Some(pending) = &s.pending {
                f.replay_bytes +=
                    32 + pending.iter().map(SyncAction::estimated_size).sum::<usize>();
            }
            if let Some(stash) = &s.reconcile {
                f.stash_bytes += 16 + 12 * stash.items.capacity();
            }
        }
        f
    }

    /// The DNs a session's replica currently holds, sorted — test and
    /// debugging aid.
    pub fn session_sent_dns(&self, cookie: Cookie) -> Option<Vec<String>> {
        self.sessions.get(&u64::from(cookie.session())).map(|s| {
            let mut v: Vec<String> = s
                .sent
                .iter()
                .filter_map(|&id| self.table.dn_of(id))
                .map(|d| d.to_string())
                .collect();
            v.sort();
            v
        })
    }

    /// Live counts of the routing index's structures — test and
    /// observability aid.
    pub fn routing_stats(&self) -> crate::routing::RoutingStats {
        self.routing.stats()
    }

    /// Panics if the routing index violates its invariants (stale ids,
    /// unsorted or empty retained posting lists, registered sessions
    /// missing from their postings). Test helper.
    pub fn debug_validate_routing(&self) {
        self.routing.debug_validate();
        for &sid in self.sessions.keys() {
            assert!(
                self.routing.contains(sid as u32) || self.routing.is_empty(),
                "live session {sid} absent from a hydrated routing index"
            );
        }
    }

    /// Publishes the live session count gauge.
    fn note_session_count(&self) {
        if self.obs.is_active() {
            self.obs.registry().gauge("fbdr_resync_sessions").set(self.sessions.len() as i64);
        }
    }

    /// Allocates a session and returns its id (the high half of every
    /// cookie issued on it; responses fill in the sequence number).
    ///
    /// The initial content is answered through the DIT store's indexed
    /// streaming path ([`DitStore::for_each_match`]) — entries are
    /// interned straight off borrowed references, with no owned result
    /// vector and no full-DIT scan for plannable filters.
    fn start_session(&mut self, request: &SearchRequest) -> u64 {
        self.ensure_routing();
        self.next_session += 1;
        assert!(self.next_session <= u64::from(u32::MAX), "session ids exhausted");
        let sid = self.next_session;
        let mut current: Vec<u32> = Vec::new();
        let table = &mut self.table;
        self.dit.for_each_match(request, |e| current.push(table.intern(e.dn())));
        current.sort_unstable();
        current.dedup();
        self.routing.register(sid as u32, request);
        self.sessions.insert(
            sid,
            Session {
                request: request.clone(),
                sent: Vec::new(), // nothing sent yet → everything is an add
                current,
                departed: Vec::new(),
                changed: Vec::new(),
                notify: None,
                parked_receiver: None,
                dirty: 0,
                dirty_since_ms: None,
                last_active: self.ops_applied,
                last_active_ms: self.now_ms,
                // Nothing is delivered yet, but the session can never ask
                // for anything older than its own birth.
                stable_at: self.ops_applied,
                seq: 0,
                pending: None,
                pending_at: self.ops_applied,
                reconcile: None,
            },
        );
        self.note_session_count();
        sid
    }
}

/// What a session noted about one update's persist-channel handling, so
/// the master can account wakeups and overflows without the session
/// holding observability handles.
#[derive(Debug, Default, Clone, Copy)]
struct NoteOutcome {
    /// Immediate-mode batches sent.
    sent: u32,
    /// Channels torn down by the queue bound.
    overflows: u32,
}

impl NoteOutcome {
    fn merge(&mut self, other: NoteOutcome) {
        self.sent += other.sent;
        self.overflows += other.overflows;
    }
}

impl Session {
    /// Handles an entry that now exists at `entry.dn()` (added, modified
    /// or rename target). `id` is the interned id of `entry.dn()`. The
    /// entry is cloned only when an immediate-policy persist channel
    /// needs the action now; coalescing policies queue by id alone.
    fn note_arrival_or_change(
        &mut self,
        entry: &Entry,
        id: u32,
        policy: &NotifyPolicy,
        now_ms: u64,
    ) -> NoteOutcome {
        let now_in = self.request.matches(entry);
        let was_in = pl_contains(&self.current, id);
        match (was_in, now_in) {
            (false, true) => {
                pl_insert(&mut self.current, id);
                pl_remove(&mut self.departed, id);
                pl_insert(&mut self.changed, id);
                self.notify_update(|| SyncAction::Add(entry.clone()), id, policy, now_ms)
            }
            (true, true) => {
                pl_insert(&mut self.changed, id);
                self.notify_update(|| SyncAction::Modify(entry.clone()), id, policy, now_ms)
            }
            (true, false) => self.depart(id, entry.dn(), policy, now_ms),
            (false, false) => NoteOutcome::default(),
        }
    }

    /// Handles an entry that no longer exists at `dn` (deleted or rename
    /// source). `id` is the interned id of `dn`.
    fn note_departure(
        &mut self,
        id: u32,
        dn: &Dn,
        policy: &NotifyPolicy,
        now_ms: u64,
    ) -> NoteOutcome {
        if pl_contains(&self.current, id) {
            self.depart(id, dn, policy, now_ms)
        } else {
            NoteOutcome::default()
        }
    }

    fn depart(&mut self, id: u32, dn: &Dn, policy: &NotifyPolicy, now_ms: u64) -> NoteOutcome {
        pl_remove(&mut self.current, id);
        pl_remove(&mut self.changed, id);
        if pl_contains(&self.sent, id) {
            pl_insert(&mut self.departed, id);
        }
        self.notify_update(|| SyncAction::Delete(dn.clone()), id, policy, now_ms)
    }

    /// Records one raw update against the persist channel: an immediate
    /// policy sends a batch-of-one now (the action is built lazily, so
    /// nothing is cloned without an armed channel); a coalescing policy
    /// queues the update for the next flush and enforces the queue bound.
    fn notify_update(
        &mut self,
        action: impl FnOnce() -> SyncAction,
        id: u32,
        policy: &NotifyPolicy,
        now_ms: u64,
    ) -> NoteOutcome {
        let mut out = NoteOutcome::default();
        if self.notify.is_none() {
            return out;
        }
        if !policy.coalesce {
            out.sent = self.push(action(), id, now_ms);
            return out;
        }
        self.dirty += 1;
        self.dirty_since_ms.get_or_insert(now_ms);
        if self.dirty > policy.max_queue {
            // Backpressure: the consumer is not keeping up. Tear the
            // channel down — the replica observes the disconnect and
            // degrades to polling, and the ledger (which holds every
            // queued update) hands them to that poll.
            self.notify = None;
            self.parked_receiver = None;
            self.dirty = 0;
            self.dirty_since_ms = None;
            out.overflows = 1;
        }
        out
    }

    /// Streams a batch-of-one on the persist channel (immediate policy).
    /// Returns how many batches were sent (0 or 1).
    fn push(&mut self, action: SyncAction, id: u32, now_ms: u64) -> u32 {
        let Some(tx) = &self.notify else { return 0 };
        let upsert = matches!(action, SyncAction::Add(_) | SyncAction::Modify(_));
        let delete = matches!(action, SyncAction::Delete(_));
        let batch = NotifyBatch {
            actions: vec![action],
            coalesced_from: 1,
            first_enqueued_ms: now_ms,
            flushed_ms: now_ms,
        };
        if tx.send(batch).is_err() {
            // A dropped receiver means the client abandoned the persistent
            // search; stop streaming — the session stays pollable and the
            // untouched poll ledger takes over from here.
            self.notify = None;
            return 0;
        }
        // The notification is in the replica's channel (delivery is the
        // channel's job now), so advance the poll ledger to match: a later
        // poll on this session must not re-send what the stream carried —
        // and, more importantly, must not *skip* the departure of an entry
        // the replica only learned about through the stream.
        if upsert {
            pl_insert(&mut self.sent, id);
            pl_remove(&mut self.changed, id);
        } else if delete {
            pl_remove(&mut self.sent, id);
            pl_remove(&mut self.departed, id);
        }
        1
    }

    /// Builds the poll/flush batch without touching session state: adds
    /// (current \ sent), modifies (changed ∩ current ∩ sent) and deletes
    /// (departed). Ids resolve through the master's [`DnTable`]; each
    /// action group is emitted in DN order (ids are assigned in
    /// first-touch order, which is not canonical across masters).
    fn build_actions(&self, dit: &DitStore, table: &DnTable) -> Vec<SyncAction> {
        let mut actions = Vec::new();
        let mut departed: Vec<&Dn> =
            self.departed.iter().filter_map(|&id| table.dn_of(id)).collect();
        departed.sort();
        for dn in departed {
            actions.push(SyncAction::Delete(dn.clone()));
        }
        let mut adds: Vec<&Dn> = self
            .current
            .iter()
            .filter(|id| !pl_contains(&self.sent, **id))
            .filter_map(|&id| table.dn_of(id))
            .collect();
        adds.sort();
        for dn in adds {
            if let Some(e) = dit.get(dn) {
                actions.push(SyncAction::Add(e.clone()));
            }
        }
        let mut mods: Vec<&Dn> = self
            .changed
            .iter()
            .filter(|id| pl_contains(&self.sent, **id) && pl_contains(&self.current, **id))
            .filter_map(|&id| table.dn_of(id))
            .collect();
        mods.sort();
        for dn in mods {
            if let Some(e) = dit.get(dn) {
                actions.push(SyncAction::Modify(e.clone()));
            }
        }
        actions
    }

    /// Advances the session past a delivered batch: the replica now holds
    /// the current content, and the history intervals restart.
    fn commit_drain(&mut self) {
        self.sent = self.current.clone();
        self.departed.clear();
        self.changed.clear();
    }

    /// [`Session::build_actions`] + [`Session::commit_drain`] — the poll
    /// path, where delivery is the replay buffer's job.
    fn drain_actions(&mut self, dit: &DitStore, table: &DnTable) -> Vec<SyncAction> {
        let actions = self.build_actions(dit, table);
        self.commit_drain();
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReplicaContent;
    use fbdr_dit::Modification;
    use fbdr_ldap::{Filter, Rdn, Scope};

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn person(cn: &str, dept: &str) -> Entry {
        Entry::new(dn(&format!("cn={cn},o=xyz")))
            .with("objectclass", "person")
            .with("cn", cn)
            .with("dept", dept)
    }

    fn master_with(entries: Vec<Entry>) -> SyncMaster {
        let mut m = SyncMaster::new();
        m.dit_mut().add_suffix(dn("o=xyz"));
        m.dit_mut().add(Entry::new(dn("o=xyz"))).unwrap();
        for e in entries {
            m.dit_mut().add(e).unwrap();
        }
        m
    }

    fn dept7() -> SearchRequest {
        SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::parse("(dept=7)").unwrap())
    }

    #[test]
    fn initial_sync_sends_full_content() {
        let mut m = master_with(vec![person("a", "7"), person("b", "7"), person("c", "9")]);
        let resp = m.resync(&dept7(), ReSyncControl::poll(None)).unwrap();
        assert_eq!(resp.actions.len(), 2);
        assert!(resp.actions.iter().all(|a| matches!(a, SyncAction::Add(_))));
        assert!(resp.cookie.is_some());
    }

    #[test]
    fn incremental_poll_sends_only_changes() {
        let mut m = master_with(vec![person("a", "7"), person("b", "9")]);
        let req = dept7();
        let c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();

        // b moves into the content; a is modified in place; add c outside.
        m.apply(UpdateOp::Modify {
            dn: dn("cn=b,o=xyz"),
            mods: vec![Modification::Replace("dept".into(), vec!["7".into()])],
        })
        .unwrap();
        m.apply(UpdateOp::Modify {
            dn: dn("cn=a,o=xyz"),
            mods: vec![Modification::Replace("mail".into(), vec!["a@x".into()])],
        })
        .unwrap();
        m.apply(UpdateOp::Add(person("c", "9"))).unwrap();

        let resp = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        let mut kinds: Vec<String> = resp
            .actions
            .iter()
            .map(|a| format!("{a}"))
            .collect();
        kinds.sort();
        assert_eq!(kinds, ["cn=a,o=xyz, mod", "cn=b,o=xyz, add"]);

        // Next poll (with the newly issued cookie) is empty.
        let c1 = resp.cookie.unwrap();
        let resp2 = m.resync(&req, ReSyncControl::poll(Some(c1))).unwrap();
        assert!(resp2.actions.is_empty());
    }

    #[test]
    fn departure_sends_delete_dn_only() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        // Modified out of the content.
        m.apply(UpdateOp::Modify {
            dn: dn("cn=a,o=xyz"),
            mods: vec![Modification::Replace("dept".into(), vec!["8".into()])],
        })
        .unwrap();
        let resp = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        assert_eq!(resp.actions, vec![SyncAction::Delete(dn("cn=a,o=xyz"))]);
        let t = resp.traffic();
        assert_eq!(t.dn_only, 1);
        assert_eq!(t.full_entries, 0);
    }

    #[test]
    fn unsent_arrivals_that_depart_are_never_mentioned() {
        let mut m = master_with(vec![]);
        let req = dept7();
        let c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        // Enters and leaves between polls: replica never needs to know.
        m.apply(UpdateOp::Add(person("x", "7"))).unwrap();
        m.apply(UpdateOp::Delete(dn("cn=x,o=xyz"))).unwrap();
        let resp = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        assert!(resp.actions.is_empty());
    }

    #[test]
    fn rename_is_delete_plus_add() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        m.apply(UpdateOp::ModifyDn {
            dn: dn("cn=a,o=xyz"),
            new_rdn: Rdn::new("cn", "a2"),
            new_superior: None,
        })
        .unwrap();
        let resp = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        assert_eq!(resp.actions.len(), 2);
        assert!(resp
            .actions
            .iter()
            .any(|a| matches!(a, SyncAction::Delete(d) if *d == dn("cn=a,o=xyz"))));
        assert!(resp
            .actions
            .iter()
            .any(|a| matches!(a, SyncAction::Add(e) if e.dn() == &dn("cn=a2,o=xyz"))));
    }

    #[test]
    fn replica_content_converges_through_polls() {
        let mut m = master_with(vec![person("a", "7"), person("b", "7")]);
        let req = dept7();
        let mut replica = ReplicaContent::new();
        let resp = m.resync(&req, ReSyncControl::poll(None)).unwrap();
        let c = resp.cookie.unwrap();
        replica.apply_all(&resp.actions);

        m.apply(UpdateOp::Delete(dn("cn=a,o=xyz"))).unwrap();
        m.apply(UpdateOp::Add(person("d", "7"))).unwrap();
        let resp = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        replica.apply_all(&resp.actions);

        let master_dns: Vec<String> = {
            let mut v: Vec<String> = m.dit().search_dns(&req).iter().map(|d| d.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(replica.sorted_dns(), master_dns);
    }

    #[test]
    fn persist_mode_streams_notifications() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let (resp, rx) = m.resync_persist(&req, None).unwrap();
        assert_eq!(resp.actions.len(), 1);

        m.apply(UpdateOp::Add(person("b", "7"))).unwrap();
        m.apply(UpdateOp::Delete(dn("cn=a,o=xyz"))).unwrap();
        m.apply(UpdateOp::Add(person("z", "9"))).unwrap(); // outside content

        // Immediate policy: one wakeup (batch-of-one) per update.
        let batches: Vec<NotifyBatch> = rx.try_iter().collect();
        assert_eq!(batches.len(), 2);
        assert!(batches.iter().all(|b| b.coalesced_from == 1));
        let notes: Vec<SyncAction> =
            batches.into_iter().flat_map(|b| b.actions).collect();
        assert_eq!(notes.len(), 2);
        assert!(matches!(&notes[0], SyncAction::Add(e) if e.dn() == &dn("cn=b,o=xyz")));
        assert!(matches!(&notes[1], SyncAction::Delete(d) if *d == dn("cn=a,o=xyz")));
        assert_eq!(m.notify_wakeups(), 2);
        assert_eq!(m.notify_updates(), 2);
    }

    #[test]
    fn poll_then_upgrade_to_persist() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        m.apply(UpdateOp::Add(person("b", "7"))).unwrap();
        // Resume with persist: catch-up batch plus a live channel — the
        // Figure 3 session shape.
        let (resp, rx) = m.resync_persist(&req, Some(c)).unwrap();
        assert_eq!(resp.actions.len(), 1);
        m.apply(UpdateOp::Add(person("e", "7"))).unwrap();
        assert_eq!(rx.try_iter().count(), 1);
    }

    #[test]
    fn sync_end_terminates_session() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        assert_eq!(m.session_count(), 1);
        m.resync(&req, ReSyncControl::sync_end(c)).unwrap();
        assert_eq!(m.session_count(), 0);
        assert_eq!(
            m.resync(&req, ReSyncControl::poll(Some(c))),
            Err(SyncError::UnknownCookie(c))
        );
    }

    #[test]
    fn request_mismatch_rejected() {
        let mut m = master_with(vec![person("a", "7")]);
        let c = m.resync(&dept7(), ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        let other = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::parse("(dept=8)").unwrap());
        assert_eq!(
            m.resync(&other, ReSyncControl::poll(Some(c))),
            Err(SyncError::RequestMismatch(c))
        );
    }

    #[test]
    fn master_state_survives_serde_round_trip() {
        // A master (with live sessions and history) serializes and
        // restores; polling continues incrementally with the old cookie.
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        m.apply(UpdateOp::Add(person("b", "7"))).unwrap();

        let snapshot = serde_json::to_string(&m).expect("master serializes");
        let mut restored: SyncMaster = serde_json::from_str(&snapshot).expect("deserializes");
        assert_eq!(restored.session_count(), 1);
        assert_eq!(restored.dit().len(), m.dit().len());

        let resp = restored.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        assert_eq!(resp.actions.len(), 1);
        assert!(matches!(&resp.actions[0], SyncAction::Add(e) if e.dn() == &dn("cn=b,o=xyz")));
        // Searches on the restored DIT use rebuilt state correctly.
        assert_eq!(restored.dit().search_dns(&req).len(), 2);
    }

    #[test]
    fn restored_persist_session_degrades_to_polling() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let (resp, _rx) = m.resync_persist(&req, None).unwrap();
        let c = resp.cookie.unwrap();
        let snapshot = serde_json::to_string(&m).expect("serializes");
        let mut restored: SyncMaster = serde_json::from_str(&snapshot).expect("deserializes");
        // The channel is gone, but the cookie still works for polling.
        restored.apply(UpdateOp::Add(person("b", "7"))).unwrap();
        let resp = restored.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        assert_eq!(resp.actions.len(), 1);
        assert!(restored.take_receiver(c).is_none());
    }

    #[test]
    fn retried_poll_redelivers_lost_batch() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let c0 = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        m.apply(UpdateOp::Delete(dn("cn=a,o=xyz"))).unwrap();

        // First poll builds the batch; pretend the response is lost.
        let lost = m.resync(&req, ReSyncControl::poll(Some(c0))).unwrap();
        assert_eq!(lost.actions, vec![SyncAction::Delete(dn("cn=a,o=xyz"))]);

        // The replica retries with the cookie it still holds — same
        // batch, same cookie, nothing dropped.
        let replay = m.resync(&req, ReSyncControl::poll(Some(c0))).unwrap();
        assert_eq!(replay.actions, lost.actions);
        assert_eq!(replay.cookie, lost.cookie);
        assert_eq!(m.redeliveries(), 1);

        // Acknowledging with the replayed cookie resumes incrementally.
        m.apply(UpdateOp::Add(person("b", "7"))).unwrap();
        let next = m.resync(&req, ReSyncControl::poll(replay.cookie)).unwrap();
        assert_eq!(next.actions.len(), 1);
        assert!(matches!(&next.actions[0], SyncAction::Add(e) if e.dn() == &dn("cn=b,o=xyz")));
    }

    #[test]
    fn duplicate_delivery_is_idempotent() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let c0 = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        m.apply(UpdateOp::Add(person("b", "7"))).unwrap();
        // The same request is delivered twice (a retransmitting network).
        let first = m.resync(&req, ReSyncControl::poll(Some(c0))).unwrap();
        let second = m.resync(&req, ReSyncControl::poll(Some(c0))).unwrap();
        // Byte-for-byte the same batch — only the redelivery marker differs.
        assert_eq!(first.actions, second.actions);
        assert_eq!(first.cookie, second.cookie);
        assert!(!first.redelivered);
        assert!(second.redelivered);
        assert_eq!(m.redeliveries(), 1);
    }

    #[test]
    fn replay_expires_after_configured_ops() {
        let mut m = master_with(vec![person("a", "7")]);
        m.set_replay_expiry_ops(0);
        let req = dept7();
        let c0 = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        m.apply(UpdateOp::Delete(dn("cn=a,o=xyz"))).unwrap();
        let lost = m.resync(&req, ReSyncControl::poll(Some(c0))).unwrap();
        assert_eq!(lost.actions.len(), 1);
        // More updates land before the retry; the buffer has expired. The
        // error reports how far behind the replica is (1 update landed
        // after the lost batch was built).
        m.apply(UpdateOp::Add(person("b", "7"))).unwrap();
        let err = m.resync(&req, ReSyncControl::poll(Some(c0))).unwrap_err();
        assert_eq!(
            err,
            SyncError::ReplayExpired { cookie: c0, oldest_retained: 1, ops_applied: 2 }
        );
        assert_eq!(err.estimated_divergence(), Some(1));
        // The session itself stays alive: the *current* cookie still works.
        let resp = m.resync(&req, ReSyncControl::poll(lost.cookie)).unwrap();
        assert_eq!(resp.actions.len(), 1);
    }

    #[test]
    fn stale_cookie_is_rejected() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let c0 = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        let c1 = m.resync(&req, ReSyncControl::poll(Some(c0))).unwrap().cookie.unwrap();
        let _c2 = m.resync(&req, ReSyncControl::poll(Some(c1))).unwrap().cookie.unwrap();
        // c0 is now two exchanges behind — not replayable.
        assert!(matches!(
            m.resync(&req, ReSyncControl::poll(Some(c0))),
            Err(SyncError::ReplayExpired { cookie, .. }) if cookie == c0
        ));
    }

    #[test]
    fn crash_restart_preserves_pending_batch() {
        // A response is built, the master crashes before the replica gets
        // it, and the restarted master can still replay it.
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let c0 = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        m.apply(UpdateOp::Delete(dn("cn=a,o=xyz"))).unwrap();
        let lost = m.resync(&req, ReSyncControl::poll(Some(c0))).unwrap();

        let snapshot = serde_json::to_string(&m).expect("serializes");
        let mut restored: SyncMaster = serde_json::from_str(&snapshot).expect("deserializes");
        let replay = restored.resync(&req, ReSyncControl::poll(Some(c0))).unwrap();
        assert_eq!(replay.actions, lost.actions);
        assert_eq!(replay.cookie, lost.cookie);
        assert_eq!(restored.redeliveries(), 1);
    }

    #[test]
    fn legacy_mode_loses_unacked_batch() {
        // The pre-fix behavior this PR guards against: with replay
        // disabled, a lost response silently discards its batch — the
        // replica never learns about the deletion and diverges forever.
        let mut m = master_with(vec![person("a", "7")]);
        m.disable_replay();
        let req = dept7();
        let mut replica = ReplicaContent::new();
        let resp = m.resync(&req, ReSyncControl::poll(None)).unwrap();
        let c0 = resp.cookie.unwrap();
        replica.apply_all(&resp.actions);

        m.apply(UpdateOp::Delete(dn("cn=a,o=xyz"))).unwrap();
        // The delete batch is built but the response never arrives.
        let lost = m.resync(&req, ReSyncControl::poll(Some(c0))).unwrap();
        assert_eq!(lost.actions.len(), 1);
        // The retry comes back empty: the session history was already
        // cleared, so the deletion is gone for good.
        let retry = m.resync(&req, ReSyncControl::poll(Some(c0))).unwrap();
        assert!(retry.actions.is_empty());
        replica.apply_all(&retry.actions);
        assert_eq!(replica.len(), 1, "replica still holds the deleted entry");
        assert!(m.dit().search_dns(&req).is_empty(), "master content is empty");
    }

    #[test]
    fn idle_sessions_expire() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let _c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        for i in 0..5 {
            m.apply(UpdateOp::Add(person(&format!("p{i}"), "9"))).unwrap();
        }
        assert_eq!(m.expire_idle(10), 0);
        assert_eq!(m.expire_idle(3), 1);
        assert_eq!(m.session_count(), 0);
    }

    #[test]
    fn abandoned_persist_sessions_expire_too() {
        // Regression: a persist session whose client dropped the receiver
        // used to be exempt from idle expiry forever, pinning its history.
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let (_resp, rx) = m.resync_persist(&req, None).unwrap();
        let live = SearchRequest::new(
            dn("o=xyz"),
            Scope::Subtree,
            Filter::parse("(dept=9)").unwrap(),
        );
        let (_resp2, live_rx) = m.resync_persist(&live, None).unwrap();
        for i in 0..5 {
            m.apply(UpdateOp::Add(person(&format!("p{i}"), "8"))).unwrap();
        }
        // Both receivers alive: neither session expires.
        assert_eq!(m.expire_idle(3), 0);
        // The first client goes away; only its session is collectable.
        drop(rx);
        assert_eq!(m.expire_idle(3), 1);
        assert_eq!(m.session_count(), 1);
        drop(live_rx);
        assert_eq!(m.expire_idle(3), 1);
        assert_eq!(m.session_count(), 0);
    }

    #[test]
    fn reconcile_ships_bloom_negatives_and_reestablishes_session() {
        use crate::reconcile::{entry_item_hash, BloomDigest, ReconcileRequest};
        let mut m = master_with(vec![person("a", "7"), person("b", "7"), person("c", "7")]);
        let req = dept7();
        // The replica holds a and b at the master's versions; c is missing.
        let held: Vec<u64> = [person("a", "7"), person("b", "7")]
            .iter()
            .map(entry_item_hash)
            .collect();
        let digest = BloomDigest::build(&held, 0.01, 99);
        let resp = m
            .reconcile(&req, ReconcileRequest { digest, summary_buckets: 16 })
            .unwrap();
        // c is a Bloom negative → shipped; a and b may only appear as
        // (improbable) false-positive omissions, never as definite ships.
        assert!(resp.upserts.iter().any(|e| e.dn() == &dn("cn=c,o=xyz")));
        assert_eq!(resp.cookie.seq(), 1);

        // The cookie is live at the current content: an incremental poll
        // sees only post-reconcile updates.
        m.apply(UpdateOp::Add(person("d", "7"))).unwrap();
        let poll = m.resync(&req, ReSyncControl::poll(Some(resp.cookie))).unwrap();
        assert_eq!(poll.actions.len(), 1);
        assert!(matches!(&poll.actions[0], SyncAction::Add(e) if e.dn() == &dn("cn=d,o=xyz")));
    }

    #[test]
    fn reconcile_ranges_answers_from_frozen_stash() {
        use crate::reconcile::{
            bucket_of, entry_item_hash, BloomDigest, RangeProbe, RangeRequest, ReconcileRequest,
        };
        let mut m = master_with(vec![person("a", "7"), person("b", "7")]);
        let req = dept7();
        // The replica holds a *stale* version of a, plus a ghost entry x
        // the master never had. Digest over those two hashes.
        let stale_a = entry_item_hash(&person("a", "7").with("mail", "old@x"));
        let ghost_x = entry_item_hash(&person("x", "7"));
        let digest = BloomDigest::build(&[stale_a, ghost_x], 0.01, 7);
        let resp = m
            .reconcile(&req, ReconcileRequest { digest, summary_buckets: 16 })
            .unwrap();
        let shift = resp.summary.shift();

        // Probe every bucket with the replica's post-round-one set (here:
        // its two local hashes — pretend round one shipped nothing it
        // kept). The master must ship every stash item not listed and
        // flag both replica-only hashes for deletion.
        let mut probes: Vec<RangeProbe> = (0..resp.summary.len() as u32)
            .map(|b| RangeProbe { bucket: b, hashes: Vec::new() })
            .collect();
        for h in [stale_a, ghost_x] {
            probes[bucket_of(h, shift)].hashes.push(h);
        }
        for p in &mut probes {
            p.hashes.sort_unstable();
        }
        let r2 = m.reconcile_ranges(resp.cookie, &RangeRequest { probes: probes.clone() }).unwrap();
        let mut shipped: Vec<String> =
            r2.upserts.iter().map(|e| e.dn().to_string()).collect();
        shipped.sort();
        assert_eq!(shipped, ["cn=a,o=xyz", "cn=b,o=xyz"]);
        let mut dels = r2.delete_hashes.clone();
        dels.sort_unstable();
        let mut expect = vec![stale_a, ghost_x];
        expect.sort_unstable();
        assert_eq!(dels, expect);

        // Idempotent: a duplicated range request gets the same answer.
        let again = m.reconcile_ranges(resp.cookie, &RangeRequest { probes }).unwrap();
        assert_eq!(again, r2);
    }

    #[test]
    fn reconcile_ranges_requires_an_exchange_in_flight() {
        use crate::reconcile::{BloomDigest, RangeRequest, ReconcileRequest};
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let digest = BloomDigest::build(&[], 0.01, 1);
        let resp = m
            .reconcile(&req, ReconcileRequest { digest, summary_buckets: 16 })
            .unwrap();
        // An ordinary poll supersedes the exchange and clears the stash.
        let poll = m.resync(&req, ReSyncControl::poll(Some(resp.cookie))).unwrap();
        assert!(matches!(
            m.reconcile_ranges(resp.cookie, &RangeRequest { probes: vec![] }),
            Err(SyncError::ReconcileFailed(_))
        ));
        // A cookie from the wrong sequence is rejected too.
        assert!(matches!(
            m.reconcile_ranges(poll.cookie.unwrap(), &RangeRequest { probes: vec![] }),
            Err(SyncError::ReconcileFailed(_))
        ));
        // A dead session is an unknown cookie.
        let dead = Cookie::new(999, 1);
        assert_eq!(
            m.reconcile_ranges(dead, &RangeRequest { probes: vec![] }),
            Err(SyncError::UnknownCookie(dead))
        );
    }

    #[test]
    fn coalescing_policy_batches_updates_per_wakeup() {
        let mut m = master_with(vec![person("a", "7")]);
        m.set_notify_policy(NotifyPolicy::coalescing(10, 50));
        let req = dept7();
        let (resp, rx) = m.resync_persist(&req, None).unwrap();
        let c = resp.cookie.unwrap();

        // Three updates land inside one flush window; two touch the same
        // entry (add then modify), so they coalesce into one action.
        m.advance_to(100);
        m.apply(UpdateOp::Add(person("b", "7"))).unwrap();
        m.apply(UpdateOp::Modify {
            dn: dn("cn=b,o=xyz"),
            mods: vec![Modification::Replace("mail".into(), vec!["b@x".into()])],
        })
        .unwrap();
        m.apply(UpdateOp::Add(person("c", "7"))).unwrap();

        // Nothing sent yet: the queue is below max_batch and the delay
        // has not elapsed.
        assert!(rx.try_recv().is_err());
        m.advance_to(120);
        assert!(m.flush_notifications(false).is_empty(), "not due at 20ms of 50ms");

        m.advance_to(151);
        let flushes = m.flush_notifications(false);
        assert_eq!(flushes.len(), 1);
        assert_eq!(flushes[0].coalesced_from, 3);
        assert_eq!(flushes[0].first_enqueued_ms, 100);

        let batch = rx.try_recv().unwrap();
        assert_eq!(batch.coalesced_from, 3);
        assert_eq!(batch.first_enqueued_ms, 100);
        assert_eq!(batch.flushed_ms, 151);
        // Two adds (b carries its modify folded in), one wakeup for three
        // raw updates.
        assert_eq!(batch.actions.len(), 2);
        assert!(batch.actions.iter().all(|a| matches!(a, SyncAction::Add(_))));
        assert!(batch.actions.iter().any(
            |a| matches!(a, SyncAction::Add(e) if e.has_value(&"mail".into(), &"b@x".into()))
        ));
        assert_eq!(m.notify_wakeups(), 1);
        assert_eq!(m.notify_updates(), 3);

        // A later poll must not re-send what the flush delivered.
        let resp = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        assert!(resp.actions.is_empty(), "flush advanced the poll ledger: {:?}", resp.actions);
    }

    #[test]
    fn coalescing_max_batch_makes_flush_due_without_delay() {
        let mut m = master_with(vec![]);
        m.set_notify_policy(NotifyPolicy::coalescing(2, 1_000_000));
        let req = dept7();
        let (_, rx) = m.resync_persist(&req, None).unwrap();
        m.apply(UpdateOp::Add(person("a", "7"))).unwrap();
        assert!(m.flush_notifications(false).is_empty(), "1 of 2 queued");
        m.apply(UpdateOp::Add(person("b", "7"))).unwrap();
        let flushes = m.flush_notifications(false);
        assert_eq!(flushes.len(), 1);
        assert_eq!(flushes[0].coalesced_from, 2);
        assert_eq!(rx.try_recv().unwrap().actions.len(), 2);
    }

    #[test]
    fn cancelled_updates_flush_without_a_wakeup() {
        let mut m = master_with(vec![]);
        m.set_notify_policy(NotifyPolicy::coalescing(1, 0));
        let req = dept7();
        let (_, rx) = m.resync_persist(&req, None).unwrap();
        // An entry arrives and departs inside one flush window: the
        // replica never needs to know, so no wakeup is spent.
        m.apply(UpdateOp::Add(person("x", "7"))).unwrap();
        m.apply(UpdateOp::Delete(dn("cn=x,o=xyz"))).unwrap();
        assert!(m.flush_notifications(true).is_empty());
        assert!(rx.try_recv().is_err());
        assert_eq!(m.notify_wakeups(), 0);
    }

    #[test]
    fn notify_queue_overflow_tears_down_channel_but_keeps_ledger() {
        let mut m = master_with(vec![]);
        m.set_notify_policy(NotifyPolicy::coalescing(100, 1_000_000).with_max_queue(3));
        let req = dept7();
        let (resp, rx) = m.resync_persist(&req, None).unwrap();
        let c = resp.cookie.unwrap();
        for i in 0..5 {
            m.apply(UpdateOp::Add(person(&format!("p{i}"), "7"))).unwrap();
        }
        // The 4th queued update breached the bound: channel torn down.
        assert_eq!(m.notify_overflows(), 1);
        assert!(matches!(
            rx.try_recv(),
            Err(crossbeam::channel::TryRecvError::Disconnected)
        ));
        assert!(m.flush_notifications(true).is_empty());
        // Nothing lost: the poll ledger delivers all five entries.
        let resp = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        assert_eq!(resp.actions.len(), 5);
    }

    #[test]
    fn flush_to_dropped_receiver_preserves_ledger_for_polls() {
        let mut m = master_with(vec![]);
        m.set_notify_policy(NotifyPolicy::coalescing(1, 0));
        let req = dept7();
        let (resp, rx) = m.resync_persist(&req, None).unwrap();
        let c = resp.cookie.unwrap();
        m.apply(UpdateOp::Add(person("a", "7"))).unwrap();
        drop(rx);
        // The flush observes the disconnect and must not consume the
        // ledger: the add still reaches the replica through its poll.
        assert!(m.flush_notifications(true).is_empty());
        assert_eq!(m.notify_wakeups(), 0);
        let resp = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        assert_eq!(resp.actions.len(), 1);
    }

    #[test]
    fn immediate_policy_is_unaffected_by_flush_calls() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let (_, rx) = m.resync_persist(&req, None).unwrap();
        m.apply(UpdateOp::Add(person("b", "7"))).unwrap();
        // Immediate mode queues nothing, so flushing finds nothing.
        assert!(m.flush_notifications(true).is_empty());
        assert_eq!(rx.try_iter().count(), 1);
    }

    #[test]
    fn drop_persist_channels_keeps_sessions_pollable() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let (resp, rx) = m.resync_persist(&req, None).unwrap();
        let c = resp.cookie.unwrap();
        assert_eq!(m.drop_persist_channels(), 1);
        // The receiver observes the disconnect...
        assert!(matches!(
            rx.try_recv(),
            Err(crossbeam::channel::TryRecvError::Disconnected)
        ));
        // ...but the cookie still resumes the session incrementally.
        m.apply(UpdateOp::Add(person("b", "7"))).unwrap();
        let resp = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        assert_eq!(resp.actions.len(), 1);
    }

    // ------------------------------------------------------------------
    // Causal-stability GC
    // ------------------------------------------------------------------

    #[test]
    fn watermark_advances_on_ack() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        assert_eq!(m.stability_watermark(), None, "no sessions: everything stable");
        let c0 = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        assert_eq!(m.stability_watermark(), Some(0));
        for i in 0..4 {
            m.apply(UpdateOp::Add(person(&format!("p{i}"), "7"))).unwrap();
        }
        assert_eq!(m.stability_lag(), 4, "nothing acked since op 0");
        // The poll both acks the initial batch (built at op 0) and issues
        // a new one (built at op 4) — stability stays at 0 until the new
        // batch is acked in turn.
        let c1 = m.resync(&req, ReSyncControl::poll(Some(c0))).unwrap().cookie.unwrap();
        assert_eq!(m.stability_watermark(), Some(0));
        let _c2 = m.resync(&req, ReSyncControl::poll(Some(c1))).unwrap().cookie.unwrap();
        assert_eq!(m.stability_watermark(), Some(4));
        assert_eq!(m.stability_lag(), 0);
    }

    #[test]
    fn gc_recycles_ids_of_departed_entries() {
        let mut m = master_with(vec![person("a", "7")]);
        m.set_gc_config(GcConfig { every_ops: None, ..GcConfig::default() });
        let req = dept7();
        let mut c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        // Churn distinct DNs through the content, polling (and acking)
        // after each add/delete pair so departures leave the ledger.
        for i in 0..50 {
            m.apply(UpdateOp::Add(person(&format!("churn{i}"), "7"))).unwrap();
            m.apply(UpdateOp::Delete(dn(&format!("cn=churn{i},o=xyz")))).unwrap();
            c = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap().cookie.unwrap();
        }
        let before = m.memory_footprint();
        let report = m.collect_garbage();
        assert!(report.ids_released >= 49, "churned slots reclaimed: {report:?}");
        let after = m.memory_footprint();
        assert!(after.table_bytes < before.table_bytes);
        assert_eq!(after.table_live, 1, "only cn=a remains referenced");
        // Re-interning after release reuses slots instead of growing.
        let cap = after.table_capacity;
        m.apply(UpdateOp::Add(person("fresh", "7"))).unwrap();
        m.apply(UpdateOp::Delete(dn("cn=fresh,o=xyz"))).unwrap();
        c = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap().cookie.unwrap();
        let _ = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        m.collect_garbage();
        assert_eq!(m.memory_footprint().table_capacity, cap, "id space stopped growing");
    }

    #[test]
    fn gc_is_transparent_to_live_sessions() {
        // Twin masters over the identical history: one collects after
        // every op, one never; every response must be identical.
        let entries = vec![person("a", "7"), person("b", "9")];
        let mut gc = master_with(entries.clone());
        gc.set_gc_config(GcConfig {
            session_deadline_ms: None,
            stash_max_items: 1 << 20,
            every_ops: Some(1),
        });
        let mut raw = master_with(entries);
        raw.set_gc_config(GcConfig::disabled());
        let req = dept7();
        let mut cookies = Vec::new();
        for m in [&mut gc, &mut raw] {
            cookies.push(m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap());
        }
        assert_eq!(cookies[0], cookies[1]);
        let mut cookie = cookies[0];
        for i in 0..30 {
            let ops = [
                UpdateOp::Add(person(&format!("x{i}"), "7")),
                UpdateOp::Delete(dn(&format!("cn=x{i},o=xyz"))),
                UpdateOp::Modify {
                    dn: dn("cn=a,o=xyz"),
                    mods: vec![Modification::Replace("mail".into(), vec![format!("m{i}@x").into()])],
                },
            ];
            for op in ops {
                gc.apply(op.clone()).unwrap();
                raw.apply(op).unwrap();
            }
            let a = gc.resync(&req, ReSyncControl::poll(Some(cookie))).unwrap();
            let b = raw.resync(&req, ReSyncControl::poll(Some(cookie))).unwrap();
            assert_eq!(a, b, "round {i}");
            // Duplicate delivery of the same request must also agree.
            let ra = gc.resync(&req, ReSyncControl::poll(Some(cookie))).unwrap();
            let rb = raw.resync(&req, ReSyncControl::poll(Some(cookie))).unwrap();
            assert_eq!(ra, rb, "redelivery round {i}");
            cookie = a.cookie.unwrap();
        }
        assert!(gc.memory_footprint().table_capacity < raw.memory_footprint().table_capacity);
    }

    #[test]
    fn deadline_evicts_unreachable_sessions_not_live_persist() {
        let mut m = master_with(vec![person("a", "7")]);
        m.set_gc_config(GcConfig {
            session_deadline_ms: Some(100),
            ..GcConfig::default()
        });
        // A poll session that goes silent, and a persist session with a
        // live channel that is just as silent.
        let _dead = m.resync(&dept7(), ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        let live = SearchRequest::new(
            dn("o=xyz"),
            Scope::Subtree,
            Filter::parse("(dept=9)").unwrap(),
        );
        let (_resp, rx) = m.resync_persist(&live, None).unwrap();
        m.advance_to(50);
        assert_eq!(m.collect_garbage().sessions_evicted, 0, "inside the deadline");
        m.advance_to(200);
        let report = m.collect_garbage();
        assert_eq!(report.sessions_evicted, 1, "silent poll session evicted");
        assert_eq!(m.session_count(), 1, "live persist channel exempt");
        assert!(report.ids_released > 0, "the evicted session's slots freed");
        drop(rx);
        m.advance_to(400);
        assert_eq!(m.collect_garbage().sessions_evicted, 1, "dead channel: fair game");
        assert_eq!(m.session_count(), 0);
    }

    #[test]
    fn gc_drops_expired_pending_eagerly_with_same_retry_outcome() {
        let mut m = master_with(vec![person("a", "7")]);
        m.set_replay_expiry_ops(2);
        m.set_gc_config(GcConfig { every_ops: None, ..GcConfig::default() });
        let req = dept7();
        let c0 = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        m.apply(UpdateOp::Add(person("b", "7"))).unwrap();
        let _c1 = m.resync(&req, ReSyncControl::poll(Some(c0))).unwrap();
        for i in 0..3 {
            m.apply(UpdateOp::Add(person(&format!("p{i}"), "9"))).unwrap();
        }
        // The unacked batch is past the window: GC frees its bytes now.
        let before = m.memory_footprint().replay_bytes;
        let report = m.collect_garbage();
        assert_eq!(report.pending_dropped, 1);
        assert!(m.memory_footprint().replay_bytes < before);
        // The retry sees exactly what it would have seen without GC.
        let err = m.resync(&req, ReSyncControl::poll(Some(c0))).unwrap_err();
        assert!(matches!(err, SyncError::ReplayExpired { .. }));
    }

    #[test]
    fn stash_cap_evicts_oldest_exchange_first() {
        use crate::reconcile::{BloomDigest, RangeProbe, RangeRequest, ReconcileRequest};
        let mut m = master_with(vec![
            person("a", "7"),
            person("b", "7"),
            person("c", "7"),
        ]);
        m.set_gc_config(GcConfig {
            stash_max_items: 4,
            every_ops: None,
            session_deadline_ms: None,
        });
        let digest = || BloomDigest::build(&[], 0.01, 1);
        let old = m
            .reconcile(&dept7(), ReconcileRequest { digest: digest(), summary_buckets: 4 })
            .unwrap();
        // A second exchange pushes the stashed total (3 + 3) over the cap
        // of 4: the older exchange's stash is evicted, the new survives.
        let new = m
            .reconcile(&dept7(), ReconcileRequest { digest: digest(), summary_buckets: 4 })
            .unwrap();
        let probe = RangeRequest { probes: vec![RangeProbe { bucket: 0, hashes: vec![] }] };
        let err = m.reconcile_ranges(old.cookie, &probe).unwrap_err();
        assert!(
            matches!(err, SyncError::ReconcileFailed(_)),
            "evicted exchange falls to reinstall: {err:?}"
        );
        assert!(m.reconcile_ranges(new.cookie, &probe).is_ok(), "newest exchange intact");
    }

    #[test]
    fn expire_idle_reclaims_in_the_same_pass() {
        let mut m = master_with(vec![person("a", "7")]);
        m.set_gc_config(GcConfig { every_ops: None, ..GcConfig::default() });
        let req = dept7();
        let c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        // The session accumulates departed history and an unacked batch,
        // then goes silent.
        for i in 0..10 {
            m.apply(UpdateOp::Add(person(&format!("g{i}"), "7"))).unwrap();
        }
        let _ = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        for i in 0..10 {
            m.apply(UpdateOp::Delete(dn(&format!("cn=g{i},o=xyz")))).unwrap();
        }
        let full = m.memory_footprint();
        assert!(full.replay_bytes > 0 && full.table_live > 1);
        assert_eq!(m.expire_idle(5), 1);
        // Eviction freed the replay buffer and the table slots in the
        // same pass — no second collection needed.
        let f = m.memory_footprint();
        assert_eq!(f.sessions, 0);
        assert_eq!(f.replay_bytes, 0);
        assert_eq!(f.table_live, 0);
        assert_eq!(m.stability_watermark(), None, "watermark advanced past the dead session");
    }

    #[test]
    fn gc_state_survives_serde_round_trip() {
        let mut m = master_with(vec![person("a", "7")]);
        m.set_gc_config(GcConfig { every_ops: Some(7), ..GcConfig::default() });
        let req = dept7();
        let c0 = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        m.apply(UpdateOp::Add(person("b", "7"))).unwrap();
        let c1 = m.resync(&req, ReSyncControl::poll(Some(c0))).unwrap().cookie.unwrap();
        let _ = m.resync(&req, ReSyncControl::poll(Some(c1))).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let mut back: SyncMaster = serde_json::from_str(&json).unwrap();
        assert_eq!(back.gc_config(), m.gc_config());
        assert_eq!(back.stability_watermark(), m.stability_watermark());
        assert_eq!(back.memory_footprint().table_live, m.memory_footprint().table_live);
        // The restored master keeps collecting and serving.
        back.collect_garbage();
        m.apply(UpdateOp::Add(person("c", "7"))).unwrap();
        back.apply(UpdateOp::Add(person("c", "7"))).unwrap();
        let a = m.resync(&req, ReSyncControl::poll(Some(c1))).unwrap();
        let b = back.resync(&req, ReSyncControl::poll(Some(c1))).unwrap();
        assert_eq!(a, b);
    }
}
