//! The master (supplier) side of the ReSync protocol.

use crate::protocol::{
    Cookie, ReSyncControl, SyncAction, SyncError, SyncMode, SyncResponse,
};
use crossbeam::channel::{unbounded, Receiver, Sender};
use fbdr_dit::{ChangeRecord, DitError, DitStore, UpdateOp};
use fbdr_ldap::{Dn, Entry, SearchRequest};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Per-session state: the request, what the replica has been sent, the
/// live content, and the **session history** — DNs that left the content
/// since the last response (the paper's alternative to changelogs and
/// tombstones).
#[derive(Debug, Serialize, Deserialize)]
struct Session {
    request: SearchRequest,
    /// DNs the replica holds (content as of the last response).
    sent: HashSet<Dn>,
    /// Current content DNs, maintained at update time.
    current: HashSet<Dn>,
    /// `E10`: DNs that left the content since the last response and are
    /// held by the replica.
    departed: HashSet<Dn>,
    /// `E11` candidates: in-content DNs modified since the last response.
    changed: HashSet<Dn>,
    /// Persist-mode notification channel, if the session is persistent.
    /// Not persisted: a restored persist session degrades to polling (its
    /// cookie stays valid), exactly like a dropped TCP connection.
    #[serde(skip)]
    notify: Option<Sender<SyncAction>>,
    /// Receiver parked until the client picks it up.
    #[serde(skip)]
    parked_receiver: Option<Receiver<SyncAction>>,
    /// Master op-count at last activity, for idle expiry.
    last_active: u64,
}

/// A master directory server that owns a [`DitStore`] and maintains ReSync
/// sessions over it.
///
/// All updates **must** flow through [`SyncMaster::apply`] once sessions
/// exist — that is where session history is recorded. [`SyncMaster::dit_mut`]
/// is intended for initial bulk loading and suffix registration.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct SyncMaster {
    dit: DitStore,
    sessions: HashMap<u64, Session>,
    next_cookie: u64,
    ops_applied: u64,
}

impl SyncMaster {
    /// Creates a master with an empty DIT.
    pub fn new() -> Self {
        SyncMaster::default()
    }

    /// Creates a master around an already-loaded DIT.
    pub fn with_dit(dit: DitStore) -> Self {
        SyncMaster { dit, ..SyncMaster::default() }
    }

    /// The underlying DIT store.
    pub fn dit(&self) -> &DitStore {
        &self.dit
    }

    /// Mutable access to the DIT for setup (suffixes, bulk load). Updates
    /// applied here bypass session bookkeeping; use [`SyncMaster::apply`]
    /// once sessions exist.
    pub fn dit_mut(&mut self) -> &mut DitStore {
        &mut self.dit
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Total updates applied through this master.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    /// Applies an update to the DIT and maintains every live session's
    /// content and history; persist-mode sessions are notified
    /// immediately.
    ///
    /// # Errors
    ///
    /// Propagates [`DitError`] from the store; sessions are untouched on
    /// failure.
    pub fn apply(&mut self, op: UpdateOp) -> Result<ChangeRecord, DitError> {
        let target = op.target().clone();
        let rec = self.dit.apply(op)?;
        self.ops_applied += 1;
        let new_dn = rec.new_dn.clone().unwrap_or_else(|| target.clone());
        let renamed = rec.new_dn.is_some();
        // Entry state after the operation (None if deleted).
        let new_entry = self.dit.get(&new_dn).cloned();
        for session in self.sessions.values_mut() {
            if renamed {
                session.note_departure(&target);
                if let Some(e) = &new_entry {
                    session.note_arrival_or_change(e);
                }
            } else {
                match &new_entry {
                    Some(e) => session.note_arrival_or_change(e),
                    None => session.note_departure(&target),
                }
            }
        }
        Ok(rec)
    }

    // ------------------------------------------------------------------
    // ReSync request handling
    // ------------------------------------------------------------------

    /// Handles a ReSync request: `(search request, control)`.
    ///
    /// * `cookie == None` — starts a session; the full content is sent.
    /// * `cookie == Some` — sends updates accumulated since the last
    ///   request on that session.
    /// * mode `Persist` — additionally arms a notification channel; fetch
    ///   it with [`SyncMaster::take_receiver`].
    /// * mode `SyncEnd` — terminates the session.
    ///
    /// # Errors
    ///
    /// [`SyncError::UnknownCookie`] for dead sessions,
    /// [`SyncError::MissingCookie`] for `sync_end` without a cookie, and
    /// [`SyncError::RequestMismatch`] when a resumed session was created
    /// for a different search request.
    pub fn resync(&mut self, request: &SearchRequest, ctl: ReSyncControl) -> Result<SyncResponse, SyncError> {
        match ctl.mode {
            SyncMode::SyncEnd => {
                let cookie = ctl.cookie.ok_or(SyncError::MissingCookie)?;
                self.sessions
                    .remove(&cookie.0)
                    .ok_or(SyncError::UnknownCookie(cookie))?;
                return Ok(SyncResponse { actions: Vec::new(), cookie: None });
            }
            SyncMode::Poll | SyncMode::Persist => {}
        }
        let cookie = match ctl.cookie {
            None => self.start_session(request),
            Some(c) => c,
        };
        let ops_applied = self.ops_applied;
        let session = self
            .sessions
            .get_mut(&cookie.0)
            .ok_or(SyncError::UnknownCookie(cookie))?;
        if session.request != *request {
            return Err(SyncError::RequestMismatch(cookie));
        }
        session.last_active = ops_applied;
        let actions = session.drain_actions(&self.dit);
        if ctl.mode == SyncMode::Persist && session.notify.is_none() {
            let (tx, rx) = unbounded();
            session.notify = Some(tx);
            session.parked_receiver = Some(rx);
        }
        Ok(SyncResponse { actions, cookie: Some(cookie) })
    }

    /// Convenience for persist mode: performs the request and hands back
    /// the notification receiver in one call.
    ///
    /// # Errors
    ///
    /// As [`SyncMaster::resync`].
    pub fn resync_persist(
        &mut self,
        request: &SearchRequest,
        cookie: Option<Cookie>,
    ) -> Result<(SyncResponse, Receiver<SyncAction>), SyncError> {
        let resp = self.resync(request, ReSyncControl::persist(cookie))?;
        let c = resp.cookie.expect("persist responses carry a cookie");
        let rx = self.take_receiver(c).ok_or(SyncError::UnknownCookie(c))?;
        Ok((resp, rx))
    }

    /// Takes the parked notification receiver of a persist session.
    /// Returns `None` if the session is unknown or the receiver was
    /// already taken.
    pub fn take_receiver(&mut self, cookie: Cookie) -> Option<Receiver<SyncAction>> {
        self.sessions.get_mut(&cookie.0)?.parked_receiver.take()
    }

    /// Abandons a session (e.g. the client dropped a persistent search).
    pub fn abandon(&mut self, cookie: Cookie) {
        self.sessions.remove(&cookie.0);
    }

    /// Expires sessions idle for more than `max_idle_ops` applied updates
    /// — the admin time limit of §5.2. Returns how many were dropped.
    pub fn expire_idle(&mut self, max_idle_ops: u64) -> usize {
        let cutoff = self.ops_applied.saturating_sub(max_idle_ops);
        let before = self.sessions.len();
        self.sessions.retain(|_, s| s.last_active >= cutoff || s.notify.is_some());
        before - self.sessions.len()
    }

    /// The DNs a session's replica currently holds, sorted — test and
    /// debugging aid.
    pub fn session_sent_dns(&self, cookie: Cookie) -> Option<Vec<String>> {
        self.sessions.get(&cookie.0).map(|s| {
            let mut v: Vec<String> = s.sent.iter().map(|d| d.to_string()).collect();
            v.sort();
            v
        })
    }

    fn start_session(&mut self, request: &SearchRequest) -> Cookie {
        self.next_cookie += 1;
        let cookie = Cookie(self.next_cookie);
        let current: HashSet<Dn> = self.dit.search_dns(request).into_iter().collect();
        self.sessions.insert(
            cookie.0,
            Session {
                request: request.clone(),
                sent: HashSet::new(), // nothing sent yet → everything is an add
                current,
                departed: HashSet::new(),
                changed: HashSet::new(),
                notify: None,
                parked_receiver: None,
                last_active: self.ops_applied,
            },
        );
        cookie
    }
}

impl Session {
    /// Handles an entry that now exists at `entry.dn()` (added, modified
    /// or rename target).
    fn note_arrival_or_change(&mut self, entry: &Entry) {
        let dn = entry.dn();
        let now_in = self.request.matches(entry);
        let was_in = self.current.contains(dn);
        match (was_in, now_in) {
            (false, true) => {
                self.current.insert(dn.clone());
                self.departed.remove(dn);
                self.changed.insert(dn.clone());
                self.push(SyncAction::Add(entry.clone()));
            }
            (true, true) => {
                self.changed.insert(dn.clone());
                self.push(SyncAction::Modify(entry.clone()));
            }
            (true, false) => self.depart(dn.clone()),
            (false, false) => {}
        }
    }

    /// Handles an entry that no longer exists at `dn` (deleted or rename
    /// source).
    fn note_departure(&mut self, dn: &Dn) {
        if self.current.contains(dn) {
            self.depart(dn.clone());
        }
    }

    fn depart(&mut self, dn: Dn) {
        self.current.remove(&dn);
        self.changed.remove(&dn);
        if self.sent.contains(&dn) {
            self.departed.insert(dn.clone());
        }
        self.push(SyncAction::Delete(dn));
    }

    fn push(&mut self, action: SyncAction) {
        if let Some(tx) = &self.notify {
            // A dropped receiver means the client abandoned the persistent
            // search; the session stays pollable.
            let _ = tx.send(action);
        }
    }

    /// Builds the poll response: adds (current \ sent), modifies
    /// (changed ∩ current ∩ sent) and deletes (departed), then advances
    /// the session state.
    fn drain_actions(&mut self, dit: &DitStore) -> Vec<SyncAction> {
        let mut actions = Vec::new();
        for dn in &self.departed {
            actions.push(SyncAction::Delete(dn.clone()));
        }
        let mut adds: Vec<&Dn> = self.current.difference(&self.sent).collect();
        adds.sort();
        for dn in adds {
            if let Some(e) = dit.get(dn) {
                actions.push(SyncAction::Add(e.clone()));
            }
        }
        let mut mods: Vec<&Dn> = self
            .changed
            .iter()
            .filter(|dn| self.sent.contains(*dn) && self.current.contains(*dn))
            .collect();
        mods.sort();
        for dn in mods {
            if let Some(e) = dit.get(dn) {
                actions.push(SyncAction::Modify(e.clone()));
            }
        }
        self.sent = self.current.clone();
        self.departed.clear();
        self.changed.clear();
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReplicaContent;
    use fbdr_dit::Modification;
    use fbdr_ldap::{Filter, Rdn, Scope};

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn person(cn: &str, dept: &str) -> Entry {
        Entry::new(dn(&format!("cn={cn},o=xyz")))
            .with("objectclass", "person")
            .with("cn", cn)
            .with("dept", dept)
    }

    fn master_with(entries: Vec<Entry>) -> SyncMaster {
        let mut m = SyncMaster::new();
        m.dit_mut().add_suffix(dn("o=xyz"));
        m.dit_mut().add(Entry::new(dn("o=xyz"))).unwrap();
        for e in entries {
            m.dit_mut().add(e).unwrap();
        }
        m
    }

    fn dept7() -> SearchRequest {
        SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::parse("(dept=7)").unwrap())
    }

    #[test]
    fn initial_sync_sends_full_content() {
        let mut m = master_with(vec![person("a", "7"), person("b", "7"), person("c", "9")]);
        let resp = m.resync(&dept7(), ReSyncControl::poll(None)).unwrap();
        assert_eq!(resp.actions.len(), 2);
        assert!(resp.actions.iter().all(|a| matches!(a, SyncAction::Add(_))));
        assert!(resp.cookie.is_some());
    }

    #[test]
    fn incremental_poll_sends_only_changes() {
        let mut m = master_with(vec![person("a", "7"), person("b", "9")]);
        let req = dept7();
        let c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();

        // b moves into the content; a is modified in place; add c outside.
        m.apply(UpdateOp::Modify {
            dn: dn("cn=b,o=xyz"),
            mods: vec![Modification::Replace("dept".into(), vec!["7".into()])],
        })
        .unwrap();
        m.apply(UpdateOp::Modify {
            dn: dn("cn=a,o=xyz"),
            mods: vec![Modification::Replace("mail".into(), vec!["a@x".into()])],
        })
        .unwrap();
        m.apply(UpdateOp::Add(person("c", "9"))).unwrap();

        let resp = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        let mut kinds: Vec<String> = resp
            .actions
            .iter()
            .map(|a| format!("{a}"))
            .collect();
        kinds.sort();
        assert_eq!(kinds, ["cn=a,o=xyz, mod", "cn=b,o=xyz, add"]);

        // Next poll is empty.
        let resp2 = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        assert!(resp2.actions.is_empty());
    }

    #[test]
    fn departure_sends_delete_dn_only() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        // Modified out of the content.
        m.apply(UpdateOp::Modify {
            dn: dn("cn=a,o=xyz"),
            mods: vec![Modification::Replace("dept".into(), vec!["8".into()])],
        })
        .unwrap();
        let resp = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        assert_eq!(resp.actions, vec![SyncAction::Delete(dn("cn=a,o=xyz"))]);
        let t = resp.traffic();
        assert_eq!(t.dn_only, 1);
        assert_eq!(t.full_entries, 0);
    }

    #[test]
    fn unsent_arrivals_that_depart_are_never_mentioned() {
        let mut m = master_with(vec![]);
        let req = dept7();
        let c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        // Enters and leaves between polls: replica never needs to know.
        m.apply(UpdateOp::Add(person("x", "7"))).unwrap();
        m.apply(UpdateOp::Delete(dn("cn=x,o=xyz"))).unwrap();
        let resp = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        assert!(resp.actions.is_empty());
    }

    #[test]
    fn rename_is_delete_plus_add() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        m.apply(UpdateOp::ModifyDn {
            dn: dn("cn=a,o=xyz"),
            new_rdn: Rdn::new("cn", "a2"),
            new_superior: None,
        })
        .unwrap();
        let resp = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        assert_eq!(resp.actions.len(), 2);
        assert!(resp
            .actions
            .iter()
            .any(|a| matches!(a, SyncAction::Delete(d) if *d == dn("cn=a,o=xyz"))));
        assert!(resp
            .actions
            .iter()
            .any(|a| matches!(a, SyncAction::Add(e) if e.dn() == &dn("cn=a2,o=xyz"))));
    }

    #[test]
    fn replica_content_converges_through_polls() {
        let mut m = master_with(vec![person("a", "7"), person("b", "7")]);
        let req = dept7();
        let mut replica = ReplicaContent::new();
        let resp = m.resync(&req, ReSyncControl::poll(None)).unwrap();
        let c = resp.cookie.unwrap();
        replica.apply_all(&resp.actions);

        m.apply(UpdateOp::Delete(dn("cn=a,o=xyz"))).unwrap();
        m.apply(UpdateOp::Add(person("d", "7"))).unwrap();
        let resp = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        replica.apply_all(&resp.actions);

        let master_dns: Vec<String> = {
            let mut v: Vec<String> = m.dit().search_dns(&req).iter().map(|d| d.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(replica.sorted_dns(), master_dns);
    }

    #[test]
    fn persist_mode_streams_notifications() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let (resp, rx) = m.resync_persist(&req, None).unwrap();
        assert_eq!(resp.actions.len(), 1);

        m.apply(UpdateOp::Add(person("b", "7"))).unwrap();
        m.apply(UpdateOp::Delete(dn("cn=a,o=xyz"))).unwrap();
        m.apply(UpdateOp::Add(person("z", "9"))).unwrap(); // outside content

        let notes: Vec<SyncAction> = rx.try_iter().collect();
        assert_eq!(notes.len(), 2);
        assert!(matches!(&notes[0], SyncAction::Add(e) if e.dn() == &dn("cn=b,o=xyz")));
        assert!(matches!(&notes[1], SyncAction::Delete(d) if *d == dn("cn=a,o=xyz")));
    }

    #[test]
    fn poll_then_upgrade_to_persist() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        m.apply(UpdateOp::Add(person("b", "7"))).unwrap();
        // Resume with persist: catch-up batch plus a live channel — the
        // Figure 3 session shape.
        let (resp, rx) = m.resync_persist(&req, Some(c)).unwrap();
        assert_eq!(resp.actions.len(), 1);
        m.apply(UpdateOp::Add(person("e", "7"))).unwrap();
        assert_eq!(rx.try_iter().count(), 1);
    }

    #[test]
    fn sync_end_terminates_session() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        assert_eq!(m.session_count(), 1);
        m.resync(&req, ReSyncControl::sync_end(c)).unwrap();
        assert_eq!(m.session_count(), 0);
        assert_eq!(
            m.resync(&req, ReSyncControl::poll(Some(c))),
            Err(SyncError::UnknownCookie(c))
        );
    }

    #[test]
    fn request_mismatch_rejected() {
        let mut m = master_with(vec![person("a", "7")]);
        let c = m.resync(&dept7(), ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        let other = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::parse("(dept=8)").unwrap());
        assert_eq!(
            m.resync(&other, ReSyncControl::poll(Some(c))),
            Err(SyncError::RequestMismatch(c))
        );
    }

    #[test]
    fn master_state_survives_serde_round_trip() {
        // A master (with live sessions and history) serializes and
        // restores; polling continues incrementally with the old cookie.
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        m.apply(UpdateOp::Add(person("b", "7"))).unwrap();

        let snapshot = serde_json::to_string(&m).expect("master serializes");
        let mut restored: SyncMaster = serde_json::from_str(&snapshot).expect("deserializes");
        assert_eq!(restored.session_count(), 1);
        assert_eq!(restored.dit().len(), m.dit().len());

        let resp = restored.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        assert_eq!(resp.actions.len(), 1);
        assert!(matches!(&resp.actions[0], SyncAction::Add(e) if e.dn() == &dn("cn=b,o=xyz")));
        // Searches on the restored DIT use rebuilt state correctly.
        assert_eq!(restored.dit().search_dns(&req).len(), 2);
    }

    #[test]
    fn restored_persist_session_degrades_to_polling() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let (resp, _rx) = m.resync_persist(&req, None).unwrap();
        let c = resp.cookie.unwrap();
        let snapshot = serde_json::to_string(&m).expect("serializes");
        let mut restored: SyncMaster = serde_json::from_str(&snapshot).expect("deserializes");
        // The channel is gone, but the cookie still works for polling.
        restored.apply(UpdateOp::Add(person("b", "7"))).unwrap();
        let resp = restored.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
        assert_eq!(resp.actions.len(), 1);
        assert!(restored.take_receiver(c).is_none());
    }

    #[test]
    fn idle_sessions_expire() {
        let mut m = master_with(vec![person("a", "7")]);
        let req = dept7();
        let _c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
        for i in 0..5 {
            m.apply(UpdateOp::Add(person(&format!("p{i}"), "9"))).unwrap();
        }
        assert_eq!(m.expire_idle(10), 0);
        assert_eq!(m.expire_idle(3), 1);
        assert_eq!(m.session_count(), 0);
    }
}
