//! Reconciliation-based session recovery: divergence-proportional resync.
//!
//! When a ReSync session proves unrecoverable (`needs_reinstall()` — an
//! expired cookie or a replay window overrun), the PR-1 recovery ladder
//! bottomed out in a **full reinstall**: re-evaluate the filter at the
//! master and re-ship every matching entry, a cost proportional to
//! *content size*. This module replaces that rung with a set
//! reconciliation exchange whose cost is proportional to *divergence* —
//! what actually changed while the replica was detached:
//!
//! 1. **Digest round.** The replica hashes each held item — the pair
//!    `(normalized DN key, entry content version)` — into a 64-bit item
//!    hash and sends a seeded Bloom filter over the set
//!    ([`BloomDigest`], tunable false-positive rate). The master
//!    evaluates the filter content as for a fresh session; every item the
//!    digest *definitely does not contain* is shipped in full (the
//!    replica is provably missing it). The response also carries a
//!    [`RangeSummary`] — per-bucket count + XOR fingerprint over the
//!    master's item hashes — and a fresh cookie already positioned at the
//!    current content, so no common entry is re-shipped.
//! 2. **Range round (fallback).** Bloom filters are one-sided: false
//!    positives hide entries the replica is missing, and nothing in round
//!    one reveals entries the replica must *delete* (the classic Bloom
//!    reconciliation blind spot). The replica compares the summary
//!    against its own post-round-one item set; for each mismatched bucket
//!    it sends the exact hashes it holds there ([`RangeRequest`]). The
//!    master answers from a per-session stash frozen at round one:
//!    entries for stash items the replica did not list, and bare delete
//!    hashes for replica items absent from the stash.
//!
//! Deletes travel as item hashes (the master cannot name replica-only
//! DNs); the replica resolves them locally. Applying **deletes before
//! upserts** makes the modify-false-positive case converge: a stale local
//! version is deleted and immediately replaced by the round-two upsert of
//! the same DN.
//!
//! Every hop is accounted through [`fbdr_net::cost::ExchangeTracker`],
//! splitting payload (entries) from metadata (digest, summary, probes),
//! so the `recovery_cost` benchmark can report exactly where the bytes
//! went.

use crate::driver::SyncTransport;
use crate::intern::entry_key;
use crate::protocol::{Cookie, SyncError, SyncTraffic};
use fbdr_ldap::{Entry, SearchRequest};
use fbdr_net::cost::{ExchangeTracker, HopDirection, OpStats};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

// ----------------------------------------------------------------------
// Item hashing
// ----------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// SplitMix64 finalizer: a cheap, well-mixed 64→64 bit permutation.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic content hash of an entry: attribute names (lowercased)
/// and values (normalized) in their canonical `BTreeMap`/`BTreeSet`
/// order. Two entries equal under LDAP matching rules hash equally on
/// both sides of the wire, so `(DN key, version)` identifies an item
/// independent of which server computed it.
pub fn entry_version(e: &Entry) -> u64 {
    let mut h = FNV_OFFSET;
    for (name, values) in e.attrs() {
        h = fnv1a(h, name.lower().as_bytes());
        h = fnv1a(h, &[0xff]);
        for v in values {
            h = fnv1a(h, v.normalized().as_bytes());
            h = fnv1a(h, &[0xfe]);
        }
    }
    h
}

/// The 64-bit reconciliation item hash of `(DN key, content version)`.
/// `key` must be the normalized DN key ([`crate::dn_key`]).
pub fn item_hash(key: &str, version: u64) -> u64 {
    mix64(fnv1a(FNV_OFFSET, key.as_bytes()) ^ mix64(version))
}

/// The item hash of an entry (key + version in one step).
pub fn entry_item_hash(e: &Entry) -> u64 {
    item_hash(&entry_key(e), entry_version(e))
}

/// One replica-held item: its reconciliation hash and the replica-local
/// interned id it resolves back to (for applying deletes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconcileItem {
    /// [`item_hash`] of the held entry.
    pub hash: u64,
    /// Replica-local interned id of the entry's DN.
    pub id: u32,
}

// ----------------------------------------------------------------------
// Bloom digest
// ----------------------------------------------------------------------

/// A seeded Bloom filter over the replica's item hashes.
///
/// Sized from the item count and a target false-positive rate; probe
/// positions derive from the double-hashing scheme over a per-exchange
/// seed, so a retry with a fresh seed does not repeat the same false
/// positives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomDigest {
    bits: Vec<u64>,
    /// Filter size in bits.
    m: u64,
    /// Probes per item.
    k: u32,
    /// Per-exchange probe seed.
    seed: u64,
    /// Items inserted.
    items: u64,
}

impl BloomDigest {
    /// Builds a digest over `hashes` sized for false-positive rate `fpr`
    /// (clamped to a sane range), salted with `seed`.
    pub fn build(hashes: &[u64], fpr: f64, seed: u64) -> BloomDigest {
        let n = hashes.len() as f64;
        let p = fpr.clamp(1e-6, 0.5);
        let ln2 = std::f64::consts::LN_2;
        let m_bits = if hashes.is_empty() {
            64
        } else {
            ((-n * p.ln()) / (ln2 * ln2)).ceil().max(64.0) as u64
        };
        let m = m_bits.div_ceil(64) * 64;
        let k = if hashes.is_empty() {
            1
        } else {
            (((m as f64 / n) * ln2).round() as u32).clamp(1, 16)
        };
        let mut d = BloomDigest {
            bits: vec![0u64; (m / 64) as usize],
            m,
            k,
            seed,
            items: hashes.len() as u64,
        };
        for &h in hashes {
            let (h1, h2) = d.probe_pair(h);
            for i in 0..u64::from(d.k) {
                let bit = h1.wrapping_add(i.wrapping_mul(h2)) % d.m;
                d.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
            }
        }
        d
    }

    fn probe_pair(&self, item: u64) -> (u64, u64) {
        let h1 = mix64(item ^ self.seed);
        let h2 = mix64(h1 ^ 0x9E37_79B9_7F4A_7C15) | 1;
        (h1, h2)
    }

    /// Possibly-contains check: `false` means the item is *definitely*
    /// not in the digested set.
    pub fn contains(&self, item: u64) -> bool {
        let (h1, h2) = self.probe_pair(item);
        (0..u64::from(self.k)).all(|i| {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % self.m;
            self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Number of items inserted at build time.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Estimated wire size: the bit array plus sizing/seed metadata.
    pub fn wire_bytes(&self) -> u64 {
        self.bits.len() as u64 * 8 + 28
    }
}

// ----------------------------------------------------------------------
// Range summary
// ----------------------------------------------------------------------

/// Per-bucket fingerprint of one hash-space range.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketSummary {
    /// Items whose hash falls in the bucket.
    pub count: u32,
    /// XOR of those item hashes.
    pub xor: u64,
}

/// The master's item set summarized by hash-space range: the top bits of
/// each item hash select a bucket; each bucket carries a count and an XOR
/// fingerprint. A replica whose bucket matches both holds (with
/// overwhelming probability) exactly the master's items there; mismatched
/// buckets are resolved exactly in the range round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeSummary {
    /// Right-shift mapping an item hash to its bucket index.
    shift: u32,
    buckets: Vec<BucketSummary>,
}

/// Maps a hash to its bucket under `shift` (shift ≥ 64 ⇒ single bucket).
pub(crate) fn bucket_of(hash: u64, shift: u32) -> usize {
    if shift >= 64 {
        0
    } else {
        (hash >> shift) as usize
    }
}

impl RangeSummary {
    /// Builds a summary with `buckets` buckets (rounded up to a power of
    /// two, at least 2) over `hashes`.
    pub fn build(buckets: u32, hashes: &[u64]) -> RangeSummary {
        let n = buckets.max(2).next_power_of_two();
        let shift = 64 - n.trailing_zeros();
        let mut out =
            RangeSummary { shift, buckets: vec![BucketSummary::default(); n as usize] };
        for &h in hashes {
            let b = &mut out.buckets[bucket_of(h, shift)];
            b.count += 1;
            b.xor ^= h;
        }
        out
    }

    /// The right-shift mapping item hashes to bucket indexes.
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when the summary has no buckets (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Bucket indexes where `self` (the remote summary) disagrees with a
    /// summary of the local `hashes` — ranges holding residual
    /// uncertainty after the Bloom round.
    pub fn mismatched_buckets(&self, hashes: &[u64]) -> Vec<u32> {
        let local = RangeSummary::build(self.buckets.len() as u32, hashes);
        self.buckets
            .iter()
            .zip(&local.buckets)
            .enumerate()
            .filter(|(_, (remote, mine))| remote != mine)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Estimated wire size: 12 bytes per bucket plus framing.
    pub fn wire_bytes(&self) -> u64 {
        self.buckets.len() as u64 * 12 + 8
    }
}

// ----------------------------------------------------------------------
// Wire types
// ----------------------------------------------------------------------

/// Round one, replica → master: the digest leg of the ReSync protocol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconcileRequest {
    /// Bloom digest over the replica's item hashes.
    pub digest: BloomDigest,
    /// Bucket count the replica wants the range summary built with.
    pub summary_buckets: u32,
}

impl ReconcileRequest {
    /// Estimated wire size.
    pub fn wire_bytes(&self) -> u64 {
        self.digest.wire_bytes() + 4
    }
}

/// Round one, master → replica: definite misses shipped in full, the
/// range summary for residual-uncertainty detection, and a fresh cookie
/// already positioned at the master's current content.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconcileResponse {
    /// Entries the replica is definitely missing (Bloom negatives), in
    /// DN order.
    pub upserts: Vec<Entry>,
    /// Range summary over the master's full item set.
    pub summary: RangeSummary,
    /// Resumption cookie for the re-established session.
    pub cookie: Cookie,
}

impl ReconcileResponse {
    /// Estimated payload (entry) wire bytes.
    pub fn state_bytes(&self) -> u64 {
        self.upserts.iter().map(|e| e.estimated_size() as u64 + 8).sum()
    }

    /// Estimated metadata (summary + cookie) wire bytes.
    pub fn metadata_bytes(&self) -> u64 {
        self.summary.wire_bytes() + 8
    }
}

/// One probed range of the fallback round: the replica's exact item
/// hashes within a mismatched bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeProbe {
    /// Bucket index under the summary's shift.
    pub bucket: u32,
    /// The replica's item hashes in the bucket, sorted.
    pub hashes: Vec<u64>,
}

/// Round two, replica → master: exact hashes for every mismatched range.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeRequest {
    /// Probes, one per mismatched bucket, in bucket order.
    pub probes: Vec<RangeProbe>,
}

impl RangeRequest {
    /// Estimated wire size (hashes + per-probe framing + cookie).
    pub fn wire_bytes(&self) -> u64 {
        self.probes.iter().map(|p| 12 + p.hashes.len() as u64 * 8).sum::<u64>() + 8
    }
}

/// Round two, master → replica: entries the replica was missing inside
/// the probed ranges (Bloom false positives) and the item hashes it must
/// delete.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RangeResponse {
    /// False-positive recoveries: full entries, in DN order.
    pub upserts: Vec<Entry>,
    /// Item hashes present at the replica but absent from the master's
    /// round-one set — the replica resolves and deletes them locally.
    pub delete_hashes: Vec<u64>,
}

impl RangeResponse {
    /// Estimated payload (entry) wire bytes.
    pub fn state_bytes(&self) -> u64 {
        self.upserts.iter().map(|e| e.estimated_size() as u64 + 8).sum()
    }

    /// Estimated metadata (delete hashes + framing) wire bytes.
    pub fn metadata_bytes(&self) -> u64 {
        self.delete_hashes.len() as u64 * 8 + 8
    }
}

// ----------------------------------------------------------------------
// Config / outcome
// ----------------------------------------------------------------------

/// Tuning for the reconciliation exchange.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconcileConfig {
    /// Target Bloom false-positive rate (drives digest size).
    pub fpr: f64,
    /// Range-summary bucket count; `0` sizes automatically from the item
    /// count (≈ items/8, clamped to `[16, 4096]`, rounded to a power of
    /// two).
    pub summary_buckets: u32,
    /// Base seed for the digest; the driver re-salts per retry attempt so
    /// repeated exchanges draw fresh false positives.
    pub seed: u64,
    /// Reconcile only when the estimated divergence (when known) is at
    /// most this many updates; above it, go straight to reinstall.
    pub divergence_budget: u64,
}

impl Default for ReconcileConfig {
    fn default() -> Self {
        ReconcileConfig {
            fpr: 0.01,
            summary_buckets: 0,
            seed: 0x5FD1_E7A4_92C3_0B86,
            divergence_budget: u64::MAX,
        }
    }
}

impl ReconcileConfig {
    /// A builder starting from the defaults. New knobs get a builder
    /// method and a default instead of breaking every construction site.
    pub fn builder() -> ReconcileConfigBuilder {
        ReconcileConfigBuilder { config: ReconcileConfig::default() }
    }

    /// The effective summary bucket count for `items` held entries.
    pub fn effective_buckets(&self, items: usize) -> u32 {
        if self.summary_buckets > 0 {
            self.summary_buckets.max(2).next_power_of_two()
        } else {
            ((items / 8) as u32).clamp(16, 4096).next_power_of_two()
        }
    }
}

/// Builder for [`ReconcileConfig`]; see [`ReconcileConfig::builder`].
#[derive(Debug, Clone)]
pub struct ReconcileConfigBuilder {
    config: ReconcileConfig,
}

impl ReconcileConfigBuilder {
    /// Target Bloom false-positive rate.
    pub fn fpr(mut self, fpr: f64) -> Self {
        self.config.fpr = fpr;
        self
    }

    /// Range-summary bucket count (`0` = automatic).
    pub fn summary_buckets(mut self, buckets: u32) -> Self {
        self.config.summary_buckets = buckets;
        self
    }

    /// Base digest seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Maximum estimated divergence to attempt reconciliation for.
    pub fn divergence_budget(mut self, budget: u64) -> Self {
        self.config.divergence_budget = budget;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> ReconcileConfig {
        self.config
    }
}

/// Where the bytes of one reconciliation exchange went.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReconcileCost {
    /// Aggregate round trips / bytes, tracker-derived.
    pub stats: OpStats,
    /// Digest bytes sent in round one.
    pub digest_bytes: u64,
    /// Summary bytes received in round one.
    pub summary_bytes: u64,
    /// Probes sent in the fallback round (0 when the Bloom round settled
    /// everything).
    pub fallback_probes: u64,
    /// Entries shipped (both rounds).
    pub shipped_entries: u64,
    /// Deletes conveyed (as item hashes).
    pub deletes: u64,
    /// Per-hop log, for per-round analysis.
    pub hops: Vec<fbdr_net::cost::Hop>,
}

/// The result of a completed reconciliation: what to apply and what it
/// cost. Apply **`delete_ids` before `upserts`** — a stale local version
/// of a modified entry is deleted and then re-added at the master's
/// version.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconcileOutcome {
    /// Entries to upsert (adds + modifies), master's current versions.
    pub upserts: Vec<Entry>,
    /// Replica-local ids of entries to delete, resolved from the master's
    /// delete hashes.
    pub delete_ids: Vec<u32>,
    /// The re-established session cookie, valid for incremental polls.
    pub cookie: Cookie,
    /// Byte/round-trip accounting for the exchange.
    pub cost: ReconcileCost,
}

impl ReconcileOutcome {
    /// The exchange expressed as [`SyncTraffic`], comparable with a
    /// reinstall's `resp.traffic()`: shipped entries as full-entry PDUs,
    /// deletes as DN-only PDUs, bytes as actual wire bytes both ways.
    pub fn traffic(&self) -> SyncTraffic {
        SyncTraffic {
            full_entries: self.upserts.len() as u64,
            dn_only: self.delete_ids.len() as u64,
            bytes: self.cost.stats.bytes_total(),
            redelivered_pdus: 0,
        }
    }
}

// ----------------------------------------------------------------------
// Replica-side exchange
// ----------------------------------------------------------------------

/// Runs one full reconciliation exchange over `transport` for `request`.
///
/// `items` is the replica's current held set for the filter; `resolve`
/// maps a normalized DN key to the replica-local id of a held item (used
/// to drop superseded local versions from the post-upsert set, and to be
/// consistent with how `items` was built). The function is read-only with
/// respect to replica content: it returns what to apply, it does not
/// apply it.
///
/// # Errors
///
/// Propagates [`SyncError`] from the transport (transient errors are
/// *not* retried here — wrap the call in `SyncDriver::reconcile`), and
/// [`SyncError::ReconcileFailed`] when the master cannot complete the
/// exchange.
pub fn reconcile(
    transport: &mut dyn SyncTransport,
    request: &SearchRequest,
    items: &[ReconcileItem],
    resolve: &dyn Fn(&str) -> Option<u32>,
    config: &ReconcileConfig,
) -> Result<ReconcileOutcome, SyncError> {
    reconcile_inner(transport, None, request, items, resolve, config)
}

/// [`reconcile`] addressed to one shard of a sharded transport: the
/// exchange legs go through [`SyncTransport::reconcile_at`] /
/// [`SyncTransport::reconcile_ranges_at`] so the coordinator's shard
/// choice is honored instead of re-routing by base.
///
/// # Errors
///
/// As [`reconcile`].
pub fn reconcile_at(
    transport: &mut dyn SyncTransport,
    shard: fbdr_net::ShardId,
    request: &SearchRequest,
    items: &[ReconcileItem],
    resolve: &dyn Fn(&str) -> Option<u32>,
    config: &ReconcileConfig,
) -> Result<ReconcileOutcome, SyncError> {
    reconcile_inner(transport, Some(shard), request, items, resolve, config)
}

/// Shared body: `shard == None` uses the unsharded transport legs (which
/// a sharded transport may route by base), `Some(shard)` the addressed
/// ones.
fn reconcile_inner(
    transport: &mut dyn SyncTransport,
    shard: Option<fbdr_net::ShardId>,
    request: &SearchRequest,
    items: &[ReconcileItem],
    resolve: &dyn Fn(&str) -> Option<u32>,
    config: &ReconcileConfig,
) -> Result<ReconcileOutcome, SyncError> {
    let hashes: Vec<u64> = items.iter().map(|it| it.hash).collect();
    let digest = BloomDigest::build(&hashes, config.fpr, config.seed);
    let req = ReconcileRequest {
        digest,
        summary_buckets: config.effective_buckets(items.len()),
    };
    let digest_bytes = req.wire_bytes();

    let mut tracker = ExchangeTracker::new();
    tracker.begin_round();
    tracker.register(HopDirection::LocalToRemote, 0, digest_bytes);
    let resp = match shard {
        Some(s) => transport.reconcile_at(s, request, req)?,
        None => transport.reconcile(request, req)?,
    };
    let summary_bytes = resp.summary.wire_bytes();
    tracker.register(HopDirection::RemoteToLocal, resp.state_bytes(), resp.metadata_bytes());

    // The replica's item set *after* applying round-one upserts: local
    // items whose DN was not superseded, plus the shipped entries at the
    // master's version.
    let mut superseded: Vec<u32> = Vec::new();
    let mut post: Vec<u64> = Vec::with_capacity(items.len() + resp.upserts.len());
    let mut post_ids: HashMap<u64, u32> = HashMap::with_capacity(items.len());
    for e in &resp.upserts {
        if let Some(id) = resolve(&entry_key(e)) {
            superseded.push(id);
        }
        post.push(entry_item_hash(e));
    }
    superseded.sort_unstable();
    for it in items {
        if superseded.binary_search(&it.id).is_err() {
            post.push(it.hash);
            post_ids.insert(it.hash, it.id);
        }
    }

    let mut upserts = resp.upserts;
    let mut delete_ids: Vec<u32> = Vec::new();
    let mut fallback_probes = 0u64;
    let mismatched = resp.summary.mismatched_buckets(&post);
    if !mismatched.is_empty() {
        // Residual uncertainty: false positives and/or deletions. Probe
        // the disagreeing ranges exactly.
        let shift = resp.summary.shift();
        let mut probes: Vec<RangeProbe> = mismatched
            .iter()
            .map(|&b| RangeProbe { bucket: b, hashes: Vec::new() })
            .collect();
        let index_of: HashMap<u32, usize> =
            mismatched.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        for &h in &post {
            if let Some(&i) = index_of.get(&(bucket_of(h, shift) as u32)) {
                probes[i].hashes.push(h);
            }
        }
        for p in &mut probes {
            p.hashes.sort_unstable();
        }
        let rreq = RangeRequest { probes };
        fallback_probes = rreq.probes.len() as u64;
        tracker.begin_round();
        tracker.register(HopDirection::LocalToRemote, 0, rreq.wire_bytes());
        let r2 = match shard {
            Some(s) => transport.reconcile_ranges_at(s, resp.cookie, &rreq)?,
            None => transport.reconcile_ranges(resp.cookie, &rreq)?,
        };
        tracker.register(HopDirection::RemoteToLocal, r2.state_bytes(), r2.metadata_bytes());
        for h in &r2.delete_hashes {
            // Unknown hashes (cannot happen with a well-behaved master)
            // are ignored — deleting nothing is safe.
            if let Some(&id) = post_ids.get(h) {
                delete_ids.push(id);
            }
        }
        // A round-two upsert of a DN we still hold (modify false
        // positive) supersedes the local version; the delete of its stale
        // hash has already been collected above, and delete-before-upsert
        // apply order makes the pair converge.
        upserts.extend(r2.upserts);
    }

    let shipped_entries = upserts.len() as u64;
    let deletes = delete_ids.len() as u64;
    let mut stats = tracker.to_stats();
    stats.entries_returned = shipped_entries;
    Ok(ReconcileOutcome {
        upserts,
        delete_ids,
        cookie: resp.cookie,
        cost: ReconcileCost {
            stats,
            digest_bytes,
            summary_bytes,
            fallback_probes,
            shipped_entries,
            deletes,
            hops: tracker.hops().to_vec(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(dn: &str, mail: &str) -> Entry {
        Entry::new(dn.parse().unwrap()).with("objectclass", "person").with("mail", mail)
    }

    #[test]
    fn entry_version_is_content_sensitive_and_spelling_insensitive() {
        let a = entry("cn=a,o=x", "a@x");
        let b = entry("cn=a,o=x", "b@x");
        assert_ne!(entry_version(&a), entry_version(&b), "value change changes version");
        // Matching-rule-equal spellings agree.
        let c = Entry::new("cn=a,o=x".parse().unwrap())
            .with("objectClass", "Person")
            .with("MAIL", " A@X ");
        assert_eq!(entry_version(&a), entry_version(&c));
        assert_eq!(entry_item_hash(&a), entry_item_hash(&c));
        assert_ne!(entry_item_hash(&a), entry_item_hash(&b));
    }

    #[test]
    fn bloom_has_no_false_negatives_and_bounded_false_positives() {
        let members: Vec<u64> = (0..2_000u64).map(|i| mix64(i.wrapping_mul(0x9E37))).collect();
        let d = BloomDigest::build(&members, 0.01, 42);
        for &h in &members {
            assert!(d.contains(h), "no false negatives");
        }
        let fp = (0..20_000u64)
            .map(|i| mix64(i.wrapping_mul(0xABCD_EF12_3456)))
            .filter(|h| !members.contains(h) && d.contains(*h))
            .count();
        // 1% target; allow generous slack for the small sample.
        assert!(fp < 800, "false positive count {fp} way over target");
        assert!(d.wire_bytes() < 3_500, "≈1.2 bytes/item at 1% fpr, got {}", d.wire_bytes());
    }

    #[test]
    fn bloom_seed_changes_false_positive_pattern() {
        let members: Vec<u64> = (0..500u64).map(|i| mix64(i ^ 0x55)).collect();
        let d1 = BloomDigest::build(&members, 0.05, 1);
        let d2 = BloomDigest::build(&members, 0.05, 2);
        let probe: Vec<u64> = (0..50_000u64).map(|i| mix64(i ^ 0xF00D)).collect();
        let fp1: Vec<u64> =
            probe.iter().copied().filter(|h| !members.contains(h) && d1.contains(*h)).collect();
        let fp2: Vec<u64> =
            probe.iter().copied().filter(|h| !members.contains(h) && d2.contains(*h)).collect();
        assert_ne!(fp1, fp2, "different seeds must draw different false positives");
    }

    #[test]
    fn empty_digest_contains_nothing() {
        let d = BloomDigest::build(&[], 0.01, 7);
        assert!(!d.contains(123));
        assert_eq!(d.items(), 0);
    }

    #[test]
    fn range_summary_flags_exactly_the_differing_buckets() {
        let base: Vec<u64> = (0..1_000u64).map(|i| mix64(i)).collect();
        let s = RangeSummary::build(64, &base);
        assert!(s.mismatched_buckets(&base).is_empty(), "identical sets agree everywhere");

        // Remove one item and add another: at most two buckets disagree.
        let mut other = base.clone();
        other.remove(17);
        other.push(mix64(0xDEAD_BEEF));
        let bad = s.mismatched_buckets(&other);
        assert!(!bad.is_empty() && bad.len() <= 2, "local diff stays local: {bad:?}");
    }

    #[test]
    fn bucket_count_rounds_to_power_of_two() {
        let s = RangeSummary::build(33, &[]);
        assert_eq!(s.len(), 64);
        assert_eq!(s.shift(), 58);
        let one = RangeSummary::build(0, &[1, 2, 3]);
        assert_eq!(one.len(), 2);
    }

    #[test]
    fn effective_buckets_scale_with_content() {
        let c = ReconcileConfig::default();
        assert_eq!(c.effective_buckets(0), 16);
        assert_eq!(c.effective_buckets(2_000), 256);
        assert_eq!(c.effective_buckets(1_000_000), 4096);
        let fixed = ReconcileConfig { summary_buckets: 100, ..ReconcileConfig::default() };
        assert_eq!(fixed.effective_buckets(2_000), 128);
    }

    #[test]
    fn wire_sizes_are_plausible() {
        let hashes: Vec<u64> = (0..1_000u64).map(mix64).collect();
        let req = ReconcileRequest {
            digest: BloomDigest::build(&hashes, 0.01, 0),
            summary_buckets: 128,
        };
        // ≈1.2 bytes/item at 1% fpr.
        assert!(req.wire_bytes() > 1_000 && req.wire_bytes() < 2_000);
        let s = RangeSummary::build(128, &hashes);
        assert_eq!(s.wire_bytes(), 128 * 12 + 8);
        let rr = RangeRequest {
            probes: vec![RangeProbe { bucket: 0, hashes: vec![1, 2, 3] }],
        };
        assert_eq!(rr.wire_bytes(), 12 + 24 + 8);
    }
}
