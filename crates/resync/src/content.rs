//! The replica-side content of one synchronized search request.

use crate::protocol::SyncAction;
use fbdr_ldap::{Dn, Entry};
use std::collections::HashMap;

/// The set of entries a replica holds for one replicated search request,
/// updated by applying [`SyncAction`]s.
///
/// `Retain` actions participate in the history-free scheme of equation
/// (3): a sync cycle built from retain/add/modify actions implicitly
/// deletes everything not mentioned — apply such cycles with
/// [`ReplicaContent::apply_snapshot_cycle`].
#[derive(Debug, Clone, Default)]
pub struct ReplicaContent {
    entries: HashMap<String, Entry>,
}

impl ReplicaContent {
    /// Creates empty content.
    pub fn new() -> Self {
        ReplicaContent::default()
    }

    /// Number of entries held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up an entry by DN.
    pub fn get(&self, dn: &Dn) -> Option<&Entry> {
        self.entries.get(&key(dn))
    }

    /// True if the DN is in the content.
    pub fn contains(&self, dn: &Dn) -> bool {
        self.entries.contains_key(&key(dn))
    }

    /// Iterates the held entries (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.values()
    }

    /// DNs held, sorted (for deterministic comparisons).
    pub fn sorted_dns(&self) -> Vec<String> {
        let mut dns: Vec<String> = self.entries.keys().cloned().collect();
        dns.sort();
        dns
    }

    /// Applies one incremental action (add/modify upsert, delete removes;
    /// retain is a no-op here).
    pub fn apply(&mut self, action: &SyncAction) {
        match action {
            SyncAction::Add(e) | SyncAction::Modify(e) => {
                self.entries.insert(key(e.dn()), e.clone());
            }
            SyncAction::Delete(dn) => {
                self.entries.remove(&key(dn));
            }
            SyncAction::Retain(_) => {}
        }
    }

    /// Applies a batch of incremental actions.
    pub fn apply_all<'a, I: IntoIterator<Item = &'a SyncAction>>(&mut self, actions: I) {
        for a in actions {
            self.apply(a);
        }
    }

    /// Applies a *snapshot cycle* (equation (3)): every entry the cycle
    /// does not mention via add/modify/retain is dropped.
    pub fn apply_snapshot_cycle<'a, I: IntoIterator<Item = &'a SyncAction>>(&mut self, actions: I) {
        let mut next: HashMap<String, Entry> = HashMap::new();
        for a in actions {
            match a {
                SyncAction::Add(e) | SyncAction::Modify(e) => {
                    next.insert(key(e.dn()), e.clone());
                }
                SyncAction::Retain(dn) => {
                    if let Some(e) = self.entries.remove(&key(dn)) {
                        next.insert(key(dn), e);
                    }
                }
                SyncAction::Delete(dn) => {
                    next.remove(&key(dn));
                }
            }
        }
        self.entries = next;
    }
}

fn key(dn: &Dn) -> String {
    dn.rdns()
        .iter()
        .map(|r| format!("{}={}", r.attr().lower(), r.value().normalized()))
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(dn: &str) -> Entry {
        Entry::new(dn.parse().unwrap()).with("objectclass", "person")
    }

    #[test]
    fn incremental_actions() {
        let mut c = ReplicaContent::new();
        c.apply(&SyncAction::Add(entry("cn=a,o=x")));
        c.apply(&SyncAction::Add(entry("cn=b,o=x")));
        assert_eq!(c.len(), 2);
        c.apply(&SyncAction::Delete("cn=a,o=x".parse().unwrap()));
        assert_eq!(c.len(), 1);
        assert!(c.contains(&"cn=b,o=x".parse().unwrap()));
        // Case-insensitive keying.
        assert!(c.contains(&"CN=B,O=X".parse().unwrap()));
    }

    #[test]
    fn modify_upserts() {
        let mut c = ReplicaContent::new();
        let e = entry("cn=a,o=x").with("mail", "1@x");
        c.apply(&SyncAction::Modify(e));
        assert_eq!(c.len(), 1);
        let e2 = entry("cn=a,o=x").with("mail", "2@x");
        c.apply(&SyncAction::Modify(e2.clone()));
        assert_eq!(c.get(&"cn=a,o=x".parse().unwrap()), Some(&e2));
    }

    #[test]
    fn snapshot_cycle_drops_unmentioned() {
        let mut c = ReplicaContent::new();
        c.apply(&SyncAction::Add(entry("cn=a,o=x")));
        c.apply(&SyncAction::Add(entry("cn=b,o=x")));
        c.apply(&SyncAction::Add(entry("cn=c,o=x")));
        // Cycle: retain a, modify b; c unmentioned -> dropped.
        let cycle = vec![
            SyncAction::Retain("cn=a,o=x".parse().unwrap()),
            SyncAction::Modify(entry("cn=b,o=x").with("mail", "m@x")),
        ];
        c.apply_snapshot_cycle(&cycle);
        assert_eq!(c.len(), 2);
        assert!(c.contains(&"cn=a,o=x".parse().unwrap()));
        assert!(!c.contains(&"cn=c,o=x".parse().unwrap()));
    }

    #[test]
    fn retain_of_unknown_dn_is_ignored() {
        let mut c = ReplicaContent::new();
        c.apply_snapshot_cycle(&[SyncAction::Retain("cn=ghost,o=x".parse().unwrap())]);
        assert!(c.is_empty());
    }
}
