//! The replica-side content of one synchronized search request.

use crate::intern::{dn_key, DnInterner};
use crate::protocol::SyncAction;
use fbdr_ldap::{Dn, Entry};

/// The set of entries a replica holds for one replicated search request,
/// updated by applying [`SyncAction`]s.
///
/// Entries are stored in id-addressed slots: each distinct DN is interned
/// to a dense `u32` once ([`DnInterner`]) and every later action touching
/// that DN resolves to a direct vector index instead of re-hashing the
/// string key. This is the same id space the filter replica's posting
/// lists use, so content handed from the sync layer to a replica keeps
/// its ids.
///
/// `Retain` actions participate in the history-free scheme of equation
/// (3): a sync cycle built from retain/add/modify actions implicitly
/// deletes everything not mentioned — apply such cycles with
/// [`ReplicaContent::apply_snapshot_cycle`].
#[derive(Debug, Clone, Default)]
pub struct ReplicaContent {
    interner: DnInterner,
    slots: Vec<Option<Entry>>,
    live: usize,
}

impl ReplicaContent {
    /// Creates empty content.
    pub fn new() -> Self {
        ReplicaContent::default()
    }

    /// Number of entries held.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Looks up an entry by DN.
    pub fn get(&self, dn: &Dn) -> Option<&Entry> {
        let id = self.interner.get(&dn_key(dn))?;
        self.slots[id as usize].as_ref()
    }

    /// True if the DN is in the content.
    pub fn contains(&self, dn: &Dn) -> bool {
        self.get(dn).is_some()
    }

    /// Iterates the held entries (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.slots.iter().flatten()
    }

    /// DNs held, sorted (for deterministic comparisons).
    pub fn sorted_dns(&self) -> Vec<String> {
        let mut dns: Vec<String> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .filter_map(|(id, _)| self.interner.key_of(id as u32))
            .map(str::to_owned)
            .collect();
        dns.sort();
        dns
    }

    /// Interns a DN key and returns its slot id, growing storage to fit.
    fn slot_of(&mut self, key: &str) -> u32 {
        let id = self.interner.intern(key);
        if self.slots.len() <= id as usize {
            self.slots.resize(id as usize + 1, None);
        }
        id
    }

    fn put(&mut self, id: u32, e: Entry) {
        if self.slots[id as usize].replace(e).is_none() {
            self.live += 1;
        }
    }

    fn clear_slot(&mut self, id: u32) {
        if self.slots[id as usize].take().is_some() {
            self.live -= 1;
        }
    }

    /// Applies one incremental action (add/modify upsert, delete removes;
    /// retain is a no-op here).
    pub fn apply(&mut self, action: &SyncAction) {
        match action {
            SyncAction::Add(e) | SyncAction::Modify(e) => {
                let id = self.slot_of(&dn_key(e.dn()));
                self.put(id, e.clone());
            }
            SyncAction::Delete(dn) => {
                if let Some(id) = self.interner.get(&dn_key(dn)) {
                    self.clear_slot(id);
                }
            }
            SyncAction::Retain(_) => {}
        }
    }

    /// Applies a batch of incremental actions.
    pub fn apply_all<'a, I: IntoIterator<Item = &'a SyncAction>>(&mut self, actions: I) {
        for a in actions {
            self.apply(a);
        }
    }

    /// Applies a *snapshot cycle* (equation (3)): every entry the cycle
    /// does not mention via add/modify/retain is dropped.
    pub fn apply_snapshot_cycle<'a, I: IntoIterator<Item = &'a SyncAction>>(&mut self, actions: I) {
        let mut next: Vec<Option<Entry>> = vec![None; self.slots.len()];
        let mut live = 0usize;
        for a in actions {
            match a {
                SyncAction::Add(e) | SyncAction::Modify(e) => {
                    let id = self.slot_of(&dn_key(e.dn()));
                    if next.len() <= id as usize {
                        next.resize(id as usize + 1, None);
                    }
                    if next[id as usize].replace(e.clone()).is_none() {
                        live += 1;
                    }
                }
                SyncAction::Retain(dn) => {
                    if let Some(id) = self.interner.get(&dn_key(dn)) {
                        if let Some(e) = self.slots[id as usize].take() {
                            if next[id as usize].replace(e).is_none() {
                                live += 1;
                            }
                        }
                    }
                }
                SyncAction::Delete(dn) => {
                    if let Some(id) = self.interner.get(&dn_key(dn)) {
                        if (id as usize) < next.len() && next[id as usize].take().is_some() {
                            live -= 1;
                        }
                    }
                }
            }
        }
        self.slots = next;
        self.live = live;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(dn: &str) -> Entry {
        Entry::new(dn.parse().unwrap()).with("objectclass", "person")
    }

    #[test]
    fn incremental_actions() {
        let mut c = ReplicaContent::new();
        c.apply(&SyncAction::Add(entry("cn=a,o=x")));
        c.apply(&SyncAction::Add(entry("cn=b,o=x")));
        assert_eq!(c.len(), 2);
        c.apply(&SyncAction::Delete("cn=a,o=x".parse().unwrap()));
        assert_eq!(c.len(), 1);
        assert!(c.contains(&"cn=b,o=x".parse().unwrap()));
        // Case-insensitive keying.
        assert!(c.contains(&"CN=B,O=X".parse().unwrap()));
    }

    #[test]
    fn modify_upserts() {
        let mut c = ReplicaContent::new();
        let e = entry("cn=a,o=x").with("mail", "1@x");
        c.apply(&SyncAction::Modify(e));
        assert_eq!(c.len(), 1);
        let e2 = entry("cn=a,o=x").with("mail", "2@x");
        c.apply(&SyncAction::Modify(e2.clone()));
        assert_eq!(c.get(&"cn=a,o=x".parse().unwrap()), Some(&e2));
    }

    #[test]
    fn snapshot_cycle_drops_unmentioned() {
        let mut c = ReplicaContent::new();
        c.apply(&SyncAction::Add(entry("cn=a,o=x")));
        c.apply(&SyncAction::Add(entry("cn=b,o=x")));
        c.apply(&SyncAction::Add(entry("cn=c,o=x")));
        // Cycle: retain a, modify b; c unmentioned -> dropped.
        let cycle = vec![
            SyncAction::Retain("cn=a,o=x".parse().unwrap()),
            SyncAction::Modify(entry("cn=b,o=x").with("mail", "m@x")),
        ];
        c.apply_snapshot_cycle(&cycle);
        assert_eq!(c.len(), 2);
        assert!(c.contains(&"cn=a,o=x".parse().unwrap()));
        assert!(!c.contains(&"cn=c,o=x".parse().unwrap()));
    }

    #[test]
    fn retain_of_unknown_dn_is_ignored() {
        let mut c = ReplicaContent::new();
        c.apply_snapshot_cycle(&[SyncAction::Retain("cn=ghost,o=x".parse().unwrap())]);
        assert!(c.is_empty());
    }

    #[test]
    fn readd_after_delete_reuses_slot() {
        let mut c = ReplicaContent::new();
        c.apply(&SyncAction::Add(entry("cn=a,o=x")));
        c.apply(&SyncAction::Delete("cn=a,o=x".parse().unwrap()));
        assert!(c.is_empty());
        c.apply(&SyncAction::Add(entry("cn=a,o=x").with("mail", "m@x")));
        assert_eq!(c.len(), 1);
        assert_eq!(c.sorted_dns(), ["cn=a,o=x"]);
    }

    #[test]
    fn sorted_dns_are_deterministic() {
        let mut c = ReplicaContent::new();
        for dn in ["cn=c,o=x", "cn=a,o=x", "cn=b,o=x"] {
            c.apply(&SyncAction::Add(entry(dn)));
        }
        assert_eq!(c.sorted_dns(), ["cn=a,o=x", "cn=b,o=x", "cn=c,o=x"]);
    }
}
