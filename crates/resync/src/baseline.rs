//! Baseline synchronization strategies ReSync is compared against (§5.2).
//!
//! Each strategy implements [`Synchronizer`]: given read access to the
//! master's [`DitStore`] (including its changelog and tombstones), bring a
//! [`ReplicaContent`] up to date and report the traffic spent. The
//! strategies differ in what history they can consult:
//!
//! | strategy | history used | converges? | delete traffic |
//! |---|---|---|---|
//! | [`FullReload`] | none | yes | implicit (full resend) |
//! | [`RetainSync`] | change set only (eq. 3) | yes | touches whole content per cycle |
//! | [`TombstoneSync`] | tombstones + modified-DN set | yes | **every** deleted DN, conservative deletes for modified entries |
//! | [`ChangelogSync`] | changelog records | yes | every deleted DN (delete records carry no attributes) |
//! | [`NaiveChangelogSync`] | changelog records only, filtered deletes | **no** | low, but leaves ghost entries |
//!
//! The ReSync protocol itself ([`crate::SyncMaster`]) maintains per-session
//! history and sends exactly `E01 ∪ E10 ∪ (E11 ∩ sent)`.

use crate::content::ReplicaContent;
use crate::protocol::{SyncAction, SyncTraffic};
use fbdr_dit::{ChangeKind, Csn, DitStore};
use fbdr_ldap::{Dn, Entry, SearchRequest};
use std::collections::{HashMap, HashSet};

/// A replica-side synchronization strategy.
pub trait Synchronizer {
    /// Human-readable strategy name (for experiment output).
    fn name(&self) -> &'static str;

    /// Brings `replica` up to date with `master` for `request`, returning
    /// the traffic this cycle cost.
    fn sync(
        &mut self,
        master: &DitStore,
        request: &SearchRequest,
        replica: &mut ReplicaContent,
    ) -> SyncTraffic;
}

fn traffic_of(actions: &[SyncAction]) -> SyncTraffic {
    let mut t = SyncTraffic::default();
    for a in actions {
        t.count(a);
    }
    t
}

/// Resend the complete content every cycle.
#[derive(Debug, Default)]
pub struct FullReload;

impl Synchronizer for FullReload {
    fn name(&self) -> &'static str {
        "full-reload"
    }

    fn sync(
        &mut self,
        master: &DitStore,
        request: &SearchRequest,
        replica: &mut ReplicaContent,
    ) -> SyncTraffic {
        let actions: Vec<SyncAction> = master
            .search(request)
            .into_iter()
            .map(SyncAction::Add)
            .collect();
        replica.apply_snapshot_cycle(&actions);
        traffic_of(&actions)
    }
}

/// The history-free scheme of equation (3): changed in-content entries are
/// sent in full, unchanged ones as DN-only `retain` actions, and anything
/// unmentioned is implicitly deleted. Converges without any deletion
/// history, but every cycle touches the entire content.
#[derive(Debug, Default)]
pub struct RetainSync {
    last_csn: Csn,
}

impl Synchronizer for RetainSync {
    fn name(&self) -> &'static str {
        "retain"
    }

    fn sync(
        &mut self,
        master: &DitStore,
        request: &SearchRequest,
        replica: &mut ReplicaContent,
    ) -> SyncTraffic {
        let changed: HashSet<String> = changed_dns(master, self.last_csn);
        let mut actions = Vec::new();
        for e in master.search(request) {
            let k = e.dn().to_string();
            if changed.contains(&k) || !replica.contains(e.dn()) {
                actions.push(SyncAction::Add(e));
            } else {
                actions.push(SyncAction::Retain(e.dn().clone()));
            }
        }
        self.last_csn = master.csn();
        replica.apply_snapshot_cycle(&actions);
        traffic_of(&actions)
    }
}

/// Tombstone-driven incremental sync: modified entries are re-evaluated
/// against the filter (fetching current state), but since tombstones keep
/// no attribute data, **every** deleted DN must be shipped, and every
/// modified entry that no longer matches gets a conservative delete.
#[derive(Debug, Default)]
pub struct TombstoneSync {
    last_csn: Csn,
}

impl Synchronizer for TombstoneSync {
    fn name(&self) -> &'static str {
        "tombstone"
    }

    fn sync(
        &mut self,
        master: &DitStore,
        request: &SearchRequest,
        replica: &mut ReplicaContent,
    ) -> SyncTraffic {
        let mut actions = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        // Tombstones are keyed by deletion CSN; walking the modified-DN
        // set (the changelog targets) in CSN order and emitting each
        // tombstoned delete at its own position keeps replica application
        // chronological (a delete-then-re-add must not end deleted).
        let mut tombstones = master.tombstones_since(self.last_csn).peekable();
        for rec in master.changelog_since(self.last_csn) {
            if rec.kind == ChangeKind::Delete {
                if let Some(ts) = tombstones.next_if(|t| t.csn <= rec.csn) {
                    actions.push(SyncAction::Delete(ts.dn.clone()));
                }
                // A later re-add of this DN must be processed afresh.
                seen.remove(&rec.dn.to_string());
                continue;
            }
            if rec.new_dn.is_some() {
                // Rename: the old DN may have been in the content, and a
                // later re-add at that DN must be processed afresh.
                actions.push(SyncAction::Delete(rec.dn.clone()));
                seen.remove(&rec.dn.to_string());
            }
            let dn = rec.new_dn.as_ref().unwrap_or(&rec.dn);
            if !seen.insert(dn.to_string()) {
                continue;
            }
            match master.get(dn) {
                Some(e) if request.matches(e) => actions.push(SyncAction::Add(e.clone())),
                Some(_) => actions.push(SyncAction::Delete(dn.clone())),
                None => {} // deleted later; its tombstone is emitted in order
            }
        }
        for ts in tombstones {
            actions.push(SyncAction::Delete(ts.dn.clone()));
        }
        self.last_csn = master.csn();
        replica.apply_all(&actions);
        traffic_of(&actions)
    }
}

/// Convergent changelog-driven sync. Delete records carry no attributes,
/// so — like tombstones — every deleted DN is shipped; modified entries
/// are re-fetched and conservatively deleted when they no longer match.
#[derive(Debug, Default)]
pub struct ChangelogSync {
    last_csn: Csn,
}

impl Synchronizer for ChangelogSync {
    fn name(&self) -> &'static str {
        "changelog"
    }

    fn sync(
        &mut self,
        master: &DitStore,
        request: &SearchRequest,
        replica: &mut ReplicaContent,
    ) -> SyncTraffic {
        let mut actions = Vec::new();
        for rec in master.changelog_since(self.last_csn) {
            match rec.kind {
                ChangeKind::Delete => actions.push(SyncAction::Delete(rec.dn.clone())),
                ChangeKind::ModifyDn => {
                    actions.push(SyncAction::Delete(rec.dn.clone()));
                    if let Some(new_dn) = &rec.new_dn {
                        match master.get(new_dn) {
                            Some(e) if request.matches(e) => actions.push(SyncAction::Add(e.clone())),
                            Some(_) => actions.push(SyncAction::Delete(new_dn.clone())),
                            None => {}
                        }
                    }
                }
                ChangeKind::Add | ChangeKind::Modify => match master.get(&rec.dn) {
                    Some(e) if request.matches(e) => actions.push(SyncAction::Add(e.clone())),
                    Some(_) => actions.push(SyncAction::Delete(rec.dn.clone())),
                    None => {}
                },
            }
        }
        self.last_csn = master.csn();
        replica.apply_all(&actions);
        traffic_of(&actions)
    }
}

/// A changelog consumer that tries to *filter deletions* through the log:
/// it reconstructs entry state from the attribute values the records carry
/// and skips deletes for entries it believes were outside the content.
///
/// This is the paper's §5.2 counterexample: a modify record carries only
/// the changed attributes, so when an entry is modified out of the content
/// and then deleted, the log cannot establish prior membership and the
/// replica keeps a **ghost entry** — the strategy does not converge.
#[derive(Debug, Default)]
pub struct NaiveChangelogSync {
    last_csn: Csn,
    /// Attribute knowledge accumulated from the log (partial!).
    knowledge: HashMap<String, Entry>,
}

impl NaiveChangelogSync {
    /// Creates a consumer that starts reading the changelog after `csn`
    /// (typically the CSN at which the replica was bootstrapped by a full
    /// load).
    pub fn starting_at(csn: Csn) -> Self {
        NaiveChangelogSync { last_csn: csn, knowledge: HashMap::new() }
    }

    /// True when the accumulated knowledge about `e` covers every
    /// attribute the filter mentions.
    fn covers(&self, e: &Entry, request: &SearchRequest) -> bool {
        request
            .filter()
            .attr_names()
            .iter()
            .all(|a| e.has_attr(a))
    }
}

impl Synchronizer for NaiveChangelogSync {
    fn name(&self) -> &'static str {
        "naive-changelog"
    }

    fn sync(
        &mut self,
        master: &DitStore,
        request: &SearchRequest,
        replica: &mut ReplicaContent,
    ) -> SyncTraffic {
        let mut actions = Vec::new();
        for rec in master.changelog_since(self.last_csn) {
            let k = rec.dn.to_string();
            match rec.kind {
                ChangeKind::Add => {
                    let mut e = Entry::new(rec.dn.clone());
                    for (a, vs) in &rec.changes {
                        e.replace(a.clone(), vs.iter().cloned());
                    }
                    if request.matches(&e) {
                        actions.push(SyncAction::Add(e.clone()));
                    }
                    self.knowledge.insert(k, e);
                }
                ChangeKind::Modify => {
                    let e = self
                        .knowledge
                        .entry(k)
                        .or_insert_with(|| Entry::new(rec.dn.clone()));
                    for (a, vs) in &rec.changes {
                        e.replace(a.clone(), vs.iter().cloned());
                    }
                    let e = e.clone();
                    if self.covers(&e, request) {
                        if request.matches(&e) {
                            actions.push(SyncAction::Add(e));
                        } else {
                            actions.push(SyncAction::Delete(rec.dn.clone()));
                        }
                    }
                    // Not covering: cannot decide — skip (divergence risk).
                }
                ChangeKind::Delete => {
                    match self.knowledge.remove(&rec.dn.to_string()) {
                        Some(e) if self.covers(&e, request) && request.matches(&e) => {
                            actions.push(SyncAction::Delete(rec.dn.clone()));
                        }
                        _ => {
                            // Either "known" to be outside (delete skipped)
                            // or no attribute knowledge at all: this is
                            // exactly where ghosts arise when the
                            // knowledge is wrong or incomplete.
                        }
                    }
                }
                ChangeKind::ModifyDn => {
                    actions.push(SyncAction::Delete(rec.dn.clone()));
                    if let Some(new_dn) = &rec.new_dn {
                        if let Some(e) = master.get(new_dn) {
                            if request.matches(e) {
                                actions.push(SyncAction::Add(e.clone()));
                            }
                            self.knowledge.insert(new_dn.to_string(), e.clone());
                        }
                    }
                    self.knowledge.remove(&rec.dn.to_string());
                }
            }
        }
        self.last_csn = master.csn();
        replica.apply_all(&actions);
        traffic_of(&actions)
    }
}

/// DNs touched by any change since `since` (targets and rename
/// destinations).
fn changed_dns(master: &DitStore, since: Csn) -> HashSet<String> {
    let mut out = HashSet::new();
    for rec in master.changelog_since(since) {
        out.insert(rec.dn.to_string());
        if let Some(nd) = &rec.new_dn {
            out.insert(nd.to_string());
        }
    }
    out
}

/// Compares a replica's content against the master's current answer for
/// `request`; returns the mismatching DNs (empty = converged).
pub fn divergence(master: &DitStore, request: &SearchRequest, replica: &ReplicaContent) -> Vec<String> {
    let master_dns: HashSet<String> = master
        .search_dns(request)
        .iter()
        .map(Dn::to_string)
        .collect();
    let replica_dns: HashSet<String> = replica.iter().map(|e| e.dn().to_string()).collect();
    let mut diff: Vec<String> = master_dns.symmetric_difference(&replica_dns).cloned().collect();
    diff.sort();
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbdr_dit::{Modification, UpdateOp};
    use fbdr_ldap::{Filter, Scope};

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn person(cn: &str, dept: &str) -> Entry {
        Entry::new(dn(&format!("cn={cn},o=xyz")))
            .with("objectclass", "person")
            .with("cn", cn)
            .with("dept", dept)
            .with("mail", &format!("{cn}@xyz.com"))
    }

    fn master() -> DitStore {
        let mut d = DitStore::new();
        d.add_suffix(dn("o=xyz"));
        d.add(Entry::new(dn("o=xyz"))).unwrap();
        for (cn, dept) in [("a", "7"), ("b", "7"), ("c", "9")] {
            d.add(person(cn, dept)).unwrap();
        }
        d
    }

    fn dept7() -> SearchRequest {
        SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::parse("(dept=7)").unwrap())
    }

    fn run_scenario(sync: &mut dyn Synchronizer) -> (DitStore, ReplicaContent, Vec<SyncTraffic>) {
        let mut m = master();
        let req = dept7();
        let mut replica = ReplicaContent::new();
        let mut traffics = Vec::new();
        traffics.push(sync.sync(&m, &req, &mut replica));
        // Round of updates: b leaves (modify), c joins, a deleted, d added.
        m.modify(
            &dn("cn=b,o=xyz"),
            vec![Modification::Replace("dept".into(), vec!["8".into()])],
        )
        .unwrap();
        m.modify(
            &dn("cn=c,o=xyz"),
            vec![Modification::Replace("dept".into(), vec!["7".into()])],
        )
        .unwrap();
        m.delete(&dn("cn=a,o=xyz")).unwrap();
        m.apply(UpdateOp::Add(person("d", "7"))).unwrap();
        traffics.push(sync.sync(&m, &req, &mut replica));
        (m, replica, traffics)
    }

    #[test]
    fn full_reload_converges_expensively() {
        let mut s = FullReload;
        let (m, replica, traffics) = run_scenario(&mut s);
        assert!(divergence(&m, &dept7(), &replica).is_empty());
        // Every cycle resends the whole content in full.
        assert_eq!(traffics[1].full_entries as usize, replica.len());
        assert_eq!(traffics[1].dn_only, 0);
    }

    #[test]
    fn retain_sync_converges() {
        let mut s = RetainSync::default();
        let (m, replica, _) = run_scenario(&mut s);
        assert!(divergence(&m, &dept7(), &replica).is_empty());
    }

    #[test]
    fn retain_sync_touches_whole_content_every_cycle() {
        let m = master();
        let req = dept7();
        let mut s = RetainSync::default();
        let mut replica = ReplicaContent::new();
        let t0 = s.sync(&m, &req, &mut replica);
        assert_eq!(t0.full_entries, 2);
        // Nothing changed, but the whole content still travels as retains.
        let t1 = s.sync(&m, &req, &mut replica);
        assert_eq!(t1.full_entries, 0);
        assert_eq!(t1.dn_only, 2);
        assert!(divergence(&m, &req, &replica).is_empty());
    }

    #[test]
    fn tombstone_sync_converges_but_ships_every_delete() {
        let mut s = TombstoneSync::default();
        let (m, replica, traffics) = run_scenario(&mut s);
        assert!(divergence(&m, &dept7(), &replica).is_empty());
        // a deleted (tombstone) + b modified-out (conservative delete).
        assert!(traffics[1].dn_only >= 2);
    }

    #[test]
    fn changelog_sync_converges() {
        let mut s = ChangelogSync::default();
        let (m, replica, _) = run_scenario(&mut s);
        assert!(divergence(&m, &dept7(), &replica).is_empty());
    }

    #[test]
    fn naive_changelog_ghost_entry() {
        // The §5.2 counterexample: entry exists *before* the sync session
        // starts, is modified out of the content, then deleted. The modify
        // record carries only the changed attribute (dept), not the other
        // filter attribute (objectclass), so the naive log reader can
        // never establish membership and keeps a ghost.
        let mut m = master();
        let req = SearchRequest::new(
            dn("o=xyz"),
            Scope::Subtree,
            Filter::parse("(&(objectclass=person)(dept=7))").unwrap(),
        );
        let mut replica = ReplicaContent::new();
        // Bootstrap the naive replica with a full reload (common practice),
        // then switch to naive changelog consumption.
        FullReload.sync(&m, &req, &mut replica);
        let mut naive = NaiveChangelogSync { last_csn: m.csn(), ..Default::default() };

        m.modify(
            &dn("cn=a,o=xyz"),
            vec![Modification::Replace("dept".into(), vec!["8".into()])],
        )
        .unwrap();
        m.delete(&dn("cn=a,o=xyz")).unwrap();
        naive.sync(&m, &req, &mut replica);

        let ghosts = divergence(&m, &req, &replica);
        assert!(
            !ghosts.is_empty(),
            "naive changelog should diverge (ghost entry) but converged"
        );
        // The convergent strategies handle the same history fine.
        let mut replica2 = ReplicaContent::new();
        let mut ts = TombstoneSync::default();
        ts.sync(&m, &req, &mut replica2);
        assert!(divergence(&m, &req, &replica2).is_empty());
    }

    #[test]
    fn divergence_reports_both_directions() {
        let m = master();
        let req = dept7();
        let mut replica = ReplicaContent::new();
        // Missing entries.
        assert_eq!(divergence(&m, &req, &replica).len(), 2);
        // Ghost entry.
        replica.apply(&SyncAction::Add(person("ghost", "7")));
        assert_eq!(divergence(&m, &req, &replica).len(), 3);
    }
}
