//! Master-side session routing index: which sessions can an update touch?
//!
//! `SyncMaster::apply` must tell every *interested* session about an
//! update, but evaluating every session's filter against every update is
//! O(sessions) per op — the paper's templates (§4) exist precisely to
//! prune that kind of per-filter work. This module applies the same idea
//! to fan-out: sessions are grouped by LDAP template, the template's
//! [`routing plan`](fbdr_ldap::Template::routing_plan) is computed once
//! per template, and each session's concrete assertion values key into
//! posting maps of session ids:
//!
//! * **equality** `(attr, value)` → sessions asserting exactly that value,
//! * **prefix** `(attr, initial)` → sessions with an initial-substring
//!   assertion on `attr`,
//! * **presence** `attr` → sessions asserting `(attr=*)`.
//!
//! Sessions whose filters have no sound routing keys (`Not`, substring
//! without an initial segment, pure range filters, …) land on a
//! **residual scan-list**, bucketed by the root-most RDN of their search
//! base so an update under `o=xyz` never scans sessions rooted at
//! `o=abc`.
//!
//! The soundness contract (inherited from `routing_plan`): *if a
//! session's filter matches an entry, at least one of its registered keys
//! matches that entry's attribute state*. The master therefore looks up
//! candidates from the entry's **old and new** values — an entry leaving
//! a filter stops matching the new state, but its old state still hits
//! the session's keys, which is exactly what routes the departure.
//!
//! All posting structures hang off a single per-attribute map, so the
//! per-update candidate lookup costs one hash probe per entry attribute
//! and allocates nothing.

use fbdr_ldap::{Dn, SearchRequest, Template, TemplateId};
use std::collections::HashMap;

/// A concrete posting key a session is registered under.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum RouteKey {
    /// Attribute (lowercased) asserted equal to a normalized value.
    Eq(String, String),
    /// Attribute (lowercased) asserted to start with a normalized prefix.
    Prefix(String, String),
    /// Attribute (lowercased) asserted present.
    Present(String),
}

/// How one session is registered, remembered for exact removal.
#[derive(Debug, Clone)]
enum Registration {
    /// Indexed under these posting keys.
    Keys(Vec<RouteKey>),
    /// On the residual scan-list under this base bucket (`None` = rooted
    /// at the empty DN, scanned for every update).
    Residual(Option<(String, String)>),
}

/// Counts of live index structures, for tests and observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoutingStats {
    /// Sessions currently registered.
    pub sessions: usize,
    /// Sessions reachable through posting keys.
    pub indexed: usize,
    /// Sessions on the residual scan-list.
    pub residual: usize,
    /// Distinct equality `(attr, value)` posting keys.
    pub eq_keys: usize,
    /// Distinct prefix `(attr, initial)` posting keys.
    pub prefix_keys: usize,
    /// Distinct presence posting keys.
    pub present_keys: usize,
    /// Distinct templates whose routing plan has been computed.
    pub templates: usize,
}

/// The root-most RDN of a DN as a lowercased attribute and normalized
/// value, or `None` for the empty DN. Buckets residual sessions by
/// naming context.
fn root_bucket(dn: &Dn) -> Option<(String, String)> {
    dn.rdns()
        .last()
        .map(|r| (r.attr().lower().to_owned(), r.value().normalized().to_owned()))
}

/// Every posting list attached to one attribute. Grouping the three key
/// kinds under a single map keeps the hot path at one probe per entry
/// attribute.
#[derive(Debug, Clone, Default)]
struct AttrPostings {
    /// Normalized value → sessions asserting equality with it.
    eq: HashMap<String, Vec<u32>>,
    /// `(normalized prefix, sessions)` pairs for initial-substring keys.
    prefix: Vec<(String, Vec<u32>)>,
    /// Sessions asserting presence of the attribute.
    present: Vec<u32>,
}

impl AttrPostings {
    fn is_empty(&self) -> bool {
        self.eq.is_empty() && self.prefix.is_empty() && self.present.is_empty()
    }
}

/// An index from update content to the session ids it can affect.
///
/// Maintained by the master across the session lifecycle (`register` on
/// install, `remove` on abandon/expiry); never serialized — the master
/// rebuilds it from the surviving sessions after deserialization.
#[derive(Debug, Clone, Default)]
pub struct RoutingIndex {
    /// Template id → cached routing plan presence (`false` = residual).
    /// The concrete [`fbdr_ldap::SlotKey`] plan is recomputed per
    /// registration (registrations are rare); what this cache buys is
    /// the per-template *decision*, mirroring the paper's argument that
    /// live filters collapse onto few templates.
    plans: HashMap<TemplateId, bool>,
    /// Lowercased attribute → its posting lists.
    by_attr: HashMap<String, AttrPostings>,
    /// Root RDN `(attr, value)` → residual sessions based under it.
    residual: HashMap<String, HashMap<String, Vec<u32>>>,
    /// Residual sessions based at the empty DN (scanned for every DN).
    residual_root: Vec<u32>,
    registered: HashMap<u32, Registration>,
}

fn posting_insert(list: &mut Vec<u32>, id: u32) {
    if let Err(pos) = list.binary_search(&id) {
        list.insert(pos, id);
    }
}

fn posting_remove(list: &mut Vec<u32>, id: u32) {
    if let Ok(pos) = list.binary_search(&id) {
        list.remove(pos);
    }
}

impl RoutingIndex {
    /// An empty index.
    pub fn new() -> Self {
        RoutingIndex::default()
    }

    /// Number of sessions currently registered.
    pub fn len(&self) -> usize {
        self.registered.len()
    }

    /// True when no session is registered.
    pub fn is_empty(&self) -> bool {
        self.registered.is_empty()
    }

    /// True when `id` is registered.
    pub fn contains(&self, id: u32) -> bool {
        self.registered.contains_key(&id)
    }

    /// Instantiates one plan alternative against the query's slot values.
    fn concrete_keys(plan: &[fbdr_ldap::SlotKey], values: &[fbdr_ldap::AttrValue]) -> Vec<RouteKey> {
        plan.iter()
            .map(|k| match k {
                fbdr_ldap::SlotKey::Eq { attr, slot } => RouteKey::Eq(
                    attr.lower().to_owned(),
                    values[*slot].normalized().to_owned(),
                ),
                fbdr_ldap::SlotKey::Prefix { attr, slot } => RouteKey::Prefix(
                    attr.lower().to_owned(),
                    values[*slot].normalized().to_owned(),
                ),
                fbdr_ldap::SlotKey::Present { attr } => {
                    RouteKey::Present(attr.lower().to_owned())
                }
            })
            .collect()
    }

    /// How many sessions already sit on this key set's posting lists —
    /// the expected extra fan-out of picking it. Lower is better.
    fn key_load(&self, keys: &[RouteKey]) -> usize {
        keys.iter()
            .map(|k| match k {
                RouteKey::Eq(a, v) => self
                    .by_attr
                    .get(a)
                    .and_then(|b| b.eq.get(v))
                    .map_or(0, Vec::len),
                RouteKey::Prefix(a, p) => self
                    .by_attr
                    .get(a)
                    .and_then(|b| b.prefix.iter().find(|(q, _)| q == p))
                    .map_or(0, |(_, ids)| ids.len()),
                RouteKey::Present(a) => {
                    self.by_attr.get(a).map_or(0, |b| b.present.len())
                }
            })
            .sum()
    }

    /// Registers a session under the routing keys of its request filter,
    /// or on the residual scan-list when the filter is not indexable.
    /// When the template offers several sound key sets (a conjunction of
    /// indexable children), the alternative whose posting lists currently
    /// hold the fewest sessions wins — near-constant assertions like
    /// `objectclass=person` stay unpicked once they start crowding, so a
    /// fleet of `(&(objectclass=person)(dept=N))` sessions keys on the
    /// selective `dept` slot instead of degenerating to a broadcast list.
    /// Re-registering an id first removes its old registration.
    pub fn register(&mut self, id: u32, request: &SearchRequest) {
        self.remove(id);
        let (template, values) = Template::of(request.filter());
        let plans = template.routing_plans();
        self.plans.insert(template.id().clone(), plans.is_some());
        let reg = match plans {
            Some(alts) => {
                let keys = alts
                    .iter()
                    .map(|plan| Self::concrete_keys(plan, &values))
                    .min_by_key(|keys| (self.key_load(keys), keys.len()))
                    .expect("routing_plans returns non-empty alternatives");
                for key in &keys {
                    match key {
                        RouteKey::Eq(a, v) => posting_insert(
                            self.by_attr
                                .entry(a.clone())
                                .or_default()
                                .eq
                                .entry(v.clone())
                                .or_default(),
                            id,
                        ),
                        RouteKey::Prefix(a, p) => {
                            let b = self.by_attr.entry(a.clone()).or_default();
                            match b.prefix.iter_mut().find(|(q, _)| q == p) {
                                Some((_, ids)) => posting_insert(ids, id),
                                None => b.prefix.push((p.clone(), vec![id])),
                            }
                        }
                        RouteKey::Present(a) => posting_insert(
                            &mut self.by_attr.entry(a.clone()).or_default().present,
                            id,
                        ),
                    }
                }
                Registration::Keys(keys)
            }
            None => {
                let bucket = root_bucket(request.base());
                match &bucket {
                    Some((a, v)) => posting_insert(
                        self.residual
                            .entry(a.clone())
                            .or_default()
                            .entry(v.clone())
                            .or_default(),
                        id,
                    ),
                    None => posting_insert(&mut self.residual_root, id),
                }
                Registration::Residual(bucket)
            }
        };
        self.registered.insert(id, reg);
    }

    /// Removes a session from every posting list it appears in. A no-op
    /// for unknown ids. Emptied posting lists are dropped so the key
    /// space tracks the live session population.
    pub fn remove(&mut self, id: u32) {
        let Some(reg) = self.registered.remove(&id) else {
            return;
        };
        match reg {
            Registration::Keys(keys) => {
                for key in keys {
                    let attr = match &key {
                        RouteKey::Eq(a, _)
                        | RouteKey::Prefix(a, _)
                        | RouteKey::Present(a) => a,
                    };
                    let Some(b) = self.by_attr.get_mut(attr) else {
                        continue;
                    };
                    match &key {
                        RouteKey::Eq(_, v) => {
                            if let Some(ids) = b.eq.get_mut(v) {
                                posting_remove(ids, id);
                                if ids.is_empty() {
                                    b.eq.remove(v);
                                }
                            }
                        }
                        RouteKey::Prefix(_, p) => {
                            if let Some(pos) = b.prefix.iter().position(|(q, _)| q == p) {
                                posting_remove(&mut b.prefix[pos].1, id);
                                if b.prefix[pos].1.is_empty() {
                                    b.prefix.remove(pos);
                                }
                            }
                        }
                        RouteKey::Present(_) => posting_remove(&mut b.present, id),
                    }
                    if b.is_empty() {
                        self.by_attr.remove(attr);
                    }
                }
            }
            Registration::Residual(Some((a, v))) => {
                if let Some(per_attr) = self.residual.get_mut(&a) {
                    if let Some(ids) = per_attr.get_mut(&v) {
                        posting_remove(ids, id);
                        if ids.is_empty() {
                            per_attr.remove(&v);
                        }
                    }
                    if per_attr.is_empty() {
                        self.residual.remove(&a);
                    }
                }
            }
            Registration::Residual(None) => posting_remove(&mut self.residual_root, id),
        }
    }

    /// Appends to `out` every indexed session one of whose keys matches
    /// the entry's attribute state. Duplicates may be appended (a session
    /// can match on several keys) — sort + dedup once after collecting
    /// old and new state. One hash probe per entry attribute, zero
    /// allocations.
    pub fn candidates_for_entry(&self, entry: &fbdr_ldap::Entry, out: &mut Vec<u32>) {
        if self.by_attr.is_empty() {
            return;
        }
        for (attr, values) in entry.attrs() {
            let Some(b) = self.by_attr.get(attr.lower()) else {
                continue;
            };
            if !b.present.is_empty() {
                out.extend_from_slice(&b.present);
            }
            if b.eq.is_empty() && b.prefix.is_empty() {
                continue;
            }
            for v in values {
                let norm = v.normalized();
                if let Some(ids) = b.eq.get(norm) {
                    out.extend_from_slice(ids);
                }
                for (p, ids) in &b.prefix {
                    if norm.starts_with(p.as_str()) {
                        out.extend_from_slice(ids);
                    }
                }
            }
        }
    }

    /// Appends to `out` every residual (scan-list) session whose base
    /// bucket covers `dn`: the bucket of `dn`'s root-most RDN plus the
    /// sessions based at the empty DN.
    pub fn residual_for_dn(&self, dn: &Dn, out: &mut Vec<u32>) {
        if let Some(r) = dn.rdns().last() {
            if let Some(ids) = self
                .residual
                .get(r.attr().lower())
                .and_then(|per| per.get(r.value().normalized()))
            {
                out.extend_from_slice(ids);
            }
        }
        out.extend_from_slice(&self.residual_root);
    }

    /// Appends every registered session id to `out` (the naive
    /// reference path routes to everyone).
    pub fn all_sessions(&self, out: &mut Vec<u32>) {
        out.extend(self.registered.keys().copied());
    }

    /// Live structure counts.
    pub fn stats(&self) -> RoutingStats {
        let residual = self
            .registered
            .values()
            .filter(|r| matches!(r, Registration::Residual(_)))
            .count();
        RoutingStats {
            sessions: self.registered.len(),
            indexed: self.registered.len() - residual,
            residual,
            eq_keys: self.by_attr.values().map(|b| b.eq.len()).sum(),
            prefix_keys: self.by_attr.values().map(|b| b.prefix.len()).sum(),
            present_keys: self.by_attr.values().filter(|b| !b.present.is_empty()).count(),
            templates: self.plans.len(),
        }
    }

    /// Panics if any posting list holds an id that is not registered, or
    /// a registered id is missing from a posting list it should be on.
    /// Test-and-debug helper for the stale-id invariant.
    pub fn debug_validate(&self) {
        let check = |ids: &Vec<u32>, what: &str| {
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "{what}: unsorted postings");
            for id in ids {
                assert!(
                    self.registered.contains_key(id),
                    "{what}: stale session id {id} in posting list"
                );
            }
        };
        for (a, b) in &self.by_attr {
            assert!(!b.is_empty(), "attr {a}: empty posting group retained");
            for (v, ids) in &b.eq {
                check(ids, &format!("eq {a}={v}"));
                assert!(!ids.is_empty(), "eq {a}={v}: empty posting retained");
            }
            for (p, ids) in &b.prefix {
                check(ids, &format!("prefix {a}={p}*"));
                assert!(!ids.is_empty(), "prefix {a}={p}*: empty posting retained");
            }
            check(&b.present, &format!("present {a}"));
        }
        for (a, per_attr) in &self.residual {
            assert!(!per_attr.is_empty(), "residual {a}: empty attr map retained");
            for (v, ids) in per_attr {
                check(ids, &format!("residual bucket {a}={v}"));
                assert!(!ids.is_empty(), "residual {a}={v}: empty bucket retained");
            }
        }
        check(&self.residual_root, "residual root");
        for (id, reg) in &self.registered {
            let on = |ids: Option<&Vec<u32>>| ids.is_some_and(|l| l.binary_search(id).is_ok());
            match reg {
                Registration::Keys(keys) => {
                    for key in keys {
                        let present = match key {
                            RouteKey::Eq(a, v) => {
                                on(self.by_attr.get(a).and_then(|b| b.eq.get(v)))
                            }
                            RouteKey::Prefix(a, p) => self
                                .by_attr
                                .get(a)
                                .and_then(|b| b.prefix.iter().find(|(q, _)| q == p))
                                .is_some_and(|(_, l)| l.binary_search(id).is_ok()),
                            RouteKey::Present(a) => {
                                on(self.by_attr.get(a).map(|b| &b.present))
                            }
                        };
                        assert!(present, "session {id}: missing from posting for {key:?}");
                    }
                }
                Registration::Residual(Some((a, v))) => {
                    assert!(
                        on(self.residual.get(a).and_then(|per| per.get(v))),
                        "session {id}: missing from residual bucket {a}={v}"
                    );
                }
                Registration::Residual(None) => {
                    assert!(
                        on(Some(&self.residual_root)),
                        "session {id}: missing from the root residual list"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbdr_ldap::{Entry, Filter, Scope};

    fn req(base: &str, filter: &str) -> SearchRequest {
        SearchRequest::new(base.parse().unwrap(), Scope::Subtree, Filter::parse(filter).unwrap())
    }

    fn candidates(ix: &RoutingIndex, e: &Entry) -> Vec<u32> {
        let mut out = Vec::new();
        ix.candidates_for_entry(e, &mut out);
        ix.residual_for_dn(e.dn(), &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn routes_by_equality_prefix_presence_and_residual() {
        let mut ix = RoutingIndex::new();
        ix.register(0, &req("o=xyz", "(dept=7)"));
        ix.register(1, &req("o=xyz", "(sn=smi*)"));
        ix.register(2, &req("o=xyz", "(mail=*)"));
        ix.register(3, &req("o=xyz", "(!(dept=7))")); // residual
        ix.register(4, &req("o=abc", "(!(dept=7))")); // residual, other root
        ix.debug_validate();
        assert_eq!(ix.stats().sessions, 5);
        assert_eq!(ix.stats().residual, 2);

        let e = Entry::new("cn=a,o=xyz".parse().unwrap())
            .with("dept", "7")
            .with("sn", "Smith");
        // dept=7 matches 0; sn=Smith hits prefix smi*; residual bucket o=xyz → 3.
        assert_eq!(candidates(&ix, &e), vec![0, 1, 3]);

        let e2 = Entry::new("cn=b,o=xyz".parse().unwrap()).with("mail", "b@x");
        assert_eq!(candidates(&ix, &e2), vec![2, 3]);

        let e3 = Entry::new("cn=c,o=abc".parse().unwrap()).with("dept", "9");
        assert_eq!(candidates(&ix, &e3), vec![4]);
    }

    #[test]
    fn remove_leaves_no_stale_ids() {
        let mut ix = RoutingIndex::new();
        ix.register(0, &req("o=xyz", "(&(objectclass=person)(dept=7))"));
        ix.register(1, &req("o=xyz", "(|(dept=7)(dept=8))"));
        ix.register(2, &req("o=xyz", "(serialnumber>=100)")); // residual
        ix.debug_validate();

        ix.remove(1);
        ix.debug_validate();
        let e = Entry::new("cn=a,o=xyz".parse().unwrap()).with("dept", "8");
        assert_eq!(candidates(&ix, &e), vec![2]); // 1 gone, 0 keyed off dept=7 only

        ix.remove(0);
        ix.remove(2);
        ix.remove(2); // idempotent
        ix.debug_validate();
        assert!(ix.is_empty());
        assert_eq!(ix.stats().eq_keys, 0);
        assert_eq!(ix.stats().prefix_keys + ix.stats().present_keys, 0);
    }

    #[test]
    fn reregister_replaces_old_keys() {
        let mut ix = RoutingIndex::new();
        ix.register(7, &req("o=xyz", "(dept=7)"));
        ix.register(7, &req("o=xyz", "(dept=9)"));
        ix.debug_validate();
        let e7 = Entry::new("cn=a,o=xyz".parse().unwrap()).with("dept", "7");
        let e9 = Entry::new("cn=a,o=xyz".parse().unwrap()).with("dept", "9");
        assert!(candidates(&ix, &e7).is_empty());
        assert_eq!(candidates(&ix, &e9), vec![7]);
        assert_eq!(ix.stats().eq_keys, 1);
    }

    #[test]
    fn root_dse_residual_session_scans_every_update() {
        let mut ix = RoutingIndex::new();
        ix.register(0, &req("", "(!(mail=*))"));
        ix.debug_validate();
        let e = Entry::new("cn=a,o=xyz".parse().unwrap()).with("dept", "1");
        assert_eq!(candidates(&ix, &e), vec![0]);
        ix.remove(0);
        ix.debug_validate();
        assert!(ix.is_empty());
    }
}
