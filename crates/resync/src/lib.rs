#![warn(missing_docs)]
//! The **ReSync** filter synchronization protocol (§5 of the paper) and
//! the baseline synchronizers it is compared against.
//!
//! A filter-based replica stores the content of one or more search
//! requests. Keeping that content in sync with the master requires the
//! master to tell the replica, per request `S` and interval `(t, t']`:
//!
//! * `E01` — entries that *moved into* the content (sent in full),
//! * `E10` — entries that *moved out* (only the DN is needed),
//! * `E11` — entries that changed but stayed inside (sent in full).
//!
//! Computing `E10` reliably requires history. ReSync keeps **per-session
//! history**: at update time the master records, for each active session,
//! the DNs that left the session's content ([`SyncMaster`]). The
//! alternatives are implemented in [`baseline`] for comparison:
//!
//! * [`baseline::FullReload`] — resend everything;
//! * [`baseline::TombstoneSync`] — ship every deleted DN (tombstones hold
//!   state, not data);
//! * [`baseline::ChangelogSync`] — convergent but must conservatively
//!   delete every modified-and-now-unmatched DN, and still ship every
//!   deleted DN (changelogs record only changed attributes);
//! * [`baseline::NaiveChangelogSync`] — filters deletions through the
//!   changelog and consequently **fails to converge** when an entry is
//!   modified out of the content and then deleted (the paper's §5.2
//!   counterexample);
//! * [`baseline::RetainSync`] — the history-free scheme of equation (3):
//!   unchanged in-content entries are conveyed with `retain` actions
//!   (DN-only), at the cost of touching the whole content every cycle.
//!
//! # Example: an update session (poll mode)
//!
//! ```
//! use fbdr_dit::UpdateOp;
//! use fbdr_ldap::{Entry, Filter, Scope, SearchRequest};
//! use fbdr_resync::{ReSyncControl, SyncMaster, SyncMode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut master = SyncMaster::new();
//! master.dit_mut().add_suffix("o=xyz".parse()?);
//! master.apply(UpdateOp::Add(Entry::new("o=xyz".parse()?)))?;
//! master.apply(UpdateOp::Add(
//!     Entry::new("cn=a,o=xyz".parse()?).with("dept", "7"),
//! ))?;
//!
//! let s = SearchRequest::new("o=xyz".parse()?, Scope::Subtree, Filter::parse("(dept=7)")?);
//! // Initial request: null cookie, full content.
//! let resp = master.resync(&s, ReSyncControl::poll(None))?;
//! assert_eq!(resp.actions.len(), 1);
//! let cookie = resp.cookie.expect("poll returns a resumption cookie");
//!
//! // A later poll sends only what changed.
//! master.apply(UpdateOp::Add(Entry::new("cn=b,o=xyz".parse()?).with("dept", "7")))?;
//! let resp = master.resync(&s, ReSyncControl::poll(Some(cookie)))?;
//! assert_eq!(resp.actions.len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod baseline;
mod content;
pub mod driver;
mod intern;
mod master;
mod protocol;
pub mod reconcile;
mod routing;
pub mod shard;

pub use content::ReplicaContent;
pub use intern::{dn_key, entry_key, DnInterner, DnTable};
pub use driver::{Clock, DriverStats, RetryConfig, SyncDriver, SyncTransport, SystemClock};
pub use fbdr_net::{ShardId, ShardMap};
pub use intern::dn_approx_bytes;
pub use master::{GcConfig, GcReport, MasterFootprint, NotifyFlush, NotifyPolicy, SyncMaster};
pub use reconcile::{ReconcileConfig, ReconcileConfigBuilder, ReconcileItem, ReconcileOutcome};
pub use routing::{RoutingIndex, RoutingStats};
pub use shard::{
    CompositeCookie, ShardContent, ShardCoordinator, ShardOutcome, ShardStatus, ShardedMaster,
};
pub use protocol::{
    ActionCounts, Cookie, NotifyBatch, ReSyncControl, SyncAction, SyncError, SyncMode,
    SyncResponse, SyncTraffic,
};
