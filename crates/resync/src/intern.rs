//! Dense `u32` interning of normalized DN keys, with id recycling.
//!
//! Replica-side content stores are keyed by DN. Hashing the full string
//! form of a DN on every lookup is measurable on the query path, so the
//! sync layer interns each distinct DN key once and hands *ids* to the
//! stores: an id is a dense `u32` usable as a direct vector index, and a
//! set of ids is a sorted posting list that intersects without hashing.
//!
//! Ids are stable while a key is interned: a DN that stays in the
//! content keeps its id across epochs, which is what lets immutable
//! per-epoch structures (posting lists, attribute indexes) be shared
//! across epochs without re-translation. A key that has been deleted
//! *and is provably unreferenced* can be [released](DnInterner::release):
//! its slot joins a free list and is handed out again by a later
//! `intern`, so the id space — and every id-addressed vector built on it
//! — stops growing with lifetime churn. Each slot carries a
//! **generation tag** that increments on release, so holders of a stale
//! id can detect that the slot has been recycled out from under them
//! ([`DnInterner::generation`]).

use fbdr_ldap::{Dn, Entry};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The canonical string key of a DN: lowercased attribute types and
/// normalized values, comma-joined leaf-first. Two DNs that compare equal
/// under LDAP matching rules produce the same key.
pub fn dn_key(dn: &Dn) -> String {
    let mut out = String::new();
    for (i, r) in dn.rdns().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(r.attr().lower());
        out.push('=');
        out.push_str(r.value().normalized());
    }
    out
}

/// The canonical key of an entry's DN (see [`dn_key`]).
pub fn entry_key(e: &Entry) -> String {
    dn_key(e.dn())
}

/// Deterministic byte accounting for one DN: the sum of its normalized
/// attribute/value lengths plus a fixed per-RDN overhead. Used by the
/// memory-footprint reports instead of allocator statistics so equal
/// runs report equal bytes on every platform.
pub fn dn_approx_bytes(dn: &Dn) -> usize {
    dn.rdns()
        .iter()
        .map(|r| r.attr().lower().len() + r.value().normalized().len() + 16)
        .sum()
}

/// A map from normalized DN keys to dense `u32` ids with free-list
/// recycling.
///
/// `intern` assigns ids in first-seen order, reusing released slots
/// before growing; an id stays valid (a direct index into id-addressed
/// storage of length [`DnInterner::capacity`]) until it is explicitly
/// [released](DnInterner::release) by the owner that proved it
/// unreferenced.
///
/// ```
/// use fbdr_resync::DnInterner;
///
/// let mut it = DnInterner::new();
/// let a = it.intern("cn=a,o=x");
/// let b = it.intern("cn=b,o=x");
/// assert_ne!(a, b);
/// assert_eq!(it.intern("cn=a,o=x"), a); // stable while interned
/// assert_eq!(it.get("cn=b,o=x"), Some(b));
/// assert_eq!(it.key_of(a), Some("cn=a,o=x"));
/// assert_eq!(it.len(), 2);
///
/// // Releasing a slot recycles its id under a fresh generation.
/// it.release(a);
/// assert_eq!(it.key_of(a), None);
/// let c = it.intern("cn=c,o=x");
/// assert_eq!(c, a); // recycled, not grown
/// assert_eq!(it.generation(c), 1);
/// assert_eq!(it.capacity(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DnInterner {
    ids: HashMap<String, u32>,
    keys: Vec<Option<String>>,
    gens: Vec<u32>,
    free: Vec<u32>,
}

impl DnInterner {
    /// An empty interner.
    pub fn new() -> Self {
        DnInterner::default()
    }

    /// Number of distinct keys currently interned (live slots).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Upper bound of the id space: every id ever handed out is
    /// `< capacity()`, so id-addressed vectors of this length cover all
    /// live ids.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// True when nothing is currently interned.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Returns the id of `key`, reusing a released slot — or assigning
    /// the next dense id — on first sight.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` slots are live at once.
    pub fn intern(&mut self, key: &str) -> u32 {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = match self.free.pop() {
            Some(id) => {
                self.keys[id as usize] = Some(key.to_owned());
                id
            }
            None => {
                let id = u32::try_from(self.keys.len()).expect("id space exhausted");
                self.keys.push(Some(key.to_owned()));
                self.gens.push(0);
                id
            }
        };
        self.ids.insert(key.to_owned(), id);
        id
    }

    /// The id of `key`, if it is currently interned.
    pub fn get(&self, key: &str) -> Option<u32> {
        self.ids.get(key).copied()
    }

    /// The key an id is currently assigned to (sync-time reverse
    /// resolution); `None` for released or never-assigned slots.
    pub fn key_of(&self, id: u32) -> Option<&str> {
        self.keys.get(id as usize).and_then(|s| s.as_deref())
    }

    /// The generation tag of a slot: 0 while on its first assignment,
    /// incremented every time the slot is released. A holder that
    /// remembers `(id, generation)` can later detect recycling.
    pub fn generation(&self, id: u32) -> u32 {
        self.gens.get(id as usize).copied().unwrap_or(0)
    }

    /// Releases a live slot back to the free list, bumping its
    /// generation. The caller asserts nothing still indexes by this id.
    /// Returns `true` if the slot was live.
    pub fn release(&mut self, id: u32) -> bool {
        let Some(slot) = self.keys.get_mut(id as usize) else {
            return false;
        };
        let Some(key) = slot.take() else {
            return false;
        };
        self.ids.remove(&key);
        self.gens[id as usize] += 1;
        self.free.push(id);
        true
    }

    /// Deterministic byte accounting: interned key bytes plus fixed
    /// per-slot overhead (map entry, slot, generation, free-list entry).
    pub fn approx_bytes(&self) -> usize {
        let key_bytes: usize =
            self.keys.iter().flatten().map(|k| 2 * k.len() + 48).sum();
        key_bytes + self.keys.len() * 32 + self.free.len() * 4
    }
}

/// A bidirectional DN ↔ dense `u32` id table for master-side session
/// bookkeeping, with free-list recycling.
///
/// Pairs a DN → id map with id-indexed DN slots so the sync layer can
/// both intern a DN touched by an update *and* resolve ids back to DNs
/// when draining actions. Only the slot vector (plus generations and the
/// free list) is serialized; the map is rebuilt lazily after
/// deserialization. Slots whose DNs no session references any more are
/// [released](DnTable::release) by the master's garbage collector and
/// reused by later interns under a bumped generation tag.
///
/// ```
/// use fbdr_resync::DnTable;
///
/// let mut t = DnTable::new();
/// let a = t.intern(&"cn=A,o=X".parse().unwrap());
/// assert_eq!(t.intern(&"CN=a, O=X".parse().unwrap()), a); // normalized
/// assert_eq!(t.dn_of(a).unwrap().to_string(), "cn=A,o=X");
/// assert_eq!(t.len(), 1);
/// t.release(a);
/// let b = t.intern(&"cn=B,o=X".parse().unwrap());
/// assert_eq!(b, a); // recycled
/// assert_eq!(t.generation(b), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DnTable {
    slots: Vec<Option<Dn>>,
    gens: Vec<u32>,
    free: Vec<u32>,
    /// `Dn`'s `Eq`/`Hash` are case-insensitive over precomputed forms, so
    /// keying by the DN itself matches LDAP matching-rule equality without
    /// building a string key per probe.
    #[serde(skip)]
    ids: HashMap<Dn, u32>,
}

impl DnTable {
    /// An empty table.
    pub fn new() -> Self {
        DnTable::default()
    }

    /// Number of distinct DNs currently interned (live slots).
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Upper bound of the id space: every id ever handed out is
    /// `< capacity()`.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is currently interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rebuilds the DN → id map from the slot vector if it is out of
    /// date (after deserialization the map arrives empty).
    pub fn rehydrate(&mut self) {
        if self.ids.len() == self.len() {
            return;
        }
        self.ids = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|dn| (dn.clone(), i as u32)))
            .collect();
    }

    /// Returns the id of `dn`, reusing a released slot — or assigning
    /// the next dense id — on first sight. DNs equal under LDAP matching
    /// rules share an id; the first spelling seen is the one
    /// [`DnTable::dn_of`] returns.
    pub fn intern(&mut self, dn: &Dn) -> u32 {
        self.rehydrate();
        if let Some(&id) = self.ids.get(dn) {
            return id;
        }
        let id = match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(dn.clone());
                id
            }
            None => {
                let id = u32::try_from(self.slots.len()).expect("id space exhausted");
                self.slots.push(Some(dn.clone()));
                self.gens.push(0);
                id
            }
        };
        self.ids.insert(dn.clone(), id);
        id
    }

    /// The id of `dn`, if currently interned. Requires a hydrated table
    /// (any `&mut self` call rehydrates; fresh tables are hydrated).
    pub fn get(&self, dn: &Dn) -> Option<u32> {
        debug_assert_eq!(self.ids.len(), self.len(), "table not rehydrated");
        self.ids.get(dn).copied()
    }

    /// The DN an id is currently assigned to (drain-time reverse
    /// resolution); `None` for released or never-assigned slots.
    pub fn dn_of(&self, id: u32) -> Option<&Dn> {
        self.slots.get(id as usize).and_then(|s| s.as_ref())
    }

    /// The generation tag of a slot: 0 on first assignment, incremented
    /// every time the slot is released.
    pub fn generation(&self, id: u32) -> u32 {
        self.gens.get(id as usize).copied().unwrap_or(0)
    }

    /// Releases a live slot back to the free list, bumping its
    /// generation. The caller (the master's GC) asserts no session
    /// posting list or stash still references this id. Returns `true`
    /// if the slot was live.
    pub fn release(&mut self, id: u32) -> bool {
        self.rehydrate();
        let Some(slot) = self.slots.get_mut(id as usize) else {
            return false;
        };
        let Some(dn) = slot.take() else {
            return false;
        };
        self.ids.remove(&dn);
        self.gens[id as usize] += 1;
        self.free.push(id);
        true
    }

    /// Deterministic byte accounting: interned DN bytes (normalized
    /// forms plus fixed per-RDN overhead) plus per-slot overhead for the
    /// map entry, slot, generation, and free-list bookkeeping.
    pub fn approx_bytes(&self) -> usize {
        let dn_bytes: usize =
            self.slots.iter().flatten().map(|dn| 2 * dn_approx_bytes(dn) + 48).sum();
        dn_bytes + self.slots.len() * 32 + self.free.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_normalized() {
        let d: Dn = "CN=John  Doe, O=XYZ".parse().unwrap();
        assert_eq!(dn_key(&d), "cn=john doe,o=xyz");
        let e = Entry::new("cn=A,o=X".parse().unwrap());
        assert_eq!(entry_key(&e), "cn=a,o=x");
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let mut it = DnInterner::new();
        for i in 0..100u32 {
            assert_eq!(it.intern(&format!("cn=e{i},o=x")), i);
        }
        for i in 0..100u32 {
            assert_eq!(it.intern(&format!("cn=e{i},o=x")), i, "re-intern is stable");
            assert_eq!(it.key_of(i), Some(format!("cn=e{i},o=x").as_str()));
        }
        assert_eq!(it.len(), 100);
        assert_eq!(it.get("cn=missing,o=x"), None);
        assert_eq!(it.key_of(100), None);
    }

    #[test]
    fn interner_recycles_released_slots() {
        let mut it = DnInterner::new();
        let a = it.intern("cn=a,o=x");
        let b = it.intern("cn=b,o=x");
        assert!(it.release(a));
        assert!(!it.release(a), "double release is a no-op");
        assert_eq!(it.len(), 1);
        assert_eq!(it.capacity(), 2);
        assert_eq!(it.get("cn=a,o=x"), None);
        // The released slot is reused before the id space grows.
        let c = it.intern("cn=c,o=x");
        assert_eq!(c, a);
        assert_eq!(it.generation(c), 1);
        assert_eq!(it.generation(b), 0);
        assert_eq!(it.capacity(), 2);
        // A brand-new key after the free list drains grows the space.
        let d = it.intern("cn=d,o=x");
        assert_eq!(d, 2);
        // Churning one key in place keeps capacity flat forever.
        for i in 0..1000 {
            let id = it.intern(&format!("cn=churn{i},o=x"));
            it.release(id);
        }
        assert_eq!(it.capacity(), 4);
    }

    #[test]
    fn interner_bytes_shrink_on_release() {
        let mut it = DnInterner::new();
        let ids: Vec<u32> = (0..50).map(|i| it.intern(&format!("cn=e{i},o=x"))).collect();
        let full = it.approx_bytes();
        for id in ids {
            it.release(id);
        }
        assert!(it.approx_bytes() < full);
    }

    #[test]
    fn table_round_trips_and_rehydrates() {
        let mut t = DnTable::new();
        let a = t.intern(&"cn=A,o=X".parse().unwrap());
        let b = t.intern(&"cn=B,o=X".parse().unwrap());
        assert_ne!(a, b);
        assert_eq!(t.get(&"CN=a,O=X".parse().unwrap()), Some(a));

        let json = serde_json::to_string(&t).unwrap();
        let mut back: DnTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.dn_of(b).unwrap().to_string(), "cn=B,o=X");
        // Interner arrives empty; the first intern rehydrates it.
        assert_eq!(back.intern(&"cn=a,o=x".parse().unwrap()), a);
        assert_eq!(back.intern(&"cn=C,o=X".parse().unwrap()), 2);
        assert_eq!(back.get(&"cn=B,o=X".parse().unwrap()), Some(b));
    }

    #[test]
    fn table_recycles_and_round_trips_free_list() {
        let mut t = DnTable::new();
        let a = t.intern(&"cn=A,o=X".parse().unwrap());
        let b = t.intern(&"cn=B,o=X".parse().unwrap());
        assert!(t.release(a));
        assert_eq!(t.len(), 1);
        assert_eq!(t.capacity(), 2);
        assert_eq!(t.dn_of(a), None);
        assert_eq!(t.get(&"cn=a,o=x".parse().unwrap()), None);

        // The free list and generations survive serialization.
        let json = serde_json::to_string(&t).unwrap();
        let mut back: DnTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.generation(a), 1);
        let c = back.intern(&"cn=C,o=X".parse().unwrap());
        assert_eq!(c, a, "released slot reused after a round trip");
        assert_eq!(back.get(&"cn=B,o=X".parse().unwrap()), Some(b));
        assert_eq!(back.capacity(), 2);
    }

    #[test]
    fn table_bytes_shrink_on_release() {
        let mut t = DnTable::new();
        let ids: Vec<u32> =
            (0..50).map(|i| t.intern(&format!("cn=e{i},o=x").parse().unwrap())).collect();
        let full = t.approx_bytes();
        for id in ids {
            t.release(id);
        }
        assert!(t.approx_bytes() < full);
    }
}
