//! Dense `u32` interning of normalized DN keys.
//!
//! Replica-side content stores are keyed by DN. Hashing the full string
//! form of a DN on every lookup is measurable on the query path, so the
//! sync layer interns each distinct DN key once and hands *ids* to the
//! stores: an id is a dense `u32` usable as a direct vector index, and a
//! set of ids is a sorted posting list that intersects without hashing.
//!
//! Ids are append-only and stable for the lifetime of the interner: a DN
//! that leaves the content and later returns receives the same id, which
//! is what lets immutable per-epoch structures (posting lists, attribute
//! indexes) be shared across epochs without re-translation.

use fbdr_ldap::{Dn, Entry};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The canonical string key of a DN: lowercased attribute types and
/// normalized values, comma-joined leaf-first. Two DNs that compare equal
/// under LDAP matching rules produce the same key.
pub fn dn_key(dn: &Dn) -> String {
    let mut out = String::new();
    for (i, r) in dn.rdns().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(r.attr().lower());
        out.push('=');
        out.push_str(r.value().normalized());
    }
    out
}

/// The canonical key of an entry's DN (see [`dn_key`]).
pub fn entry_key(e: &Entry) -> String {
    dn_key(e.dn())
}

/// An append-only map from normalized DN keys to dense `u32` ids.
///
/// `intern` assigns ids in first-seen order; ids are never recycled, so
/// any id handed out remains a valid index into id-addressed storage for
/// the interner's lifetime (`len()` bounds the id space).
///
/// ```
/// use fbdr_resync::DnInterner;
///
/// let mut it = DnInterner::new();
/// let a = it.intern("cn=a,o=x");
/// let b = it.intern("cn=b,o=x");
/// assert_ne!(a, b);
/// assert_eq!(it.intern("cn=a,o=x"), a); // stable
/// assert_eq!(it.get("cn=b,o=x"), Some(b));
/// assert_eq!(it.key_of(a), Some("cn=a,o=x"));
/// assert_eq!(it.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DnInterner {
    ids: HashMap<String, u32>,
    keys: Vec<String>,
}

impl DnInterner {
    /// An empty interner.
    pub fn new() -> Self {
        DnInterner::default()
    }

    /// Number of distinct keys interned (the id space is `0..len()`).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Returns the id of `key`, assigning the next dense id on first
    /// sight.
    ///
    /// # Panics
    ///
    /// Panics if more than `u32::MAX` distinct keys are interned.
    pub fn intern(&mut self, key: &str) -> u32 {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = u32::try_from(self.keys.len()).expect("id space exhausted");
        self.ids.insert(key.to_owned(), id);
        self.keys.push(key.to_owned());
        id
    }

    /// The id of `key`, if it has been interned.
    pub fn get(&self, key: &str) -> Option<u32> {
        self.ids.get(key).copied()
    }

    /// The key an id was assigned for (sync-time reverse resolution).
    pub fn key_of(&self, id: u32) -> Option<&str> {
        self.keys.get(id as usize).map(String::as_str)
    }
}

/// A bidirectional DN ↔ dense `u32` id table for master-side session
/// bookkeeping.
///
/// Pairs a DN → id map with an id-indexed `Vec<Dn>` so the sync layer can
/// both intern a DN touched by an update *and* resolve ids back to DNs
/// when draining actions. Only the DN vector is serialized; the map is
/// rebuilt lazily after deserialization (ids are dense and assigned in
/// vector order, so the rebuild is exact).
///
/// ```
/// use fbdr_resync::DnTable;
///
/// let mut t = DnTable::new();
/// let a = t.intern(&"cn=A,o=X".parse().unwrap());
/// assert_eq!(t.intern(&"CN=a, O=X".parse().unwrap()), a); // normalized
/// assert_eq!(t.dn_of(a).unwrap().to_string(), "cn=A,o=X");
/// assert_eq!(t.len(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DnTable {
    dns: Vec<Dn>,
    /// `Dn`'s `Eq`/`Hash` are case-insensitive over precomputed forms, so
    /// keying by the DN itself matches LDAP matching-rule equality without
    /// building a string key per probe.
    #[serde(skip)]
    ids: HashMap<Dn, u32>,
}

impl DnTable {
    /// An empty table.
    pub fn new() -> Self {
        DnTable::default()
    }

    /// Number of distinct DNs interned (the id space is `0..len()`).
    pub fn len(&self) -> usize {
        self.dns.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.dns.is_empty()
    }

    /// Rebuilds the DN → id map from the DN vector if it is out of date
    /// (after deserialization the map arrives empty).
    pub fn rehydrate(&mut self) {
        if self.ids.len() == self.dns.len() {
            return;
        }
        self.ids = self
            .dns
            .iter()
            .enumerate()
            .map(|(i, dn)| (dn.clone(), i as u32))
            .collect();
    }

    /// Returns the id of `dn`, assigning the next dense id on first
    /// sight. DNs equal under LDAP matching rules share an id; the first
    /// spelling seen is the one [`DnTable::dn_of`] returns.
    pub fn intern(&mut self, dn: &Dn) -> u32 {
        self.rehydrate();
        if let Some(&id) = self.ids.get(dn) {
            return id;
        }
        let id = u32::try_from(self.dns.len()).expect("id space exhausted");
        self.ids.insert(dn.clone(), id);
        self.dns.push(dn.clone());
        id
    }

    /// The id of `dn`, if already interned. Requires a hydrated table
    /// (any `&mut self` call rehydrates; fresh tables are hydrated).
    pub fn get(&self, dn: &Dn) -> Option<u32> {
        debug_assert_eq!(self.ids.len(), self.dns.len(), "table not rehydrated");
        self.ids.get(dn).copied()
    }

    /// The DN an id was assigned for (drain-time reverse resolution).
    pub fn dn_of(&self, id: u32) -> Option<&Dn> {
        self.dns.get(id as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_normalized() {
        let d: Dn = "CN=John  Doe, O=XYZ".parse().unwrap();
        assert_eq!(dn_key(&d), "cn=john doe,o=xyz");
        let e = Entry::new("cn=A,o=X".parse().unwrap());
        assert_eq!(entry_key(&e), "cn=a,o=x");
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let mut it = DnInterner::new();
        for i in 0..100u32 {
            assert_eq!(it.intern(&format!("cn=e{i},o=x")), i);
        }
        for i in 0..100u32 {
            assert_eq!(it.intern(&format!("cn=e{i},o=x")), i, "re-intern is stable");
            assert_eq!(it.key_of(i), Some(format!("cn=e{i},o=x").as_str()));
        }
        assert_eq!(it.len(), 100);
        assert_eq!(it.get("cn=missing,o=x"), None);
        assert_eq!(it.key_of(100), None);
    }

    #[test]
    fn table_round_trips_and_rehydrates() {
        let mut t = DnTable::new();
        let a = t.intern(&"cn=A,o=X".parse().unwrap());
        let b = t.intern(&"cn=B,o=X".parse().unwrap());
        assert_ne!(a, b);
        assert_eq!(t.get(&"CN=a,O=X".parse().unwrap()), Some(a));

        let json = serde_json::to_string(&t).unwrap();
        let mut back: DnTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.dn_of(b).unwrap().to_string(), "cn=B,o=X");
        // Interner arrives empty; the first intern rehydrates it.
        assert_eq!(back.intern(&"cn=a,o=x".parse().unwrap()), a);
        assert_eq!(back.intern(&"cn=C,o=X".parse().unwrap()), 2);
        assert_eq!(back.get(&"cn=B,o=X".parse().unwrap()), Some(b));
    }
}
