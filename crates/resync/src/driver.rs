//! The replica-side sync driver: bounded retries with exponential backoff
//! and deterministic jitter over any [`SyncTransport`].
//!
//! The master-side replay buffer (see `SyncMaster`) makes retrying safe;
//! this module makes it *automatic*. A [`SyncDriver`] wraps one logical
//! resync exchange in a retry loop governed by a [`RetryConfig`]: a
//! transient [`SyncError::Unavailable`] is retried after a backoff sleep,
//! anything else is surfaced immediately. Time comes from a [`Clock`], so
//! tests (and the fault-injection harness) can run on simulated time.

use crate::protocol::{NotifyBatch, ReSyncControl, SyncError, SyncResponse};
use crate::reconcile::{
    self, RangeRequest, RangeResponse, ReconcileConfig, ReconcileItem, ReconcileOutcome,
    ReconcileRequest, ReconcileResponse,
};
use crate::Cookie;
use crate::SyncMaster;
use crossbeam::channel::Receiver;
use fbdr_ldap::SearchRequest;
use fbdr_net::ShardId;
use fbdr_obs::{event, Histogram, Obs};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// A source of (possibly simulated) milliseconds and sleeps.
pub trait Clock {
    /// Current time in milliseconds since an arbitrary epoch.
    fn now_ms(&self) -> u64;
    /// Blocks (or advances simulated time) for `ms` milliseconds.
    fn sleep_ms(&self, ms: u64);
}

/// Wall-clock time via `std::time` — the deployment clock.
#[derive(Debug, Clone, Default)]
pub struct SystemClock {
    epoch: std::sync::Arc<std::sync::OnceLock<std::time::Instant>>,
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        let epoch = *self.epoch.get_or_init(std::time::Instant::now);
        epoch.elapsed().as_millis() as u64
    }

    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

/// Anything that can carry the ReSync protocol between a replica and its
/// master: the master itself (in-process), or a wrapper injecting
/// failures/latency in between.
pub trait SyncTransport {
    /// Performs one ReSync exchange.
    ///
    /// # Errors
    ///
    /// [`SyncError`] as for `SyncMaster::resync`, plus
    /// [`SyncError::Unavailable`] for transport-level failures.
    fn resync(
        &mut self,
        request: &SearchRequest,
        ctl: ReSyncControl,
    ) -> Result<SyncResponse, SyncError>;

    /// Takes the parked persist-mode notification receiver for a session.
    fn take_receiver(&mut self, cookie: Cookie) -> Option<Receiver<NotifyBatch>>;

    /// Abandons a session.
    fn abandon(&mut self, cookie: Cookie);

    /// Digest round of a reconciliation exchange (see
    /// [`crate::reconcile`]). The default implementation reports the
    /// transport as incapable, which routes the recovery ladder straight
    /// to reinstall — correct for transports predating reconciliation.
    ///
    /// # Errors
    ///
    /// [`SyncError::ReconcileFailed`] by default.
    fn reconcile(
        &mut self,
        _request: &SearchRequest,
        _req: ReconcileRequest,
    ) -> Result<ReconcileResponse, SyncError> {
        Err(SyncError::ReconcileFailed("transport does not support reconciliation".into()))
    }

    /// Range round of a reconciliation exchange.
    ///
    /// # Errors
    ///
    /// [`SyncError::ReconcileFailed`] by default.
    fn reconcile_ranges(
        &mut self,
        _cookie: Cookie,
        _req: &RangeRequest,
    ) -> Result<RangeResponse, SyncError> {
        Err(SyncError::ReconcileFailed("transport does not support reconciliation".into()))
    }

    // ---- shard-addressed legs ----------------------------------------
    //
    // A sharded transport (see `crate::shard`) fronts several masters;
    // the replica-side coordinator addresses each exchange to an explicit
    // shard. Single-shard transports get identity defaults that delegate
    // to the unsharded methods above, so existing transports — including
    // fault-injecting wrappers that override those methods — keep their
    // behavior without implementing anything new.

    /// Number of shards behind this transport (1 unless sharded).
    fn shard_count(&self) -> usize {
        1
    }

    /// [`SyncTransport::resync`] addressed to one shard.
    ///
    /// # Errors
    ///
    /// As [`SyncTransport::resync`].
    fn resync_at(
        &mut self,
        _shard: ShardId,
        request: &SearchRequest,
        ctl: ReSyncControl,
    ) -> Result<SyncResponse, SyncError> {
        self.resync(request, ctl)
    }

    /// [`SyncTransport::take_receiver`] addressed to one shard.
    fn take_receiver_at(&mut self, _shard: ShardId, cookie: Cookie) -> Option<Receiver<NotifyBatch>> {
        self.take_receiver(cookie)
    }

    /// [`SyncTransport::abandon`] addressed to one shard.
    fn abandon_at(&mut self, _shard: ShardId, cookie: Cookie) {
        self.abandon(cookie);
    }

    /// [`SyncTransport::reconcile`] addressed to one shard.
    ///
    /// # Errors
    ///
    /// As [`SyncTransport::reconcile`].
    fn reconcile_at(
        &mut self,
        _shard: ShardId,
        request: &SearchRequest,
        req: ReconcileRequest,
    ) -> Result<ReconcileResponse, SyncError> {
        self.reconcile(request, req)
    }

    /// [`SyncTransport::reconcile_ranges`] addressed to one shard.
    ///
    /// # Errors
    ///
    /// As [`SyncTransport::reconcile_ranges`].
    fn reconcile_ranges_at(
        &mut self,
        _shard: ShardId,
        cookie: Cookie,
        req: &RangeRequest,
    ) -> Result<RangeResponse, SyncError> {
        self.reconcile_ranges(cookie, req)
    }
}

impl SyncTransport for SyncMaster {
    fn resync(
        &mut self,
        request: &SearchRequest,
        ctl: ReSyncControl,
    ) -> Result<SyncResponse, SyncError> {
        SyncMaster::resync(self, request, ctl)
    }

    fn take_receiver(&mut self, cookie: Cookie) -> Option<Receiver<NotifyBatch>> {
        SyncMaster::take_receiver(self, cookie)
    }

    fn abandon(&mut self, cookie: Cookie) {
        SyncMaster::abandon(self, cookie)
    }

    fn reconcile(
        &mut self,
        request: &SearchRequest,
        req: ReconcileRequest,
    ) -> Result<ReconcileResponse, SyncError> {
        SyncMaster::reconcile(self, request, req)
    }

    fn reconcile_ranges(
        &mut self,
        cookie: Cookie,
        req: &RangeRequest,
    ) -> Result<RangeResponse, SyncError> {
        SyncMaster::reconcile_ranges(self, cookie, req)
    }
}

/// Retry policy for one resync exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryConfig {
    /// Retries after the first attempt (so `max_retries + 1` attempts
    /// total per exchange).
    pub max_retries: u32,
    /// First backoff sleep; doubles per retry.
    pub base_backoff_ms: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
    /// Total time budget per exchange, sleeps included. When the next
    /// backoff would exceed it the driver gives up (the caller then
    /// serves stale content until the next cycle).
    pub timeout_budget_ms: u64,
    /// Seed for the deterministic jitter added to each backoff.
    pub jitter_seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_retries: 4,
            base_backoff_ms: 50,
            max_backoff_ms: 2_000,
            timeout_budget_ms: 10_000,
            jitter_seed: 0,
        }
    }
}

/// Counters describing what the driver had to do to keep a replica in
/// sync — the robustness cost, analogous to [`crate::SyncTraffic`] for
/// the bandwidth cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DriverStats {
    /// Resync attempts made (first tries and retries).
    pub attempts: u64,
    /// Retries after a transient failure.
    pub retries: u64,
    /// Exchanges that succeeded only after at least one retry — each one
    /// is a response the master served from its replay buffer or a
    /// request that finally got through.
    pub recovered: u64,
    /// Exchanges abandoned after exhausting the retry/timeout budget.
    pub exhausted: u64,
    /// Sessions recovered through a reconciliation exchange (cost
    /// proportional to divergence, not content size).
    pub reconciliations: u64,
    /// Full content reinstalls after an unrecoverable session error that
    /// reconciliation could not (or was not allowed to) repair.
    pub reinstalls: u64,
    /// Persist subscriptions that degraded to polling after their
    /// notification channel disconnected.
    pub poll_fallbacks: u64,
}

impl DriverStats {
    /// Merges another driver's counters into this one.
    pub fn absorb(&mut self, other: &DriverStats) {
        self.attempts += other.attempts;
        self.retries += other.retries;
        self.recovered += other.recovered;
        self.exhausted += other.exhausted;
        self.reconciliations += other.reconciliations;
        self.reinstalls += other.reinstalls;
        self.poll_fallbacks += other.poll_fallbacks;
    }
}

/// Retrying wrapper around a [`SyncTransport`].
///
/// ```
/// use fbdr_ldap::{Entry, Filter, SearchRequest};
/// use fbdr_resync::{ReSyncControl, SyncDriver, SyncMaster, SyncTransport};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut master = SyncMaster::new();
/// master.dit_mut().add_suffix("o=xyz".parse()?);
/// master.dit_mut().add(Entry::new("o=xyz".parse()?))?;
/// master.dit_mut().add(Entry::new("cn=a,o=xyz".parse()?).with("dept", "7"))?;
///
/// // The master itself is a (perfectly reliable) transport; a driver
/// // retries whatever transport it is given.
/// let mut driver = SyncDriver::default();
/// let request = SearchRequest::from_root(Filter::parse("(dept=7)")?);
/// let resp = driver.resync(&mut master, &request, ReSyncControl::poll(None))?;
/// assert_eq!(resp.actions.len(), 1);
/// assert_eq!(driver.stats().attempts, 1);
/// assert_eq!(driver.stats().retries, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SyncDriver<C: Clock = SystemClock> {
    clock: C,
    config: RetryConfig,
    reconcile: ReconcileConfig,
    jitter_state: u64,
    stats: DriverStats,
    obs: Obs,
    /// Pre-resolved `fbdr_resync_exchange_ns` histogram; `None` on an
    /// unobserved driver.
    exchange_hist: Option<Arc<Histogram>>,
    /// Pre-resolved `fbdr_resync_reconcile_exchange_ns` histogram.
    reconcile_hist: Option<Arc<Histogram>>,
}

impl SyncDriver<SystemClock> {
    /// A driver on wall-clock time.
    pub fn new(config: RetryConfig) -> Self {
        SyncDriver::with_clock(config, SystemClock::default())
    }
}

impl Default for SyncDriver<SystemClock> {
    fn default() -> Self {
        SyncDriver::new(RetryConfig::default())
    }
}

impl<C: Clock> SyncDriver<C> {
    /// A driver on an explicit clock (e.g. simulated time in tests).
    pub fn with_clock(config: RetryConfig, clock: C) -> Self {
        let jitter_state = config.jitter_seed ^ 0x9E37_79B9_7F4A_7C15;
        SyncDriver {
            clock,
            config,
            reconcile: ReconcileConfig::default(),
            jitter_state,
            stats: DriverStats::default(),
            obs: Obs::off(),
            exchange_hist: None,
            reconcile_hist: None,
        }
    }

    /// Sets the reconciliation tuning (digest false-positive rate, range
    /// bucket count, divergence budget).
    pub fn with_reconcile(mut self, config: ReconcileConfig) -> Self {
        self.reconcile = config;
        self
    }

    /// Attaches observability: every exchange is timed into the
    /// `fbdr_resync_exchange_ns` histogram, degradation-ladder
    /// transitions (retry → reinstall → serve-stale) are mirrored into
    /// `fbdr_resync_*_total` registry counters, and `driver.*` trace
    /// events are emitted when a subscriber is installed.
    ///
    /// [`SyncDriver::stats`] stays per-driver; the registry counters
    /// aggregate across every driver sharing the same [`Obs`].
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.exchange_hist = obs
            .is_active()
            .then(|| obs.registry().histogram("fbdr_resync_exchange_ns"));
        self.reconcile_hist = obs
            .is_active()
            .then(|| obs.registry().histogram("fbdr_resync_reconcile_exchange_ns"));
        self.obs = obs;
        self
    }

    /// The retry policy in force.
    pub fn config(&self) -> &RetryConfig {
        &self.config
    }

    /// The reconciliation tuning in force.
    pub fn reconcile_config(&self) -> &ReconcileConfig {
        &self.reconcile
    }

    /// Accumulated robustness counters.
    pub fn stats(&self) -> DriverStats {
        self.stats
    }

    /// Counts a persist→poll degradation (recorded by the replica when it
    /// observes a disconnected notification channel).
    pub fn note_poll_fallback(&mut self) {
        self.stats.poll_fallbacks += 1;
        if self.obs.is_active() {
            self.obs.registry().counter("fbdr_resync_poll_fallbacks_total").inc();
        }
        event!(self.obs, "driver", "poll_fallback");
    }

    /// Counts a full reinstall (recorded by the replica when a session
    /// proves unrecoverable and the content is reloaded from scratch).
    pub fn note_reinstall(&mut self) {
        self.stats.reinstalls += 1;
        if self.obs.is_active() {
            self.obs.registry().counter("fbdr_resync_reinstalls_total").inc();
        }
        event!(self.obs, "driver", "reinstall");
    }

    /// Counts a reconcile→reinstall fallback (budget exceeded, transport
    /// incapable, or the exchange itself failed). The subsequent
    /// reinstall is counted separately via [`SyncDriver::note_reinstall`].
    pub fn note_reconcile_fallback(&mut self, reason: &str) {
        if self.obs.is_active() {
            self.obs.registry().counter("fbdr_resync_reconcile_fallbacks_total").inc();
        }
        event!(self.obs, "driver", "reconcile_fallback", reason = reason);
    }

    /// Performs one resync exchange, retrying transient failures with
    /// exponential backoff and deterministic jitter until the retry count
    /// or time budget runs out.
    ///
    /// # Errors
    ///
    /// [`SyncError::RetriesExhausted`] wrapping the final transient error
    /// when the budget runs out (classification delegates to the wrapped
    /// error, so `is_transient()` still holds); any non-transient
    /// [`SyncError`] immediately and unwrapped.
    pub fn resync(
        &mut self,
        transport: &mut dyn SyncTransport,
        request: &SearchRequest,
        ctl: ReSyncControl,
    ) -> Result<SyncResponse, SyncError> {
        let timer = self.exchange_hist.as_ref().map(|_| Instant::now());
        let out = self.retry_loop(&mut |_attempt| transport.resync(request, ctl));
        if let (Some(h), Some(t)) = (&self.exchange_hist, timer) {
            h.record_since(t);
        }
        out
    }

    /// [`SyncDriver::resync`] addressed to one shard of a sharded
    /// transport: the same retry ladder, but the exchange goes through
    /// [`SyncTransport::resync_at`] so a sharded transport cannot
    /// re-route it by base (the coordinator has already decided the
    /// shard).
    ///
    /// # Errors
    ///
    /// As [`SyncDriver::resync`].
    pub fn resync_at(
        &mut self,
        transport: &mut dyn SyncTransport,
        shard: ShardId,
        request: &SearchRequest,
        ctl: ReSyncControl,
    ) -> Result<SyncResponse, SyncError> {
        let timer = self.exchange_hist.as_ref().map(|_| Instant::now());
        let out = self.retry_loop(&mut |_attempt| transport.resync_at(shard, request, ctl));
        if let (Some(h), Some(t)) = (&self.exchange_hist, timer) {
            h.record_since(t);
        }
        out
    }

    /// Runs a full reconciliation exchange (see [`crate::reconcile`])
    /// under the driver's retry policy, with per-attempt digest re-salting
    /// so a retried exchange draws fresh Bloom false positives. On
    /// success the reconciliation counters and the
    /// `fbdr_resync_reconcile_exchange_ns` histogram are recorded.
    ///
    /// # Errors
    ///
    /// As [`SyncDriver::resync`]: [`SyncError::RetriesExhausted`] when the
    /// retry/time budget runs out on transient failures, any other
    /// [`SyncError`] immediately — including
    /// [`SyncError::ReconcileFailed`] when the transport or master cannot
    /// reconcile (the caller falls back to reinstall).
    pub fn reconcile(
        &mut self,
        transport: &mut dyn SyncTransport,
        request: &SearchRequest,
        items: &[ReconcileItem],
        resolve: &dyn Fn(&str) -> Option<u32>,
    ) -> Result<ReconcileOutcome, SyncError> {
        self.reconcile_run(&mut |cfg| reconcile::reconcile(transport, request, items, resolve, cfg))
    }

    /// [`SyncDriver::reconcile`] addressed to one shard of a sharded
    /// transport: same retry policy, re-salting and bookkeeping, with the
    /// exchange legs going through [`SyncTransport::reconcile_at`] /
    /// [`SyncTransport::reconcile_ranges_at`].
    ///
    /// # Errors
    ///
    /// As [`SyncDriver::reconcile`].
    pub fn reconcile_at(
        &mut self,
        transport: &mut dyn SyncTransport,
        shard: ShardId,
        request: &SearchRequest,
        items: &[ReconcileItem],
        resolve: &dyn Fn(&str) -> Option<u32>,
    ) -> Result<ReconcileOutcome, SyncError> {
        self.reconcile_run(&mut |cfg| {
            reconcile::reconcile_at(transport, shard, request, items, resolve, cfg)
        })
    }

    /// Shared body of [`SyncDriver::reconcile`]/[`SyncDriver::reconcile_at`]:
    /// retry loop with per-attempt digest re-salting around `exchange`,
    /// plus the success-side counters, events and histogram.
    fn reconcile_run(
        &mut self,
        exchange: &mut dyn FnMut(&ReconcileConfig) -> Result<ReconcileOutcome, SyncError>,
    ) -> Result<ReconcileOutcome, SyncError> {
        let timer = self.reconcile_hist.as_ref().map(|_| Instant::now());
        let base = self.reconcile;
        let out = self.retry_loop(&mut |attempt| {
            let cfg = ReconcileConfig {
                seed: base.seed ^ (u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ..base
            };
            exchange(&cfg)
        });
        if let Ok(outcome) = &out {
            self.stats.reconciliations += 1;
            let bytes = outcome.cost.stats.bytes_total();
            if self.obs.is_active() {
                let reg = self.obs.registry();
                reg.counter("fbdr_resync_reconciliations_total").inc();
                reg.counter("fbdr_resync_reconcile_rounds_total")
                    .add(outcome.cost.stats.round_trips);
                reg.counter("fbdr_resync_reconcile_bytes_total").add(bytes);
            }
            event!(
                self.obs,
                "driver",
                "reconcile",
                rounds = outcome.cost.stats.round_trips,
                bytes = bytes,
                upserts = outcome.upserts.len(),
                deletes = outcome.delete_ids.len(),
                fallback_probes = outcome.cost.fallback_probes,
            );
        }
        if let (Some(h), Some(t)) = (&self.reconcile_hist, timer) {
            h.record_since(t);
        }
        out
    }

    /// The shared retry ladder: runs `op` (receiving the 0-based attempt
    /// number), retrying transient failures with exponential backoff and
    /// deterministic jitter until the retry count or time budget runs
    /// out. Non-transient errors surface immediately.
    fn retry_loop<T>(
        &mut self,
        op: &mut dyn FnMut(u32) -> Result<T, SyncError>,
    ) -> Result<T, SyncError> {
        let start = self.clock.now_ms();
        let mut attempt: u32 = 0;
        loop {
            self.stats.attempts += 1;
            match op(attempt) {
                Ok(resp) => {
                    if attempt > 0 {
                        self.stats.recovered += 1;
                        if self.obs.is_active() {
                            self.obs.registry().counter("fbdr_resync_recovered_total").inc();
                        }
                        event!(self.obs, "driver", "recovered", attempts = attempt + 1);
                    }
                    break Ok(resp);
                }
                Err(e) if e.is_transient() => {
                    let sleep = self.backoff_ms(attempt);
                    let elapsed = self.clock.now_ms().saturating_sub(start);
                    if attempt >= self.config.max_retries
                        || elapsed + sleep > self.config.timeout_budget_ms
                    {
                        self.stats.exhausted += 1;
                        if self.obs.is_active() {
                            self.obs.registry().counter("fbdr_resync_exhausted_total").inc();
                        }
                        event!(self.obs, "driver", "exhausted", attempts = attempt + 1);
                        break Err(SyncError::RetriesExhausted {
                            attempts: u64::from(attempt) + 1,
                            last: Box::new(e),
                        });
                    }
                    attempt += 1;
                    self.stats.retries += 1;
                    if self.obs.is_active() {
                        self.obs.registry().counter("fbdr_resync_retries_total").inc();
                    }
                    event!(self.obs, "driver", "retry", attempt = attempt, backoff_ms = sleep);
                    self.clock.sleep_ms(sleep);
                }
                Err(e) => break Err(e),
            }
        }
    }

    /// The backoff before retry number `attempt + 1`: an exponentially
    /// growing base capped at the maximum, plus up to 50% jitter drawn
    /// from the seeded generator (so concurrent replicas desynchronize
    /// their retries, yet every run is reproducible).
    fn backoff_ms(&mut self, attempt: u32) -> u64 {
        let base = self
            .config
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.config.max_backoff_ms);
        let jitter_range = base / 2 + 1;
        base + self.next_jitter() % jitter_range
    }

    /// SplitMix64 step over the jitter state.
    fn next_jitter(&mut self) -> u64 {
        self.jitter_state = self.jitter_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.jitter_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;
    use std::rc::Rc;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Simulated clock: sleeping advances time instantly.
    #[derive(Debug, Clone, Default)]
    struct TestClock {
        now: Arc<AtomicU64>,
    }

    impl Clock for TestClock {
        fn now_ms(&self) -> u64 {
            self.now.load(Ordering::SeqCst)
        }

        fn sleep_ms(&self, ms: u64) {
            self.now.fetch_add(ms, Ordering::SeqCst);
        }
    }

    /// A transport that fails a scripted number of times, then succeeds.
    struct Flaky {
        failures_left: u32,
        calls: Rc<Cell<u32>>,
    }

    impl SyncTransport for Flaky {
        fn resync(
            &mut self,
            _request: &SearchRequest,
            _ctl: ReSyncControl,
        ) -> Result<SyncResponse, SyncError> {
            self.calls.set(self.calls.get() + 1);
            if self.failures_left > 0 {
                self.failures_left -= 1;
                return Err(SyncError::Unavailable("scripted".into()));
            }
            Ok(SyncResponse { actions: Vec::new(), cookie: Some(Cookie::new(1, 1)), redelivered: false })
        }

        fn take_receiver(&mut self, _cookie: Cookie) -> Option<Receiver<NotifyBatch>> {
            None
        }

        fn abandon(&mut self, _cookie: Cookie) {}
    }

    fn req() -> SearchRequest {
        SearchRequest::from_root(fbdr_ldap::Filter::parse("(dept=7)").expect("valid"))
    }

    #[test]
    fn retries_until_success() {
        let calls = Rc::new(Cell::new(0));
        let mut t = Flaky { failures_left: 2, calls: calls.clone() };
        let mut d = SyncDriver::with_clock(RetryConfig::default(), TestClock::default());
        let resp = d.resync(&mut t, &req(), ReSyncControl::poll(None)).expect("recovers");
        assert!(resp.cookie.is_some());
        assert_eq!(calls.get(), 3);
        let s = d.stats();
        assert_eq!(s.attempts, 3);
        assert_eq!(s.retries, 2);
        assert_eq!(s.recovered, 1);
        assert_eq!(s.exhausted, 0);
    }

    #[test]
    fn gives_up_after_max_retries() {
        let calls = Rc::new(Cell::new(0));
        let mut t = Flaky { failures_left: 100, calls: calls.clone() };
        let cfg = RetryConfig { max_retries: 3, ..RetryConfig::default() };
        let mut d = SyncDriver::with_clock(cfg, TestClock::default());
        let err = d.resync(&mut t, &req(), ReSyncControl::poll(None)).unwrap_err();
        assert!(err.is_transient());
        assert!(
            matches!(err, SyncError::RetriesExhausted { attempts: 4, .. }),
            "exhaustion is reported with the attempt count: {err}"
        );
        assert_eq!(calls.get(), 4); // 1 try + 3 retries
        assert_eq!(d.stats().exhausted, 1);
    }

    #[test]
    fn time_budget_caps_retries() {
        let calls = Rc::new(Cell::new(0));
        let mut t = Flaky { failures_left: 100, calls: calls.clone() };
        let cfg = RetryConfig {
            max_retries: 50,
            base_backoff_ms: 100,
            max_backoff_ms: 100,
            timeout_budget_ms: 250,
            jitter_seed: 7,
        };
        let clock = TestClock::default();
        let mut d = SyncDriver::with_clock(cfg, clock.clone());
        let err = d.resync(&mut t, &req(), ReSyncControl::poll(None)).unwrap_err();
        assert!(err.is_transient());
        // Backoffs are 100..=150ms; at most two fit into the 250ms budget.
        assert!(calls.get() <= 3, "budget must cap attempts, saw {}", calls.get());
        assert!(clock.now_ms() <= 250);
    }

    #[test]
    fn non_transient_errors_surface_immediately() {
        struct Dead;
        impl SyncTransport for Dead {
            fn resync(
                &mut self,
                _request: &SearchRequest,
                _ctl: ReSyncControl,
            ) -> Result<SyncResponse, SyncError> {
                Err(SyncError::UnknownCookie(Cookie::new(9, 1)))
            }
            fn take_receiver(&mut self, _cookie: Cookie) -> Option<Receiver<NotifyBatch>> {
                None
            }
            fn abandon(&mut self, _cookie: Cookie) {}
        }
        let mut d = SyncDriver::with_clock(RetryConfig::default(), TestClock::default());
        let err = d.resync(&mut Dead, &req(), ReSyncControl::poll(None)).unwrap_err();
        assert!(err.needs_reinstall());
        assert_eq!(d.stats().attempts, 1);
        assert_eq!(d.stats().retries, 0);
    }

    #[test]
    fn reconcile_on_incapable_transport_fails_non_transiently() {
        let calls = Rc::new(Cell::new(0));
        // Flaky relies on the trait's default reconcile legs.
        let mut t = Flaky { failures_left: 0, calls };
        let mut d = SyncDriver::with_clock(RetryConfig::default(), TestClock::default());
        let err = d.reconcile(&mut t, &req(), &[], &|_| None).unwrap_err();
        assert!(matches!(err, SyncError::ReconcileFailed(_)));
        assert!(!err.is_transient());
        assert!(!err.needs_reinstall(), "classified as its own failure, not a dead session");
        assert_eq!(d.stats().reconciliations, 0);
    }

    #[test]
    fn reconcile_exchange_converges_with_divergence_proportional_shipping() {
        use crate::intern::entry_key;
        use crate::reconcile::{entry_item_hash, ReconcileItem};
        use crate::ReSyncControl;
        use fbdr_ldap::{Entry, Filter, Scope};
        use std::collections::HashMap;

        let person = |cn: &str, mail: &str| {
            Entry::new(format!("cn={cn},o=xyz").parse().unwrap())
                .with("objectclass", "person")
                .with("dept", "7")
                .with("mail", mail)
        };
        let mut m = SyncMaster::new();
        m.dit_mut().add_suffix("o=xyz".parse().unwrap());
        m.dit_mut().add(Entry::new("o=xyz".parse().unwrap())).unwrap();
        for i in 0..50 {
            m.dit_mut().add(person(&format!("e{i}"), &format!("e{i}@x"))).unwrap();
        }
        let request = SearchRequest::new(
            "o=xyz".parse().unwrap(),
            Scope::Subtree,
            Filter::parse("(dept=7)").unwrap(),
        );

        // The replica holds e0..=e44 at the master's versions, a *stale*
        // e45, and a ghost entry the master never had; e46..=e49 are
        // missing entirely.
        let mut held: Vec<Entry> =
            (0..45).map(|i| person(&format!("e{i}"), &format!("e{i}@x"))).collect();
        held.push(person("e45", "stale@x"));
        held.push(person("ghost", "g@x"));
        let keys: Vec<String> = held.iter().map(entry_key).collect();
        let items: Vec<ReconcileItem> = held
            .iter()
            .enumerate()
            .map(|(i, e)| ReconcileItem { hash: entry_item_hash(e), id: i as u32 })
            .collect();

        let mut d = SyncDriver::with_clock(RetryConfig::default(), TestClock::default());
        let resolve = |key: &str| keys.iter().position(|k| k == key).map(|i| i as u32);
        let outcome = d.reconcile(&mut m, &request, &items, &resolve).expect("reconciles");

        // Divergence-proportional: ~6 differing items out of 50, so far
        // fewer than the full content crosses the wire.
        assert!(
            outcome.upserts.len() <= 10,
            "shipped {} entries for ~6 diverged items",
            outcome.upserts.len()
        );
        assert!(!outcome.delete_ids.is_empty(), "stale e45 and the ghost must be deleted");
        assert!(outcome.cost.stats.round_trips <= 2);
        assert_eq!(d.stats().reconciliations, 1);

        // Deletes before upserts converges the replica byte-for-byte.
        let mut content: HashMap<String, Entry> =
            keys.iter().cloned().zip(held.iter().cloned()).collect();
        for &id in &outcome.delete_ids {
            content.remove(&keys[id as usize]);
        }
        for e in &outcome.upserts {
            content.insert(entry_key(e), e.clone());
        }
        let mut got: Vec<String> = content.keys().cloned().collect();
        got.sort();
        let mut want: Vec<String> =
            m.dit().search_dns(&request).iter().map(crate::dn_key).collect();
        want.sort();
        assert_eq!(got, want);
        for (key, e) in &content {
            assert_eq!(
                entry_item_hash(e),
                entry_item_hash(m.dit().get(e.dn()).unwrap()),
                "content mismatch at {key}"
            );
        }

        // The cookie resumes incrementally at the current content.
        m.apply(fbdr_dit::UpdateOp::Add(person("late", "l@x"))).unwrap();
        let poll = d
            .resync(&mut m, &request, ReSyncControl::poll(Some(outcome.cookie)))
            .expect("cookie is live");
        assert_eq!(poll.actions.len(), 1);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mk = |seed| {
            let mut d = SyncDriver::with_clock(
                RetryConfig { jitter_seed: seed, ..RetryConfig::default() },
                TestClock::default(),
            );
            (0..6).map(|a| d.backoff_ms(a)).collect::<Vec<_>>()
        };
        assert_eq!(mk(3), mk(3));
        assert_ne!(mk(3), mk(4));
        // Backoff grows and respects the cap plus 50% jitter.
        let seq = mk(3);
        for (a, b) in seq.iter().enumerate() {
            let base = (50u64 << a).min(2_000);
            assert!(*b >= base && *b <= base + base / 2 + 1, "attempt {a}: {b}");
        }
    }
}
