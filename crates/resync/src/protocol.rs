//! Wire-level types of the ReSync protocol.

use fbdr_ldap::{Dn, Entry};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Opaque resumption token identifying an update session at the master.
///
/// Internally the token packs two values: the session identifier in the
/// high 32 bits and a per-session **sequence number** in the low 32 bits.
/// The sequence number makes the protocol at-least-once safe: every
/// response carries a fresh sequence, and the next request echoing it
/// acknowledges delivery. A request echoing the *previous* sequence tells
/// the master the last response was lost, and the master re-delivers it
/// verbatim (see `SyncMaster`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Cookie(pub u64);

impl Cookie {
    /// Packs a session id and sequence number into a cookie.
    pub fn new(session: u32, seq: u32) -> Cookie {
        Cookie((u64::from(session) << 32) | u64::from(seq))
    }

    /// The session identifier (high 32 bits).
    pub fn session(&self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The response sequence number within the session (low 32 bits).
    pub fn seq(&self) -> u32 {
        self.0 as u32
    }
}

impl fmt::Display for Cookie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cookie:{}.{}", self.session(), self.seq())
    }
}

/// Mode requested in a `reSyncControl = (mode, cookie)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncMode {
    /// One batch of updates now; a cookie to resume later.
    Poll,
    /// One batch now, then change notifications on an open channel.
    Persist,
    /// Terminate the session identified by the cookie.
    SyncEnd,
}

/// The control attached to a search request to make it a ReSync request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReSyncControl {
    /// Requested update mode.
    pub mode: SyncMode,
    /// `None` starts a new session (full content); `Some` resumes one.
    pub cookie: Option<Cookie>,
}

impl ReSyncControl {
    /// Poll-mode control.
    pub fn poll(cookie: Option<Cookie>) -> Self {
        ReSyncControl { mode: SyncMode::Poll, cookie }
    }

    /// Persist-mode control.
    pub fn persist(cookie: Option<Cookie>) -> Self {
        ReSyncControl { mode: SyncMode::Persist, cookie }
    }

    /// Session termination.
    pub fn sync_end(cookie: Cookie) -> Self {
        ReSyncControl { mode: SyncMode::SyncEnd, cookie: Some(cookie) }
    }
}

/// One update PDU: an entry (or DN) plus the action the replica must take.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SyncAction {
    /// Entry moved into the content — the complete entry is sent. (May
    /// result from an add, modify or modify DN at the master.)
    Add(Entry),
    /// Entry changed but stayed in the content — the complete entry.
    Modify(Entry),
    /// Entry moved out of the content — only the DN travels. (May result
    /// from a delete, modify or rename.)
    Delete(Dn),
    /// Entry is unchanged and still in the content (used by history-free
    /// synchronization per equation (3)) — only the DN travels.
    Retain(Dn),
}

impl SyncAction {
    /// The DN the action concerns.
    pub fn dn(&self) -> &Dn {
        match self {
            SyncAction::Add(e) | SyncAction::Modify(e) => e.dn(),
            SyncAction::Delete(dn) | SyncAction::Retain(dn) => dn,
        }
    }

    /// Estimated wire size in bytes.
    pub fn estimated_size(&self) -> usize {
        match self {
            SyncAction::Add(e) | SyncAction::Modify(e) => e.estimated_size() + 8,
            SyncAction::Delete(dn) | SyncAction::Retain(dn) => dn.to_string().len() + 8,
        }
    }

    /// True when the full entry travels (add/modify).
    pub fn carries_entry(&self) -> bool {
        matches!(self, SyncAction::Add(_) | SyncAction::Modify(_))
    }
}

impl fmt::Display for SyncAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncAction::Add(e) => write!(f, "{}, add", e.dn()),
            SyncAction::Modify(e) => write!(f, "{}, mod", e.dn()),
            SyncAction::Delete(dn) => write!(f, "{dn}, delete"),
            SyncAction::Retain(dn) => write!(f, "{dn}, retain"),
        }
    }
}

/// One persist-mode notification wakeup: every action the master had
/// queued for the session at flush time, coalesced per DN by the session
/// ledger.
///
/// A persist channel carries `NotifyBatch` messages, one per wakeup —
/// never bare actions — so receiving a message *is* the wakeup and the
/// amplification ratio `coalesced_from / 1` is directly observable at the
/// replica. Under the immediate flush policy each batch carries exactly
/// one update's actions (`coalesced_from == 1`), reproducing the original
/// one-notification-per-update behavior.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NotifyBatch {
    /// Actions to apply, coalesced per DN (deletes, then adds, then
    /// modifies, each group in DN order — the same shape as a poll batch).
    pub actions: Vec<SyncAction>,
    /// How many raw master updates this batch coalesces. At least 1; a
    /// value above `actions.len()` means several updates to the same DN
    /// collapsed into one action.
    pub coalesced_from: u64,
    /// Master time (ms) when the oldest update in this batch landed — the
    /// batch's staleness floor: `delivery_time - first_enqueued_ms` is the
    /// worst answer staleness any entry in the batch experienced.
    pub first_enqueued_ms: u64,
    /// Master time (ms) when the batch was flushed into the channel.
    pub flushed_ms: u64,
}

impl NotifyBatch {
    /// Aggregated traffic cost of this batch (same accounting as
    /// [`SyncResponse::traffic`]).
    pub fn traffic(&self) -> SyncTraffic {
        let mut t = SyncTraffic::default();
        for a in &self.actions {
            t.count(a);
        }
        t
    }
}

/// Response to a ReSync request: the update actions plus, in poll mode,
/// the cookie to resume the session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncResponse {
    /// Actions in master apply order (coalesced per DN).
    pub actions: Vec<SyncAction>,
    /// Resumption cookie (`None` after `sync_end`).
    pub cookie: Option<Cookie>,
    /// True when this response is a verbatim replay of an earlier one
    /// whose delivery was never acknowledged.
    pub redelivered: bool,
}

impl SyncResponse {
    /// Aggregated traffic cost of this response.
    pub fn traffic(&self) -> SyncTraffic {
        let mut t = SyncTraffic::default();
        for a in &self.actions {
            t.count(a);
        }
        if self.redelivered {
            t.redelivered_pdus = t.pdus();
        }
        t
    }

    /// Per-kind tally of this response's entry actions — what the
    /// `resync.response` trace events report alongside the cookie
    /// sequence number.
    pub fn action_counts(&self) -> ActionCounts {
        let mut c = ActionCounts::default();
        for a in &self.actions {
            match a {
                SyncAction::Add(_) => c.adds += 1,
                SyncAction::Modify(_) => c.modifies += 1,
                SyncAction::Delete(_) => c.deletes += 1,
                SyncAction::Retain(_) => c.retains += 1,
            }
        }
        c
    }
}

/// Entry-action tallies of one [`SyncResponse`], by [`SyncAction`] kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionCounts {
    /// `Add` actions (full entry entering the content).
    pub adds: u64,
    /// `Modify` actions (full entry, changed in place).
    pub modifies: u64,
    /// `Delete` actions (DN leaving the content).
    pub deletes: u64,
    /// `Retain` actions (DN confirmed unchanged).
    pub retains: u64,
}

/// Synchronization traffic accounting: how many full entries travelled,
/// how many DN-only PDUs, and estimated bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncTraffic {
    /// PDUs carrying a complete entry (add/modify).
    pub full_entries: u64,
    /// PDUs carrying only a DN (delete/retain).
    pub dn_only: u64,
    /// Estimated bytes across all PDUs.
    pub bytes: u64,
    /// PDUs that were retransmissions of a lost response (already counted
    /// in the totals above) — the at-least-once overhead.
    pub redelivered_pdus: u64,
}

impl SyncTraffic {
    /// Accounts one action.
    pub fn count(&mut self, action: &SyncAction) {
        if action.carries_entry() {
            self.full_entries += 1;
        } else {
            self.dn_only += 1;
        }
        self.bytes += action.estimated_size() as u64;
    }

    /// Merges another accounting into this one.
    pub fn absorb(&mut self, other: &SyncTraffic) {
        self.full_entries += other.full_entries;
        self.dn_only += other.dn_only;
        self.bytes += other.bytes;
        self.redelivered_pdus += other.redelivered_pdus;
    }

    /// Total PDU count.
    pub fn pdus(&self) -> u64 {
        self.full_entries + self.dn_only
    }
}

/// Errors from ReSync request handling.
///
/// The variants partition into three classes the recovery logic keys on:
/// *transient* ([`is_transient`](SyncError::is_transient)) — retry the
/// same request later; *session-fatal*
/// ([`needs_reinstall`](SyncError::needs_reinstall)) — abandon the session
/// and reload the content from scratch; everything else is a caller bug
/// (malformed request) and should propagate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncError {
    /// The cookie does not name a live session (expired or never issued).
    ///
    /// Invariant: the carried cookie is exactly the one the caller sent;
    /// the master holds no state for it, so `abandon` is unnecessary (and
    /// a no-op) before re-establishing.
    UnknownCookie(Cookie),
    /// A `sync_end` or resume was sent without a cookie.
    ///
    /// Invariant: only requests whose mode requires a session (persist
    /// resume, `sync_end`) produce this; a cookie-less poll is a legal
    /// session start and never fails this way.
    MissingCookie,
    /// The resumed session was established for a different search request.
    ///
    /// Invariant: the session named by the cookie is still live and
    /// untouched — the caller may continue using it with the original
    /// request, or `abandon` it.
    RequestMismatch(Cookie),
    /// The master can no longer replay the batch the cookie refers to
    /// (the replay buffer expired or the cookie is from an older exchange).
    /// The replica must re-establish the session — by reconciliation if
    /// divergence is modest, by full reload otherwise.
    ///
    /// Invariant: the session still exists at the master (unlike
    /// [`UnknownCookie`](SyncError::UnknownCookie)); the caller should
    /// `abandon` it before re-establishing to avoid leaking session
    /// state. `ops_applied - oldest_retained` bounds how many updates
    /// the replica has missed
    /// ([`estimated_divergence`](SyncError::estimated_divergence)),
    /// which is what the recovery ladder uses to choose reconcile vs
    /// reinstall.
    ReplayExpired {
        /// The cookie the caller sent (exactly as sent).
        cookie: Cookie,
        /// Master op-count at which the session's retained history begins
        /// (when the unacknowledged batch was built).
        oldest_retained: u64,
        /// Master op-count when the request was rejected.
        ops_applied: u64,
    },
    /// A reconciliation exchange could not be completed (unsupported
    /// transport, no reconciliation in progress for the cookie, or a
    /// malformed digest). The caller falls back one rung down the
    /// recovery ladder — a full reinstall.
    ///
    /// Invariant: neither transient nor session-fatal; the session named
    /// by any in-flight reconciliation cookie may be abandoned safely.
    ReconcileFailed(String),
    /// The master, or the link to it, is temporarily unavailable. Issued
    /// by transports (fault injection, real networks) rather than the
    /// master itself; retrying later may succeed.
    ///
    /// Invariant: no session state changed — the request either never
    /// reached the master or its response was lost, and the at-least-once
    /// cookie protocol makes the eventual retry safe.
    Unavailable(String),
    /// A retrying driver gave up: `attempts` tries all failed, `last`
    /// being the final error. Produced only by `SyncDriver`, never by the
    /// master or a transport.
    ///
    /// Invariant: `last` is never itself `RetriesExhausted` (the driver
    /// wraps exactly once), and classification delegates to `last`, so
    /// recovery logic can treat this wrapper transparently.
    RetriesExhausted {
        /// Total attempts made (initial try + retries).
        attempts: u64,
        /// The error the final attempt failed with.
        last: Box<SyncError>,
    },
}

impl SyncError {
    /// True when retrying the same request later may succeed without any
    /// session re-establishment.
    pub fn is_transient(&self) -> bool {
        match self {
            SyncError::Unavailable(_) => true,
            SyncError::RetriesExhausted { last, .. } => last.is_transient(),
            _ => false,
        }
    }

    /// True when the session is unrecoverable as-is and the replica must
    /// re-establish it — first trying reconciliation, then a full reload.
    pub fn needs_reinstall(&self) -> bool {
        match self {
            SyncError::UnknownCookie(_) | SyncError::ReplayExpired { .. } => true,
            SyncError::RetriesExhausted { last, .. } => last.needs_reinstall(),
            _ => false,
        }
    }

    /// How many master updates the replica has missed, when the master
    /// could tell ([`ReplayExpired`](SyncError::ReplayExpired) carries its
    /// retention bounds). `None` when divergence is unknown (e.g. the
    /// session is gone entirely).
    pub fn estimated_divergence(&self) -> Option<u64> {
        match self {
            SyncError::ReplayExpired { oldest_retained, ops_applied, .. } => {
                Some(ops_applied.saturating_sub(*oldest_retained))
            }
            SyncError::RetriesExhausted { last, .. } => last.estimated_divergence(),
            _ => None,
        }
    }
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::UnknownCookie(c) => write!(f, "unknown or expired session {c}"),
            SyncError::MissingCookie => f.write_str("request requires a cookie"),
            SyncError::RequestMismatch(c) => {
                write!(f, "search request does not match session {c}")
            }
            SyncError::ReplayExpired { cookie, oldest_retained, ops_applied } => {
                write!(
                    f,
                    "unacknowledged batch for {cookie} is no longer replayable \
                     (~{} updates behind)",
                    ops_applied.saturating_sub(*oldest_retained)
                )
            }
            SyncError::ReconcileFailed(why) => {
                write!(f, "reconciliation failed: {why}")
            }
            SyncError::Unavailable(why) => write!(f, "master unavailable: {why}"),
            SyncError::RetriesExhausted { attempts, last } => {
                write!(f, "sync gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl Error for SyncError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SyncError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            // The remaining variants are protocol-level root causes with
            // no underlying error to chain to.
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_sizes_and_kinds() {
        let e = Entry::new("cn=a,o=xyz".parse().unwrap()).with("mail", "a@b.c");
        let add = SyncAction::Add(e.clone());
        let del = SyncAction::Delete(e.dn().clone());
        assert!(add.carries_entry());
        assert!(!del.carries_entry());
        assert!(add.estimated_size() > del.estimated_size());
        assert_eq!(add.dn(), e.dn());
    }

    #[test]
    fn traffic_accounting() {
        let e = Entry::new("cn=a,o=xyz".parse().unwrap()).with("mail", "a@b.c");
        let resp = SyncResponse {
            actions: vec![
                SyncAction::Add(e.clone()),
                SyncAction::Modify(e.clone()),
                SyncAction::Delete(e.dn().clone()),
                SyncAction::Retain(e.dn().clone()),
            ],
            cookie: Some(Cookie(1)),
            redelivered: false,
        };
        let t = resp.traffic();
        assert_eq!(t.full_entries, 2);
        assert_eq!(t.dn_only, 2);
        assert_eq!(t.pdus(), 4);
        assert!(t.bytes > 0);
        assert_eq!(t.redelivered_pdus, 0);

        let replayed = SyncResponse { redelivered: true, ..resp };
        assert_eq!(replayed.traffic().redelivered_pdus, 4);
    }

    #[test]
    fn cookie_packs_session_and_seq() {
        let c = Cookie::new(7, 42);
        assert_eq!(c.session(), 7);
        assert_eq!(c.seq(), 42);
        assert_eq!(c.to_string(), "cookie:7.42");
        // Round trip through the raw representation.
        assert_eq!(Cookie(c.0), c);
        let max = Cookie::new(u32::MAX, u32::MAX);
        assert_eq!(max.session(), u32::MAX);
        assert_eq!(max.seq(), u32::MAX);
    }

    #[test]
    fn error_classification() {
        assert!(SyncError::Unavailable("drop".into()).is_transient());
        assert!(!SyncError::UnknownCookie(Cookie(1)).is_transient());
        assert!(SyncError::UnknownCookie(Cookie(1)).needs_reinstall());
        let expired =
            SyncError::ReplayExpired { cookie: Cookie(1), oldest_retained: 10, ops_applied: 17 };
        assert!(expired.needs_reinstall());
        assert!(!expired.is_transient());
        assert!(!SyncError::MissingCookie.needs_reinstall());
        let rf = SyncError::ReconcileFailed("unsupported".into());
        assert!(!rf.is_transient());
        assert!(!rf.needs_reinstall());
    }

    #[test]
    fn replay_expired_estimates_divergence() {
        let expired =
            SyncError::ReplayExpired { cookie: Cookie(1), oldest_retained: 10, ops_applied: 17 };
        assert_eq!(expired.estimated_divergence(), Some(7));
        assert!(expired.to_string().contains("~7 updates behind"));
        // Divergence is unknown for a dead session, and transparent
        // through the retry wrapper.
        assert_eq!(SyncError::UnknownCookie(Cookie(1)).estimated_divergence(), None);
        let wrapped = SyncError::RetriesExhausted { attempts: 2, last: Box::new(expired) };
        assert_eq!(wrapped.estimated_divergence(), Some(7));
    }

    #[test]
    fn exhausted_wrapper_delegates_and_chains() {
        let e = SyncError::RetriesExhausted {
            attempts: 3,
            last: Box::new(SyncError::Unavailable("drop".into())),
        };
        // Classification is transparent through the wrapper.
        assert!(e.is_transient());
        assert!(!e.needs_reinstall());
        let e2 = SyncError::RetriesExhausted {
            attempts: 1,
            last: Box::new(SyncError::ReplayExpired {
                cookie: Cookie(9),
                oldest_retained: 0,
                ops_applied: 3,
            }),
        };
        assert!(e2.needs_reinstall());
        // Display names the attempt count and the root cause; source()
        // chains to it for `anyhow`-style walkers.
        assert_eq!(e.to_string(), "sync gave up after 3 attempts: master unavailable: drop");
        let src = e.source().expect("chained source");
        assert_eq!(src.to_string(), "master unavailable: drop");
        assert!(src.source().is_none());
    }

    #[test]
    fn control_constructors() {
        assert_eq!(ReSyncControl::poll(None).mode, SyncMode::Poll);
        assert_eq!(ReSyncControl::persist(None).mode, SyncMode::Persist);
        let end = ReSyncControl::sync_end(Cookie(3));
        assert_eq!(end.mode, SyncMode::SyncEnd);
        assert_eq!(end.cookie, Some(Cookie(3)));
    }
}
