//! Wire-level types of the ReSync protocol.

use fbdr_ldap::{Dn, Entry};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Opaque resumption token identifying an update session at the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Cookie(pub u64);

impl fmt::Display for Cookie {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cookie:{}", self.0)
    }
}

/// Mode requested in a `reSyncControl = (mode, cookie)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncMode {
    /// One batch of updates now; a cookie to resume later.
    Poll,
    /// One batch now, then change notifications on an open channel.
    Persist,
    /// Terminate the session identified by the cookie.
    SyncEnd,
}

/// The control attached to a search request to make it a ReSync request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReSyncControl {
    /// Requested update mode.
    pub mode: SyncMode,
    /// `None` starts a new session (full content); `Some` resumes one.
    pub cookie: Option<Cookie>,
}

impl ReSyncControl {
    /// Poll-mode control.
    pub fn poll(cookie: Option<Cookie>) -> Self {
        ReSyncControl { mode: SyncMode::Poll, cookie }
    }

    /// Persist-mode control.
    pub fn persist(cookie: Option<Cookie>) -> Self {
        ReSyncControl { mode: SyncMode::Persist, cookie }
    }

    /// Session termination.
    pub fn sync_end(cookie: Cookie) -> Self {
        ReSyncControl { mode: SyncMode::SyncEnd, cookie: Some(cookie) }
    }
}

/// One update PDU: an entry (or DN) plus the action the replica must take.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SyncAction {
    /// Entry moved into the content — the complete entry is sent. (May
    /// result from an add, modify or modify DN at the master.)
    Add(Entry),
    /// Entry changed but stayed in the content — the complete entry.
    Modify(Entry),
    /// Entry moved out of the content — only the DN travels. (May result
    /// from a delete, modify or rename.)
    Delete(Dn),
    /// Entry is unchanged and still in the content (used by history-free
    /// synchronization per equation (3)) — only the DN travels.
    Retain(Dn),
}

impl SyncAction {
    /// The DN the action concerns.
    pub fn dn(&self) -> &Dn {
        match self {
            SyncAction::Add(e) | SyncAction::Modify(e) => e.dn(),
            SyncAction::Delete(dn) | SyncAction::Retain(dn) => dn,
        }
    }

    /// Estimated wire size in bytes.
    pub fn estimated_size(&self) -> usize {
        match self {
            SyncAction::Add(e) | SyncAction::Modify(e) => e.estimated_size() + 8,
            SyncAction::Delete(dn) | SyncAction::Retain(dn) => dn.to_string().len() + 8,
        }
    }

    /// True when the full entry travels (add/modify).
    pub fn carries_entry(&self) -> bool {
        matches!(self, SyncAction::Add(_) | SyncAction::Modify(_))
    }
}

impl fmt::Display for SyncAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncAction::Add(e) => write!(f, "{}, add", e.dn()),
            SyncAction::Modify(e) => write!(f, "{}, mod", e.dn()),
            SyncAction::Delete(dn) => write!(f, "{dn}, delete"),
            SyncAction::Retain(dn) => write!(f, "{dn}, retain"),
        }
    }
}

/// Response to a ReSync request: the update actions plus, in poll mode,
/// the cookie to resume the session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncResponse {
    /// Actions in master apply order (coalesced per DN).
    pub actions: Vec<SyncAction>,
    /// Resumption cookie (`None` after `sync_end`).
    pub cookie: Option<Cookie>,
}

impl SyncResponse {
    /// Aggregated traffic cost of this response.
    pub fn traffic(&self) -> SyncTraffic {
        let mut t = SyncTraffic::default();
        for a in &self.actions {
            t.count(a);
        }
        t
    }
}

/// Synchronization traffic accounting: how many full entries travelled,
/// how many DN-only PDUs, and estimated bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncTraffic {
    /// PDUs carrying a complete entry (add/modify).
    pub full_entries: u64,
    /// PDUs carrying only a DN (delete/retain).
    pub dn_only: u64,
    /// Estimated bytes across all PDUs.
    pub bytes: u64,
}

impl SyncTraffic {
    /// Accounts one action.
    pub fn count(&mut self, action: &SyncAction) {
        if action.carries_entry() {
            self.full_entries += 1;
        } else {
            self.dn_only += 1;
        }
        self.bytes += action.estimated_size() as u64;
    }

    /// Merges another accounting into this one.
    pub fn absorb(&mut self, other: &SyncTraffic) {
        self.full_entries += other.full_entries;
        self.dn_only += other.dn_only;
        self.bytes += other.bytes;
    }

    /// Total PDU count.
    pub fn pdus(&self) -> u64 {
        self.full_entries + self.dn_only
    }
}

/// Errors from ReSync request handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyncError {
    /// The cookie does not name a live session (expired or never issued).
    UnknownCookie(Cookie),
    /// A `sync_end` or resume was sent without a cookie.
    MissingCookie,
    /// The resumed session was established for a different search request.
    RequestMismatch(Cookie),
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::UnknownCookie(c) => write!(f, "unknown or expired session {c}"),
            SyncError::MissingCookie => f.write_str("request requires a cookie"),
            SyncError::RequestMismatch(c) => {
                write!(f, "search request does not match session {c}")
            }
        }
    }
}

impl Error for SyncError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_sizes_and_kinds() {
        let e = Entry::new("cn=a,o=xyz".parse().unwrap()).with("mail", "a@b.c");
        let add = SyncAction::Add(e.clone());
        let del = SyncAction::Delete(e.dn().clone());
        assert!(add.carries_entry());
        assert!(!del.carries_entry());
        assert!(add.estimated_size() > del.estimated_size());
        assert_eq!(add.dn(), e.dn());
    }

    #[test]
    fn traffic_accounting() {
        let e = Entry::new("cn=a,o=xyz".parse().unwrap()).with("mail", "a@b.c");
        let resp = SyncResponse {
            actions: vec![
                SyncAction::Add(e.clone()),
                SyncAction::Modify(e.clone()),
                SyncAction::Delete(e.dn().clone()),
                SyncAction::Retain(e.dn().clone()),
            ],
            cookie: Some(Cookie(1)),
        };
        let t = resp.traffic();
        assert_eq!(t.full_entries, 2);
        assert_eq!(t.dn_only, 2);
        assert_eq!(t.pdus(), 4);
        assert!(t.bytes > 0);
    }

    #[test]
    fn control_constructors() {
        assert_eq!(ReSyncControl::poll(None).mode, SyncMode::Poll);
        assert_eq!(ReSyncControl::persist(None).mode, SyncMode::Persist);
        let end = ReSyncControl::sync_end(Cookie(3));
        assert_eq!(end.mode, SyncMode::SyncEnd);
        assert_eq!(end.cookie, Some(Cookie(3)));
    }
}
