//! The Figure 3 message sequence chart, asserted step by step.
//!
//! Entries E1…E5; search request S = all persons with dept=7. The session
//! runs: initial poll (null cookie) → poll with cookie → switch to persist
//! → abandon.

use fbdr_dit::{Modification, UpdateOp};
use fbdr_ldap::{Dn, Entry, Filter, Rdn, Scope, SearchRequest};
use fbdr_resync::{ReSyncControl, ReplicaContent, SyncAction, SyncMaster};

fn dn(s: &str) -> Dn {
    s.parse().unwrap()
}

fn person(cn: &str, dept: &str) -> Entry {
    Entry::new(dn(&format!("cn={cn},o=xyz")))
        .with("objectclass", "person")
        .with("cn", cn)
        .with("dept", dept)
}

#[test]
fn figure3_session() {
    let mut m = SyncMaster::new();
    m.dit_mut().add_suffix(dn("o=xyz"));
    m.dit_mut().add(Entry::new(dn("o=xyz"))).unwrap();
    // E1, E2, E3 are in the content of S when the session starts.
    for cn in ["E1", "E2", "E3"] {
        m.dit_mut().add(person(cn, "7")).unwrap();
    }
    let s = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::parse("(dept=7)").unwrap());
    let mut replica = ReplicaContent::new();

    // --- S, (poll, null): E1 add, E2 add, E3 add; cookie ---
    let resp = m.resync(&s, ReSyncControl::poll(None)).unwrap();
    assert_eq!(resp.actions.len(), 3);
    assert!(resp.actions.iter().all(SyncAction::carries_entry));
    let cookie = resp.cookie.expect("cookie");
    replica.apply_all(&resp.actions);
    assert_eq!(replica.len(), 3);

    // --- between polls: E4 added (A); E1, E2 deleted (D) / moved out (M);
    //     E3 modified in place (M) ---
    m.apply(UpdateOp::Add(person("E4", "7"))).unwrap();
    m.apply(UpdateOp::Delete(dn("cn=E1,o=xyz"))).unwrap();
    m.apply(UpdateOp::Modify {
        dn: dn("cn=E2,o=xyz"),
        mods: vec![Modification::Replace("dept".into(), vec!["9".into()])],
    })
    .unwrap();
    m.apply(UpdateOp::Modify {
        dn: dn("cn=E3,o=xyz"),
        mods: vec![Modification::Replace("mail".into(), vec!["e3@xyz.com".into()])],
    })
    .unwrap();

    // --- S, (poll, cookie): E4 add; E1, E2 delete; E3 mod; cookie1 ---
    let resp = m.resync(&s, ReSyncControl::poll(Some(cookie))).unwrap();
    let mut lines: Vec<String> = resp.actions.iter().map(|a| a.to_string()).collect();
    lines.sort();
    assert_eq!(
        lines,
        [
            "cn=E1,o=xyz, delete",
            "cn=E2,o=xyz, delete",
            "cn=E3,o=xyz, mod",
            "cn=E4,o=xyz, add",
        ]
    );
    let cookie1 = resp.cookie.expect("cookie1");
    replica.apply_all(&resp.actions);
    assert_eq!(replica.len(), 2); // E3, E4

    // --- S, (persist, cookie1): rename E3 -> E5 streams a delete for the
    //     old DN and an add for the new one ---
    let (resp, rx) = m.resync_persist(&s, Some(cookie1)).unwrap();
    assert!(resp.actions.is_empty(), "nothing changed since the poll");
    m.apply(UpdateOp::ModifyDn {
        dn: dn("cn=E3,o=xyz"),
        new_rdn: Rdn::new("cn", "E5"),
        new_superior: None,
    })
    .unwrap();
    let notes: Vec<SyncAction> = rx.try_iter().flat_map(|b| b.actions).collect();
    let mut note_lines: Vec<String> = notes.iter().map(|a| a.to_string()).collect();
    note_lines.sort();
    assert_eq!(note_lines, ["cn=E3,o=xyz, delete", "cn=E5,o=xyz, add"]);
    replica.apply_all(&notes);

    // --- abandon ---
    m.abandon(cookie1);
    assert_eq!(m.session_count(), 0);

    // Final replica state: E4 and E5.
    assert_eq!(replica.sorted_dns(), ["cn=e4,o=xyz", "cn=e5,o=xyz"]);
}
