//! Sharded split-merge equivalence: a `ShardCoordinator` driving one
//! session per shard of a `ShardedMaster` must be observably identical
//! to a single session against one unsharded `SyncMaster` holding the
//! same directory — same search answers, same converged replica content
//! at every poll boundary, and composite cookies that survive a serde
//! round trip (including part reordering) mid-stream. Plus a chaos
//! check: partitioning one shard leaves every other shard serving.

use fbdr_dit::{Modification, UpdateOp};
use fbdr_ldap::{Dn, Entry, Filter, Rdn, Scope, SearchRequest};
use crossbeam::channel::Receiver;
use fbdr_resync::reconcile::{RangeRequest, RangeResponse, ReconcileRequest, ReconcileResponse};
use fbdr_resync::{
    CompositeCookie, Cookie, ReSyncControl, ReconcileConfig, ReconcileItem, ReplicaContent,
    RetryConfig, ShardContent, ShardCoordinator, ShardId, ShardMap, ShardStatus, ShardedMaster,
    NotifyBatch, SyncError, SyncMaster, SyncResponse, SyncTransport,
};
use proptest::prelude::*;

const COUNTRIES: usize = 4;

/// An abstract operation against a pool of person entries, each living
/// under its id's country (`c=s{id % COUNTRIES},o=xyz`). Renames change
/// the RDN only, so an entry never crosses its shard boundary and both
/// sides of the comparison see identical success/failure per op.
#[derive(Debug, Clone)]
enum Op {
    Add { id: usize, dept: u8 },
    Delete { id: usize },
    SetDept { id: usize, dept: u8 },
    SetMail { id: usize, tag: u8 },
    Rename { id: usize, new_id: usize },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..16, 0u8..4).prop_map(|(id, dept)| Op::Add { id, dept }),
        (0usize..16).prop_map(|id| Op::Delete { id }),
        (0usize..16, 0u8..4).prop_map(|(id, dept)| Op::SetDept { id, dept }),
        (0usize..16, 0u8..4).prop_map(|(id, tag)| Op::SetMail { id, tag }),
        (0usize..16, 0usize..16).prop_map(|(id, new_id)| Op::Rename { id, new_id }),
    ]
}

fn country_dn(c: usize) -> Dn {
    format!("c=s{c},o=xyz").parse().expect("valid dn")
}

fn dn_of(id: usize) -> Dn {
    format!("cn=p{id},c=s{},o=xyz", id % COUNTRIES).parse().expect("valid dn")
}

fn entry_of(id: usize, dept: u8) -> Entry {
    Entry::new(dn_of(id))
        .with("objectclass", "person")
        .with("cn", &format!("p{id}"))
        .with("dept", &dept.to_string())
}

fn to_update(op: &Op) -> UpdateOp {
    match op {
        Op::Add { id, dept } => UpdateOp::Add(entry_of(*id, *dept)),
        Op::Delete { id } => UpdateOp::Delete(dn_of(*id)),
        Op::SetDept { id, dept } => UpdateOp::Modify {
            dn: dn_of(*id),
            mods: vec![Modification::Replace("dept".into(), vec![dept.to_string().into()])],
        },
        Op::SetMail { id, tag } => UpdateOp::Modify {
            dn: dn_of(*id),
            mods: vec![Modification::Replace("mail".into(), vec![format!("m{tag}@x").into()])],
        },
        Op::Rename { id, new_id } => UpdateOp::ModifyDn {
            dn: dn_of(*id),
            new_rdn: Rdn::new("cn", format!("p{new_id}")),
            new_superior: None,
        },
    }
}

/// Country `c` → shard `c % k`: the same namespace at every shard count.
fn map_for(k: usize) -> ShardMap {
    let mut map = ShardMap::new(ShardId::ZERO);
    for c in 0..COUNTRIES {
        map.assign(country_dn(c), ShardId::new(u16::try_from(c % k).expect("fits")));
    }
    map
}

/// The unsharded reference holding the full skeleton.
fn unsharded() -> SyncMaster {
    let mut m = SyncMaster::new();
    m.dit_mut().add_suffix("o=xyz".parse().expect("valid dn"));
    m.dit_mut().add(Entry::new("o=xyz".parse().expect("valid dn"))).expect("suffix add");
    for c in 0..COUNTRIES {
        m.dit_mut()
            .add(Entry::new(country_dn(c)).with("objectclass", "country"))
            .expect("country add");
    }
    m
}

/// A sharded master over `k` shards, each shard's DIT holding the
/// skeleton plus its own countries.
fn sharded(k: usize) -> ShardedMaster {
    let map = map_for(k);
    let mut m = ShardedMaster::new(map.clone());
    for shard in map.shards() {
        let dit = m.shard_mut(shard).dit_mut();
        dit.add_suffix("o=xyz".parse().expect("valid dn"));
        dit.add(Entry::new("o=xyz".parse().expect("valid dn"))).expect("suffix add");
    }
    for c in 0..COUNTRIES {
        let shard = map.shard_of(&country_dn(c));
        m.shard_mut(shard)
            .dit_mut()
            .add(Entry::new(country_dn(c)).with("objectclass", "country"))
            .expect("country add");
    }
    m
}

const SESSION_FILTERS: &[&str] = &[
    "(dept=1)",
    "(&(objectclass=person)(dept=0))",
    "(|(dept=1)(dept=3))",
    "(cn=p1*)",
    "(mail=*)",
    "(!(dept=1))",
];

fn session_request(filter_idx: usize) -> SearchRequest {
    SearchRequest::new(
        "o=xyz".parse().expect("valid dn"),
        Scope::Subtree,
        Filter::parse(SESSION_FILTERS[filter_idx % SESSION_FILTERS.len()]).expect("valid filter"),
    )
}

/// The happy path never walks the recovery ladder, so the coordinator's
/// content view is never consulted.
struct NoContent;

impl ShardContent for NoContent {
    fn items(&self, _shard: ShardId) -> Vec<ReconcileItem> {
        Vec::new()
    }
    fn resolve(&self, _shard: ShardId, _key: &str) -> Option<u32> {
        None
    }
    fn dn_of(&self, _shard: ShardId, _id: u32) -> Option<Dn> {
        None
    }
    fn held_dns(&self, _shard: ShardId) -> Vec<Dn> {
        Vec::new()
    }
}

/// Serde round trip with the parts deliberately reversed: the decoded
/// cookie must normalize back to the same composite.
fn scramble_cookie(cookie: &CompositeCookie) -> CompositeCookie {
    let mut parts: Vec<(ShardId, Cookie)> = cookie.iter().collect();
    parts.reverse();
    let json = serde_json::to_string(&parts).expect("parts serialize");
    let decoded: CompositeCookie = serde_json::from_str(&json).expect("cookie deserializes");
    assert_eq!(&decoded, cookie, "scrambled round trip must normalize");
    decoded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// One coordinator-driven filter over N shards converges to exactly
    /// the content a single unsharded session converges to — answers,
    /// replica content, and cookies that resume across serde round trips.
    #[test]
    fn coordinator_split_merge_equals_single_master(
        ops in prop::collection::vec(op(), 1..60),
        n_shards in 1usize..5,
        filter_idx in 0usize..6,
        poll_every in 1usize..8,
    ) {
        let mut single = unsharded();
        let mut multi = sharded(n_shards);
        let mut coord = ShardCoordinator::new(multi.map().clone());
        let req = session_request(filter_idx);

        let single_resp = single.resync(&req, ReSyncControl::poll(None)).expect("single install");
        let mut single_cookie = single_resp.cookie.expect("cookie");
        let mut single_content = ReplicaContent::new();
        single_content.apply_all(&single_resp.actions);

        let (actions, mut composite, _) = coord.install(&mut multi, &req).expect("install");
        let mut multi_content = ReplicaContent::new();
        multi_content.apply_all(&actions);
        prop_assert_eq!(multi_content.sorted_dns(), single_content.sorted_dns());

        for (i, o) in ops.iter().enumerate() {
            let up = to_update(o);
            let expect_ok = single.apply(up.clone()).is_ok();
            let got_ok = multi.apply(up).is_ok();
            prop_assert_eq!(got_ok, expect_ok, "apply outcome diverged at op {}", i);

            if (i + 1) % poll_every == 0 {
                // The composite cookie resumes after a scrambled serde
                // round trip mid-stream.
                composite = scramble_cookie(&composite);

                let outcomes = coord.sync_filter(&mut multi, &req, &mut composite, &NoContent);
                for out in &outcomes {
                    prop_assert_eq!(&out.status, &ShardStatus::Updated,
                        "healthy shard degraded at op {}", i);
                    multi_content.apply_all(&out.actions);
                }
                let r = single
                    .resync(&req, ReSyncControl::poll(Some(single_cookie)))
                    .expect("single poll");
                single_cookie = r.cookie.expect("cookie");
                single_content.apply_all(&r.actions);
                prop_assert_eq!(
                    multi_content.sorted_dns(), single_content.sorted_dns(),
                    "converged content diverged after op {}", i
                );
            }
        }

        // Final drain on both sides.
        composite = scramble_cookie(&composite);
        for out in coord.sync_filter(&mut multi, &req, &mut composite, &NoContent) {
            prop_assert_eq!(&out.status, &ShardStatus::Updated);
            multi_content.apply_all(&out.actions);
        }
        let r = single.resync(&req, ReSyncControl::poll(Some(single_cookie))).expect("final");
        single_content.apply_all(&r.actions);
        prop_assert_eq!(multi_content.sorted_dns(), single_content.sorted_dns());

        // Exact convergence: the sharded replica content matches both the
        // unsharded replica and the masters' own answers, entries included.
        let mut single_dns: Vec<String> =
            single.dit().search_dns(&req).iter().map(|d| d.to_string()).collect();
        single_dns.sort();
        prop_assert_eq!(multi_content.sorted_dns(), single_dns);
        for e in multi_content.iter() {
            let at_master = single.dit().get(e.dn()).expect("entry exists at master");
            prop_assert_eq!(e, at_master, "entry content diverged");
        }
        // And the sharded master's fan-out search agrees with the
        // unsharded answer set.
        let mut sharded_answer: Vec<String> =
            multi.search(&req).iter().map(|e| e.dn().to_string()).collect();
        sharded_answer.sort();
        let mut single_answer: Vec<String> =
            single.dit().search(&req).iter().map(|e| e.dn().to_string()).collect();
        single_answer.sort();
        prop_assert_eq!(sharded_answer, single_answer);
    }
}

// ---------------------------------------------------------------------
// Chaos: one partitioned shard cannot stall the rest
// ---------------------------------------------------------------------

/// A transport wrapper that drops every shard-addressed exchange to one
/// shard on the floor, as a network partition would.
struct PartitionedShard {
    inner: ShardedMaster,
    dead: ShardId,
}

impl SyncTransport for PartitionedShard {
    fn resync(
        &mut self,
        request: &SearchRequest,
        ctl: ReSyncControl,
    ) -> Result<SyncResponse, SyncError> {
        self.inner.resync(request, ctl)
    }
    fn take_receiver(&mut self, cookie: Cookie) -> Option<Receiver<NotifyBatch>> {
        self.inner.take_receiver(cookie)
    }
    fn abandon(&mut self, cookie: Cookie) {
        self.inner.abandon(cookie);
    }
    fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }
    fn resync_at(
        &mut self,
        shard: ShardId,
        request: &SearchRequest,
        ctl: ReSyncControl,
    ) -> Result<SyncResponse, SyncError> {
        if shard == self.dead {
            return Err(SyncError::Unavailable("partitioned".into()));
        }
        self.inner.resync_at(shard, request, ctl)
    }
    fn take_receiver_at(&mut self, shard: ShardId, cookie: Cookie) -> Option<Receiver<NotifyBatch>> {
        self.inner.take_receiver_at(shard, cookie)
    }
    fn abandon_at(&mut self, shard: ShardId, cookie: Cookie) {
        self.inner.abandon_at(shard, cookie);
    }
    fn reconcile_at(
        &mut self,
        shard: ShardId,
        request: &SearchRequest,
        req: ReconcileRequest,
    ) -> Result<ReconcileResponse, SyncError> {
        if shard == self.dead {
            return Err(SyncError::Unavailable("partitioned".into()));
        }
        self.inner.reconcile_at(shard, request, req)
    }
    fn reconcile_ranges_at(
        &mut self,
        shard: ShardId,
        cookie: Cookie,
        req: &RangeRequest,
    ) -> Result<RangeResponse, SyncError> {
        if shard == self.dead {
            return Err(SyncError::Unavailable("partitioned".into()));
        }
        self.inner.reconcile_ranges_at(shard, cookie, req)
    }
}

/// A fast-failing retry policy so the partitioned shard degrades to
/// stale without real backoff sleeps.
fn snappy_retry() -> RetryConfig {
    RetryConfig {
        max_retries: 1,
        base_backoff_ms: 0,
        max_backoff_ms: 0,
        timeout_budget_ms: 10_000,
        jitter_seed: 7,
    }
}

#[test]
fn partitioned_shard_degrades_alone_and_catches_up() {
    let mut coord = ShardCoordinator::with_config(
        map_for(4),
        snappy_retry(),
        ReconcileConfig::default(),
    );
    let mut t = PartitionedShard { inner: sharded(4), dead: ShardId::new(u16::MAX) };
    let req = session_request(4); // (mail=*)
    for id in 0..8 {
        t.inner.apply(UpdateOp::Add(entry_of(id, 1).with("mail", "a@x"))).unwrap();
    }

    // Install while healthy.
    let (actions, mut composite, _) = coord.install(&mut t, &req).expect("install");
    let mut content = ReplicaContent::new();
    content.apply_all(&actions);
    assert_eq!(content.sorted_dns().len(), 8);
    assert_eq!(composite.len(), 4);

    // New entries land on every shard; shard 2 then partitions.
    for id in 8..16 {
        t.inner.apply(UpdateOp::Add(entry_of(id, 2).with("mail", "b@x"))).unwrap();
    }
    let dead = ShardId::new(2);
    t.dead = dead;
    let outcomes = coord.sync_filter(&mut t, &req, &mut composite, &NoContent);
    let mut fresh_actions = 0usize;
    for out in &outcomes {
        if out.shard == dead {
            assert_eq!(out.status, ShardStatus::Stale, "partitioned shard must serve stale");
            assert!(out.actions.is_empty());
        } else {
            assert_eq!(out.status, ShardStatus::Updated, "healthy shard {} stalled", out.shard);
            fresh_actions += out.actions.len();
        }
        content.apply_all(&out.actions);
    }
    // Countries s0/s1/s3 each gained two entries; only s2's two are missing.
    assert_eq!(fresh_actions, 6);
    assert_eq!(content.sorted_dns().len(), 14);
    // The stale shard kept its cookie for resumption.
    assert!(composite.get(dead).is_some());
    assert_eq!(composite.len(), 4);

    // Partition heals: the kept cookie resumes incrementally — no
    // reinstall, no reconcile, just the missed batch.
    t.dead = ShardId::new(u16::MAX);
    let outcomes = coord.sync_filter(&mut t, &req, &mut composite, &NoContent);
    for out in &outcomes {
        assert_eq!(out.status, ShardStatus::Updated);
        content.apply_all(&out.actions);
    }
    assert_eq!(content.sorted_dns().len(), 16);
    assert_eq!(coord.stats().reinstalls, 0);
    assert_eq!(coord.stats().reconciliations, 0);
}
