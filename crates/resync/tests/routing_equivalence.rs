//! Routed fan-out equivalence: `SyncMaster::apply` (candidate routing via
//! the session routing index) must be observably identical to
//! `SyncMaster::apply_naive` (every session evaluated against every
//! update) — same drained actions per session, same converged content —
//! and the routing index must track the session lifecycle exactly.

use fbdr_dit::{Modification, UpdateOp};
use fbdr_ldap::{Dn, Entry, Filter, Rdn, Scope, SearchRequest};
use fbdr_resync::{Cookie, ReSyncControl, ReplicaContent, SyncMaster};
use proptest::prelude::*;

/// An abstract operation against a pool of person entries.
#[derive(Debug, Clone)]
enum Op {
    Add { id: usize, dept: u8 },
    Delete { id: usize },
    SetDept { id: usize, dept: u8 },
    SetMail { id: usize, tag: u8 },
    Rename { id: usize, new_id: usize },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..12, 0u8..4).prop_map(|(id, dept)| Op::Add { id, dept }),
        (0usize..12).prop_map(|id| Op::Delete { id }),
        (0usize..12, 0u8..4).prop_map(|(id, dept)| Op::SetDept { id, dept }),
        (0usize..12, 0u8..4).prop_map(|(id, tag)| Op::SetMail { id, tag }),
        (0usize..12, 0usize..12).prop_map(|(id, new_id)| Op::Rename { id, new_id }),
    ]
}

fn dn_of(id: usize) -> Dn {
    format!("cn=p{id},o=xyz").parse().expect("valid dn")
}

fn entry_of(id: usize, dept: u8) -> Entry {
    Entry::new(dn_of(id))
        .with("objectclass", "person")
        .with("cn", &format!("p{id}"))
        .with("dept", &dept.to_string())
}

fn fresh_master() -> SyncMaster {
    let mut m = SyncMaster::new();
    m.dit_mut().add_suffix("o=xyz".parse().expect("valid dn"));
    m.dit_mut().add(Entry::new("o=xyz".parse().expect("valid dn"))).expect("suffix add");
    m
}

fn to_update(op: &Op) -> UpdateOp {
    match op {
        Op::Add { id, dept } => UpdateOp::Add(entry_of(*id, *dept)),
        Op::Delete { id } => UpdateOp::Delete(dn_of(*id)),
        Op::SetDept { id, dept } => UpdateOp::Modify {
            dn: dn_of(*id),
            mods: vec![Modification::Replace("dept".into(), vec![dept.to_string().into()])],
        },
        Op::SetMail { id, tag } => UpdateOp::Modify {
            dn: dn_of(*id),
            mods: vec![Modification::Replace("mail".into(), vec![format!("m{tag}@x").into()])],
        },
        Op::Rename { id, new_id } => UpdateOp::ModifyDn {
            dn: dn_of(*id),
            new_rdn: Rdn::new("cn", format!("p{new_id}")),
            new_superior: None,
        },
    }
}

/// A mix of indexable (equality, prefix, presence, Or-union, And) and
/// residual (Not, range) session filters — every routing-plan shape the
/// index distinguishes.
const SESSION_FILTERS: &[&str] = &[
    "(dept=1)",
    "(dept=2)",
    "(&(objectclass=person)(dept=0))",
    "(|(dept=1)(dept=3))",
    "(cn=p1*)",
    "(mail=*)",
    "(!(dept=1))",
    "(dept>=2)",
];

fn session_request(filter_idx: usize) -> SearchRequest {
    SearchRequest::new(
        "o=xyz".parse().expect("valid dn"),
        Scope::Subtree,
        Filter::parse(SESSION_FILTERS[filter_idx % SESSION_FILTERS.len()]).expect("valid filter"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Identical op streams through the routed path and the naive
    /// all-sessions reference produce identical drained actions for every
    /// session at every poll boundary, and the same converged content.
    #[test]
    fn routed_equals_naive(
        ops in prop::collection::vec(op(), 1..60),
        n_sessions in 1usize..9,
        poll_every in 1usize..8,
    ) {
        let mut routed = fresh_master();
        let mut naive = fresh_master();
        let mut sessions: Vec<(SearchRequest, Cookie, Cookie, ReplicaContent, ReplicaContent)> =
            Vec::new();
        for i in 0..n_sessions {
            let req = session_request(i);
            let r = routed.resync(&req, ReSyncControl::poll(None)).expect("routed install");
            let n = naive.resync(&req, ReSyncControl::poll(None)).expect("naive install");
            prop_assert_eq!(&r.actions, &n.actions, "initial content differs for {}", &req);
            let mut rc = ReplicaContent::new();
            rc.apply_all(&r.actions);
            let mut nc = ReplicaContent::new();
            nc.apply_all(&n.actions);
            sessions.push((req, r.cookie.unwrap(), n.cookie.unwrap(), rc, nc));
        }
        routed.debug_validate_routing();

        for (i, o) in ops.iter().enumerate() {
            let _ = routed.apply(to_update(o));
            let _ = naive.apply_naive(to_update(o));
            if (i + 1) % poll_every == 0 {
                for (req, rc_cookie, nc_cookie, rc, nc) in &mut sessions {
                    let r = routed
                        .resync(req, ReSyncControl::poll(Some(*rc_cookie)))
                        .expect("routed poll");
                    let n = naive
                        .resync(req, ReSyncControl::poll(Some(*nc_cookie)))
                        .expect("naive poll");
                    prop_assert_eq!(
                        &r.actions, &n.actions,
                        "drained actions diverge for {} after op {}", &*req, i
                    );
                    *rc_cookie = r.cookie.unwrap();
                    *nc_cookie = n.cookie.unwrap();
                    rc.apply_all(&r.actions);
                    nc.apply_all(&n.actions);
                }
            }
        }
        for (req, rc_cookie, nc_cookie, rc, nc) in &mut sessions {
            let r = routed.resync(req, ReSyncControl::poll(Some(*rc_cookie))).expect("final");
            let n = naive.resync(req, ReSyncControl::poll(Some(*nc_cookie))).expect("final");
            prop_assert_eq!(&r.actions, &n.actions, "final drains diverge for {}", &*req);
            rc.apply_all(&r.actions);
            nc.apply_all(&n.actions);
            // Exact convergence: replica content equals the master answer,
            // entries included.
            let mut master_dns: Vec<String> =
                routed.dit().search_dns(req).iter().map(|d| d.to_string()).collect();
            master_dns.sort();
            prop_assert_eq!(rc.sorted_dns(), master_dns, "routed replica diverged for {}", &*req);
            for e in rc.iter() {
                let at_master = routed.dit().get(e.dn()).expect("entry exists at master");
                prop_assert_eq!(e, at_master, "entry content diverged");
            }
            prop_assert_eq!(rc.sorted_dns(), nc.sorted_dns());
        }
        routed.debug_validate_routing();
    }

    /// Persist-mode streams are identical too: the routed path must
    /// notify exactly the actions the naive path notifies, in order.
    #[test]
    fn routed_persist_stream_equals_naive(
        ops in prop::collection::vec(op(), 1..40),
        filter_idx in 0usize..8,
    ) {
        let mut routed = fresh_master();
        let mut naive = fresh_master();
        let req = session_request(filter_idx);
        let (r0, r_rx) = routed.resync_persist(&req, None).expect("routed persist");
        let (n0, n_rx) = naive.resync_persist(&req, None).expect("naive persist");
        prop_assert_eq!(&r0.actions, &n0.actions);
        for o in &ops {
            let _ = routed.apply(to_update(o));
            let _ = naive.apply_naive(to_update(o));
        }
        let routed_stream: Vec<_> = r_rx.try_iter().collect();
        let naive_stream: Vec<_> = n_rx.try_iter().collect();
        prop_assert_eq!(routed_stream, naive_stream, "persist notification streams diverge");
    }
}

// ---------------------------------------------------------------------
// Routing-index maintenance across the session lifecycle
// ---------------------------------------------------------------------

fn seeded_master() -> SyncMaster {
    let mut m = fresh_master();
    for i in 0..6 {
        m.dit_mut().add(entry_of(i, (i % 4) as u8)).unwrap();
    }
    m
}

#[test]
fn start_session_registers_and_sync_end_removes() {
    let mut m = seeded_master();
    let req = session_request(0);
    let c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
    assert_eq!(m.routing_stats().sessions, 1);
    assert_eq!(m.routing_stats().indexed, 1);
    m.debug_validate_routing();

    m.resync(&req, ReSyncControl::sync_end(c)).unwrap();
    assert_eq!(m.routing_stats().sessions, 0);
    assert_eq!(m.routing_stats().eq_keys, 0);
    m.debug_validate_routing();
}

#[test]
fn abandon_removes_index_entries() {
    let mut m = seeded_master();
    let residual = session_request(6); // (!(dept=1)) → scan-list
    let indexed = session_request(1);
    let c_res = m.resync(&residual, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
    let _c_idx = m.resync(&indexed, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
    let s = m.routing_stats();
    assert_eq!((s.sessions, s.indexed, s.residual), (2, 1, 1));

    m.abandon(c_res);
    let s = m.routing_stats();
    assert_eq!((s.sessions, s.indexed, s.residual), (1, 1, 0));
    m.debug_validate_routing();
    // Abandoning an already-dead cookie is a no-op.
    m.abandon(c_res);
    assert_eq!(m.routing_stats().sessions, 1);
}

#[test]
fn expire_idle_leaves_no_stale_posting_ids() {
    let mut m = seeded_master();
    for i in 0..4 {
        let req = session_request(i);
        m.resync(&req, ReSyncControl::poll(None)).unwrap();
    }
    assert_eq!(m.routing_stats().sessions, 4);
    for i in 10..15 {
        m.apply(UpdateOp::Add(entry_of(i, 1))).unwrap();
    }
    assert_eq!(m.expire_idle(2), 4);
    assert_eq!(m.session_count(), 0);
    let s = m.routing_stats();
    assert_eq!(s.sessions, 0);
    assert_eq!(s.eq_keys + s.prefix_keys + s.present_keys + s.residual, 0);
    m.debug_validate_routing();
}

#[test]
fn routing_index_rebuilds_after_serde_round_trip() {
    let mut m = seeded_master();
    let req = session_request(0); // (dept=1)
    let c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();

    let json = serde_json::to_string(&m).unwrap();
    let mut restored: SyncMaster = serde_json::from_str(&json).unwrap();
    // The index is not serialized; the first routed apply rebuilds it and
    // still reaches the session.
    restored.apply(UpdateOp::Add(entry_of(20, 1))).unwrap();
    assert_eq!(restored.routing_stats().sessions, 1);
    restored.debug_validate_routing();
    let resp = restored.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
    assert_eq!(resp.actions.len(), 1, "rebuilt index routed the add");
}

#[test]
fn never_sent_arrival_departing_is_silent_under_routing() {
    // The history-precision property the paper's §5 design guarantees,
    // exercised through the routed path with a rename in the middle.
    let mut m = fresh_master();
    let req = session_request(0); // (dept=1)
    let c = m.resync(&req, ReSyncControl::poll(None)).unwrap().cookie.unwrap();
    m.apply(UpdateOp::Add(entry_of(3, 1))).unwrap();
    m.apply(UpdateOp::ModifyDn {
        dn: dn_of(3),
        new_rdn: Rdn::new("cn", "p4"),
        new_superior: None,
    })
    .unwrap();
    m.apply(UpdateOp::Delete(dn_of(4))).unwrap();
    let resp = m.resync(&req, ReSyncControl::poll(Some(c))).unwrap();
    assert!(
        resp.actions.is_empty(),
        "entered, renamed and left between polls — replica must hear nothing, got {:?}",
        resp.actions
    );
}
