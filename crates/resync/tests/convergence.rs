//! Convergence properties: after any sequence of updates and a sync cycle,
//! the replica content equals the master's current answer — for ReSync
//! (poll and persist) and for every convergent baseline.

use fbdr_dit::{Modification, UpdateOp};
use fbdr_ldap::{Dn, Entry, Filter, Rdn, Scope, SearchRequest};
use fbdr_resync::baseline::{
    divergence, ChangelogSync, FullReload, RetainSync, Synchronizer, TombstoneSync,
};
use fbdr_resync::{ReSyncControl, ReplicaContent, SyncMaster};
use proptest::prelude::*;

/// An abstract operation against a pool of person entries.
#[derive(Debug, Clone)]
enum Op {
    Add { id: usize, dept: u8 },
    Delete { id: usize },
    SetDept { id: usize, dept: u8 },
    SetMail { id: usize, tag: u8 },
    Rename { id: usize, new_id: usize },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..12, 0u8..4).prop_map(|(id, dept)| Op::Add { id, dept }),
        (0usize..12).prop_map(|id| Op::Delete { id }),
        (0usize..12, 0u8..4).prop_map(|(id, dept)| Op::SetDept { id, dept }),
        (0usize..12, 0u8..4).prop_map(|(id, tag)| Op::SetMail { id, tag }),
        (0usize..12, 0usize..12).prop_map(|(id, new_id)| Op::Rename { id, new_id }),
    ]
}

fn dn_of(id: usize) -> Dn {
    format!("cn=p{id},o=xyz").parse().expect("valid dn")
}

fn entry_of(id: usize, dept: u8) -> Entry {
    Entry::new(dn_of(id))
        .with("objectclass", "person")
        .with("cn", &format!("p{id}"))
        .with("dept", &dept.to_string())
}

fn fresh_master() -> SyncMaster {
    let mut m = SyncMaster::new();
    m.dit_mut().add_suffix("o=xyz".parse().expect("valid dn"));
    m.dit_mut().add(Entry::new("o=xyz".parse().expect("valid dn"))).expect("suffix add");
    m
}

/// Applies an abstract op, ignoring precondition failures (they model
/// clients racing each other).
fn apply(m: &mut SyncMaster, op: &Op) {
    let _ = match op {
        Op::Add { id, dept } => m.apply(UpdateOp::Add(entry_of(*id, *dept))),
        Op::Delete { id } => m.apply(UpdateOp::Delete(dn_of(*id))),
        Op::SetDept { id, dept } => m.apply(UpdateOp::Modify {
            dn: dn_of(*id),
            mods: vec![Modification::Replace("dept".into(), vec![dept.to_string().into()])],
        }),
        Op::SetMail { id, tag } => m.apply(UpdateOp::Modify {
            dn: dn_of(*id),
            mods: vec![Modification::Replace("mail".into(), vec![format!("m{tag}@x").into()])],
        }),
        Op::Rename { id, new_id } => m.apply(UpdateOp::ModifyDn {
            dn: dn_of(*id),
            new_rdn: Rdn::new("cn", format!("p{new_id}")),
            new_superior: None,
        }),
    };
}

fn request() -> SearchRequest {
    SearchRequest::new(
        "o=xyz".parse().expect("valid dn"),
        Scope::Subtree,
        Filter::parse("(&(objectclass=person)(dept=1))").expect("valid filter"),
    )
}

/// Full comparison: DNs *and* entry contents must match the master.
fn assert_converged(m: &SyncMaster, req: &SearchRequest, replica: &ReplicaContent) {
    assert!(
        divergence(m.dit(), req, replica).is_empty(),
        "replica DNs diverge from master"
    );
    for e in replica.iter() {
        let master_entry = m.dit().get(e.dn()).expect("replica entry exists at master");
        assert_eq!(e, master_entry, "entry content diverged for {}", e.dn());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ReSync poll mode converges after every poll, at arbitrary poll
    /// boundaries within the op stream.
    #[test]
    fn resync_poll_converges(ops in prop::collection::vec(op(), 1..60), poll_every in 1usize..7) {
        let mut m = fresh_master();
        let req = request();
        let mut replica = ReplicaContent::new();
        let resp = m.resync(&req, ReSyncControl::poll(None)).expect("initial resync");
        let mut cookie = resp.cookie.expect("cookie issued");
        replica.apply_all(&resp.actions);
        assert_converged(&m, &req, &replica);

        for (i, o) in ops.iter().enumerate() {
            apply(&mut m, o);
            if (i + 1) % poll_every == 0 {
                let resp = m.resync(&req, ReSyncControl::poll(Some(cookie))).expect("poll");
                cookie = resp.cookie.expect("cookie issued");
                replica.apply_all(&resp.actions);
                assert_converged(&m, &req, &replica);
            }
        }
        let resp = m.resync(&req, ReSyncControl::poll(Some(cookie))).expect("final poll");
        replica.apply_all(&resp.actions);
        assert_converged(&m, &req, &replica);
    }

    /// ReSync persist mode: applying streamed notifications converges.
    #[test]
    fn resync_persist_converges(ops in prop::collection::vec(op(), 1..60)) {
        let mut m = fresh_master();
        let req = request();
        let mut replica = ReplicaContent::new();
        let (resp, rx) = m.resync_persist(&req, None).expect("initial persist");
        replica.apply_all(&resp.actions);

        for o in &ops {
            apply(&mut m, o);
        }
        for batch in rx.try_iter() {
            replica.apply_all(&batch.actions);
        }
        assert_converged(&m, &req, &replica);
    }

    /// Cookie-resume equivalence (the fault-free anchor for the chaos
    /// suite): a replica that polls after every few updates and a replica
    /// that polls once at the very end reach the *same* final content.
    /// Intermediate cookies are pure resumption points — where the poll
    /// boundaries fall changes traffic, never the fixpoint.
    #[test]
    fn many_small_polls_equal_one_big_poll(
        ops in prop::collection::vec(op(), 1..60),
        poll_every in 1usize..7,
    ) {
        let mut m = fresh_master();
        let req = request();

        // Both replicas start from the same initial load.
        let resp = m.resync(&req, ReSyncControl::poll(None)).expect("initial resync");
        let mut stepper = ReplicaContent::new();
        stepper.apply_all(&resp.actions);
        let mut stepper_cookie = resp.cookie.expect("cookie issued");

        let resp = m.resync(&req, ReSyncControl::poll(None)).expect("initial resync");
        let mut batcher = ReplicaContent::new();
        batcher.apply_all(&resp.actions);
        let batcher_cookie = resp.cookie.expect("cookie issued");

        for (i, o) in ops.iter().enumerate() {
            apply(&mut m, o);
            if (i + 1) % poll_every == 0 {
                let resp =
                    m.resync(&req, ReSyncControl::poll(Some(stepper_cookie))).expect("small poll");
                stepper_cookie = resp.cookie.expect("cookie issued");
                stepper.apply_all(&resp.actions);
            }
        }
        let resp =
            m.resync(&req, ReSyncControl::poll(Some(stepper_cookie))).expect("final small poll");
        stepper.apply_all(&resp.actions);

        let resp = m.resync(&req, ReSyncControl::poll(Some(batcher_cookie))).expect("big poll");
        batcher.apply_all(&resp.actions);

        let mut stepped: Vec<&Entry> = stepper.iter().collect();
        let mut batched: Vec<&Entry> = batcher.iter().collect();
        stepped.sort_by(|a, b| a.dn().cmp(b.dn()));
        batched.sort_by(|a, b| a.dn().cmp(b.dn()));
        prop_assert_eq!(stepped, batched, "poll granularity changed the fixpoint");
        assert_converged(&m, &req, &stepper);
    }

    /// Poll traffic never exceeds full reload (entry-PDU-wise the replica
    /// receives at most the changed set).
    #[test]
    fn resync_poll_traffic_bounded_by_reload(ops in prop::collection::vec(op(), 1..40)) {
        let mut m = fresh_master();
        let req = request();
        let resp = m.resync(&req, ReSyncControl::poll(None)).expect("initial resync");
        let cookie = resp.cookie.expect("cookie issued");
        for o in &ops {
            apply(&mut m, o);
        }
        let resp = m.resync(&req, ReSyncControl::poll(Some(cookie))).expect("poll");
        let t = resp.traffic();
        let full = m.dit().search(&req).len() as u64;
        prop_assert!(t.full_entries <= full + ops.len() as u64);
        // Deletes are DN-only.
        for a in &resp.actions {
            if let fbdr_resync::SyncAction::Delete(_) = a {
                prop_assert!(!a.carries_entry());
            }
        }
    }

    /// Every convergent baseline actually converges on random streams.
    #[test]
    fn baselines_converge(ops in prop::collection::vec(op(), 1..50), cycles in 1usize..4) {
        let req = request();
        let strategies: Vec<Box<dyn Synchronizer>> = vec![
            Box::new(FullReload),
            Box::new(RetainSync::default()),
            Box::new(TombstoneSync::default()),
            Box::new(ChangelogSync::default()),
        ];
        for mut s in strategies {
            let mut m = fresh_master();
            let mut replica = ReplicaContent::new();
            s.sync(m.dit(), &req, &mut replica);
            let chunk = ops.len().div_ceil(cycles);
            for part in ops.chunks(chunk.max(1)) {
                for o in part {
                    apply(&mut m, o);
                }
                s.sync(m.dit(), &req, &mut replica);
                prop_assert!(
                    divergence(m.dit(), &req, &replica).is_empty(),
                    "{} diverged", s.name()
                );
            }
        }
    }
}
