//! Map (de)serialization as sequences of pairs, for maps whose keys are
//! not strings (JSON object keys must be strings).

use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Serializes any map-like collection as a sequence of `(key, value)`
/// pairs.
pub(crate) fn serialize<'a, K, V, M, S>(map: &'a M, ser: S) -> Result<S::Ok, S::Error>
where
    &'a M: IntoIterator<Item = (&'a K, &'a V)>,
    K: Serialize + 'a,
    V: Serialize + 'a,
    S: Serializer,
{
    ser.collect_seq(map)
}

/// Deserializes a sequence of `(key, value)` pairs into any
/// `FromIterator` map.
pub(crate) fn deserialize<'de, K, V, M, D>(de: D) -> Result<M, D::Error>
where
    M: FromIterator<(K, V)>,
    K: Deserialize<'de>,
    V: Deserialize<'de>,
    D: Deserializer<'de>,
{
    let pairs = Vec::<(K, V)>::deserialize(de)?;
    Ok(pairs.into_iter().collect())
}
