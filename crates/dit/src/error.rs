//! Errors for DIT update operations.

use fbdr_ldap::Dn;
use std::error::Error;
use std::fmt;

/// Error returned by [`DitStore`](crate::DitStore) update operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DitError {
    /// The target entry does not exist.
    NoSuchEntry(Dn),
    /// An entry with that DN already exists.
    AlreadyExists(Dn),
    /// The entry's parent does not exist and the DN is not a registered
    /// suffix.
    NoParent(Dn),
    /// The operation requires a leaf entry but the target has children.
    NotLeaf(Dn),
    /// A modify targeted an attribute/value that is not present.
    NoSuchValue(Dn, String),
    /// Renaming would move the entry under itself.
    MoveUnderSelf(Dn),
}

impl fmt::Display for DitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DitError::NoSuchEntry(dn) => write!(f, "no such entry: {dn}"),
            DitError::AlreadyExists(dn) => write!(f, "entry already exists: {dn}"),
            DitError::NoParent(dn) => write!(f, "parent entry does not exist: {dn}"),
            DitError::NotLeaf(dn) => write!(f, "entry is not a leaf: {dn}"),
            DitError::NoSuchValue(dn, what) => write!(f, "no such value on {dn}: {what}"),
            DitError::MoveUnderSelf(dn) => write!(f, "cannot move entry under itself: {dn}"),
        }
    }
}

impl Error for DitError {}

/// Error from [`DitStore::import_ldif`](crate::DitStore::import_ldif).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// The LDIF text was malformed.
    Ldif(fbdr_ldap::ldif::LdifError),
    /// An entry could not be added to the store.
    Dit(DitError),
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::Ldif(e) => write!(f, "import failed: {e}"),
            ImportError::Dit(e) => write!(f, "import failed: {e}"),
        }
    }
}

impl Error for ImportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ImportError::Ldif(e) => Some(e),
            ImportError::Dit(e) => Some(e),
        }
    }
}
