#![warn(missing_docs)]
//! In-memory Directory Information Tree (DIT) store for the fbdr workspace.
//!
//! This crate is the *directory server substrate* the replication algorithms
//! run against. It provides:
//!
//! * [`DitStore`] — a hierarchical entry store with attribute indexes,
//!   LDAP-style update operations ([`UpdateOp`]) and indexed search
//!   evaluation for [`SearchRequest`]s.
//! * [`ChangeRecord`] / change sequence numbers ([`Csn`]) — an RFC-changelog
//!   style record of update operations (changed attributes only), used by
//!   the changelog-based synchronization baseline.
//! * [`Tombstone`]s — hidden markers for deleted entries, used by the
//!   tombstone-based synchronization baseline.
//! * [`NamingContext`] — the `(suffix, referrals…)` tuple of the LDAP
//!   distributed directory model (§2.3 of the paper).
//!
//! # Example
//!
//! ```
//! use fbdr_dit::DitStore;
//! use fbdr_ldap::{Entry, Filter, Scope, SearchRequest};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dit = DitStore::new();
//! dit.add_suffix("o=xyz".parse()?);
//! dit.add(Entry::new("o=xyz".parse()?).with("objectclass", "organization"))?;
//! dit.add(
//!     Entry::new("cn=John Doe,o=xyz".parse()?)
//!         .with("objectclass", "inetOrgPerson")
//!         .with("serialNumber", "045612"),
//! )?;
//!
//! let q = SearchRequest::new("o=xyz".parse()?, Scope::Subtree, Filter::parse("(serialNumber=0456*)")?);
//! assert_eq!(dit.search(&q).len(), 1);
//! # Ok(())
//! # }
//! ```

mod changelog;
mod context;
mod error;
mod index;
mod serde_util;
mod store;
mod update;

pub use changelog::{ChangeKind, ChangeRecord, Csn, Tombstone};
pub use context::NamingContext;
pub use error::{DitError, ImportError};
pub use store::DitStore;
pub use update::{diff_entries, Modification, UpdateOp};

pub use fbdr_ldap::{Dn, Entry, Filter, Scope, SearchRequest};
