//! Naming contexts — the unit of directory partitioning (§2.3).
//!
//! A naming context is a subtree of the DIT rooted at its *suffix* and
//! terminated by leaf entries or *referral objects* pointing at servers
//! holding subordinate naming contexts. Formally `C = (S, R1, …, Rn)`.

use fbdr_ldap::Dn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A naming context: suffix DN plus the DNs of its referral objects, each
/// labelled with the URL (server name) it refers to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NamingContext {
    suffix: Dn,
    /// `(referral DN, target server url)` pairs. Each referral DN is below
    /// the suffix and marks the root of a subordinate naming context held
    /// elsewhere.
    referrals: Vec<(Dn, String)>,
}

impl NamingContext {
    /// Creates a context with no referrals (a complete subtree).
    pub fn new(suffix: Dn) -> Self {
        NamingContext { suffix, referrals: Vec::new() }
    }

    /// Adds a referral object at `dn` pointing to `url`.
    ///
    /// # Panics
    ///
    /// Panics if `dn` is not strictly below the suffix — a referral object
    /// must live inside the context it delimits.
    pub fn with_referral(mut self, dn: Dn, url: impl Into<String>) -> Self {
        assert!(
            self.suffix.is_ancestor_of(&dn),
            "referral {dn} must be below suffix {}",
            self.suffix
        );
        self.referrals.push((dn, url.into()));
        self
    }

    /// The suffix (root DN) of the context.
    pub fn suffix(&self) -> &Dn {
        &self.suffix
    }

    /// The referral objects `(dn, url)`.
    pub fn referrals(&self) -> &[(Dn, String)] {
        &self.referrals
    }

    /// True when `dn` falls inside this context: at or below the suffix and
    /// not at or below any referral object.
    pub fn holds(&self, dn: &Dn) -> bool {
        self.suffix.is_ancestor_or_self_of(dn)
            && !self.referrals.iter().any(|(r, _)| r.is_ancestor_or_self_of(dn))
    }

    /// Referrals whose subtree intersects the subtree rooted at `base` —
    /// the referrals a subtree search from `base` must chase.
    pub fn referrals_under<'a>(&'a self, base: &'a Dn) -> impl Iterator<Item = &'a (Dn, String)> + 'a {
        self.referrals
            .iter()
            .filter(move |(r, _)| base.is_ancestor_or_self_of(r) || r.is_ancestor_of(base))
    }
}

impl fmt::Display for NamingContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C(\"{}\"", self.suffix)?;
        for (dn, url) in &self.referrals {
            write!(f, ", R(\"{dn}\" -> {url})")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    /// The hostA context of Figure 2: suffix o=xyz with referrals for the
    /// research and India subtrees.
    fn host_a() -> NamingContext {
        NamingContext::new(dn("o=xyz"))
            .with_referral(dn("ou=research,c=us,o=xyz"), "ldap://hostB")
            .with_referral(dn("c=in,o=xyz"), "ldap://hostC")
    }

    #[test]
    fn holds_excludes_referral_subtrees() {
        let c = host_a();
        assert!(c.holds(&dn("o=xyz")));
        assert!(c.holds(&dn("c=us,o=xyz")));
        assert!(!c.holds(&dn("ou=research,c=us,o=xyz")));
        assert!(!c.holds(&dn("cn=x,ou=research,c=us,o=xyz")));
        assert!(!c.holds(&dn("cn=y,c=in,o=xyz")));
        assert!(!c.holds(&dn("o=abc")));
    }

    #[test]
    fn referrals_under_base() {
        let c = host_a();
        let root = dn("o=xyz");
        assert_eq!(c.referrals_under(&root).count(), 2);
        let us = dn("c=us,o=xyz");
        let under_us: Vec<_> = c.referrals_under(&us).collect();
        assert_eq!(under_us.len(), 1);
        assert_eq!(under_us[0].1, "ldap://hostB");
        // A base *inside* a referral subtree also needs that referral.
        let inside = dn("cn=z,ou=research,c=us,o=xyz");
        assert_eq!(c.referrals_under(&inside).count(), 1);
    }

    #[test]
    #[should_panic(expected = "must be below suffix")]
    fn referral_outside_suffix_panics() {
        let _ = NamingContext::new(dn("o=xyz")).with_referral(dn("o=abc"), "ldap://x");
    }
}
