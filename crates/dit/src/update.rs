//! LDAP update operations.

use fbdr_ldap::{AttrName, AttrValue, Dn, Entry, Rdn};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One modification within a `Modify` operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Modification {
    /// Add values to an attribute (creating it if absent).
    AddValues(AttrName, Vec<AttrValue>),
    /// Delete specific values (the attribute goes when its last value does).
    DeleteValues(AttrName, Vec<AttrValue>),
    /// Delete an attribute entirely.
    DeleteAttr(AttrName),
    /// Replace all values of an attribute (empty list deletes it).
    Replace(AttrName, Vec<AttrValue>),
}

impl Modification {
    /// The attribute this modification touches.
    pub fn attr(&self) -> &AttrName {
        match self {
            Modification::AddValues(a, _)
            | Modification::DeleteValues(a, _)
            | Modification::DeleteAttr(a)
            | Modification::Replace(a, _) => a,
        }
    }
}

/// Computes the modifications that transform entry `old` into entry `new`
/// (same DN assumed): replaced/added attributes become [`Modification::Replace`],
/// removed attributes become [`Modification::DeleteAttr`]. Applying the
/// result to `old` via [`DitStore::modify`](crate::DitStore::modify)
/// yields `new` exactly.
///
/// ```
/// use fbdr_dit::{diff_entries, Modification};
/// use fbdr_ldap::Entry;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let old = Entry::new("cn=a,o=x".parse()?).with("mail", "old@x").with("fax", "1");
/// let new = Entry::new("cn=a,o=x".parse()?).with("mail", "new@x").with("tel", "2");
/// let mods = diff_entries(&old, &new);
/// assert_eq!(mods.len(), 3); // replace mail, delete fax, replace(add) tel
/// # Ok(())
/// # }
/// ```
pub fn diff_entries(old: &Entry, new: &Entry) -> Vec<Modification> {
    let mut mods = Vec::new();
    // Removed attributes.
    for (a, _) in old.attrs() {
        if !new.has_attr(a) {
            mods.push(Modification::DeleteAttr(a.clone()));
        }
    }
    // Added or changed attributes.
    for (a, vs) in new.attrs() {
        let same = old.has_attr(a)
            && old.values(a).count() == vs.len()
            && vs.iter().all(|v| old.has_value(a, v));
        if !same {
            mods.push(Modification::Replace(a.clone(), vs.iter().cloned().collect()));
        }
    }
    mods
}

/// An LDAP update operation against a [`DitStore`](crate::DitStore).
///
/// The four kinds mirror §2.2 of the paper: add, modify, delete and
/// modify DN (entry move/rename).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateOp {
    /// Add a new entry.
    Add(Entry),
    /// Delete a (leaf) entry.
    Delete(Dn),
    /// Modify attributes of an entry.
    Modify {
        /// Target entry.
        dn: Dn,
        /// Modifications applied in order.
        mods: Vec<Modification>,
    },
    /// Rename and/or move a (leaf) entry.
    ModifyDn {
        /// Current DN.
        dn: Dn,
        /// New RDN for the entry.
        new_rdn: Rdn,
        /// New parent; `None` keeps the current parent.
        new_superior: Option<Dn>,
    },
}

impl UpdateOp {
    /// The DN the operation targets (the old DN for renames).
    pub fn target(&self) -> &Dn {
        match self {
            UpdateOp::Add(e) => e.dn(),
            UpdateOp::Delete(dn) => dn,
            UpdateOp::Modify { dn, .. } => dn,
            UpdateOp::ModifyDn { dn, .. } => dn,
        }
    }
}

impl fmt::Display for UpdateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateOp::Add(e) => write!(f, "add {}", e.dn()),
            UpdateOp::Delete(dn) => write!(f, "delete {dn}"),
            UpdateOp::Modify { dn, mods } => write!(f, "modify {dn} ({} mods)", mods.len()),
            UpdateOp::ModifyDn { dn, new_rdn, new_superior } => match new_superior {
                Some(sup) => write!(f, "modifydn {dn} -> {new_rdn},{sup}"),
                None => write!(f, "modifydn {dn} -> rdn {new_rdn}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_dn_per_kind() {
        let dn: Dn = "cn=a,o=x".parse().unwrap();
        assert_eq!(UpdateOp::Delete(dn.clone()).target(), &dn);
        assert_eq!(UpdateOp::Add(Entry::new(dn.clone())).target(), &dn);
        let m = UpdateOp::Modify { dn: dn.clone(), mods: vec![] };
        assert_eq!(m.target(), &dn);
    }

    #[test]
    fn modification_attr() {
        let m = Modification::Replace("mail".into(), vec!["a@b".into()]);
        assert_eq!(m.attr().as_str(), "mail");
    }
}
