//! The DIT store: hierarchical entry storage, indexed search, updates.

use crate::changelog::{ChangeKind, ChangeRecord, Csn, Tombstone};
use crate::error::{DitError, ImportError};
use crate::index::Indexes;
use crate::update::{Modification, UpdateOp};
use fbdr_ldap::{AttrName, AttrValue, Comparison, Dn, Entry, Filter, Scope, SearchRequest};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Hierarchical map key: orders DNs root-first over normalized RDN
/// components ([`Dn::cmp_hierarchical`]), so that the subtree of a DN is
/// a contiguous key range in a `BTreeMap`. Wrapping the `Dn` itself (a
/// cheap refcounted clone) keeps lookups allocation-free — the previous
/// `Vec<String>` key cost one formatted string per RDN per probe.
#[derive(Debug, Clone, PartialEq, Eq)]
struct TreeKey(Dn);

impl Serialize for TreeKey {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.0.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for TreeKey {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Dn::deserialize(deserializer).map(TreeKey)
    }
}

impl Ord for TreeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp_hierarchical(&other.0)
    }
}

impl PartialOrd for TreeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn path_key(dn: &Dn) -> TreeKey {
    TreeKey(dn.clone())
}

/// An in-memory Directory Information Tree with attribute indexes, a
/// changelog and tombstones.
///
/// Entries may only be added under an existing parent or at a registered
/// suffix ([`DitStore::add_suffix`]). Deletes and renames require leaf
/// entries, matching LDAP semantics.
///
/// Every applied update produces a [`ChangeRecord`] with a monotonically
/// increasing [`Csn`]; the record is also appended to the store's changelog.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct DitStore {
    #[serde(with = "crate::serde_util")]
    entries: BTreeMap<TreeKey, Entry>,
    suffixes: Vec<Dn>,
    indexes: Indexes,
    csn: Csn,
    changelog: Vec<ChangeRecord>,
    tombstones: Vec<Tombstone>,
}

impl DitStore {
    /// Creates an empty store with no suffixes.
    pub fn new() -> Self {
        DitStore::default()
    }

    /// Registers a suffix: a DN at which a naming context may start without
    /// its parent existing in this store.
    pub fn add_suffix(&mut self, dn: Dn) {
        if !self.suffixes.contains(&dn) {
            self.suffixes.push(dn);
        }
    }

    /// Registered suffixes.
    pub fn suffixes(&self) -> &[Dn] {
        &self.suffixes
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current (latest applied) change sequence number.
    pub fn csn(&self) -> Csn {
        self.csn
    }

    /// The full changelog, oldest first.
    pub fn changelog(&self) -> &[ChangeRecord] {
        &self.changelog
    }

    /// Changelog records with CSN strictly greater than `since`.
    pub fn changelog_since(&self, since: Csn) -> &[ChangeRecord] {
        // CSNs are assigned 1,2,3… so record i has CSN i+1.
        let start = (since.0 as usize).min(self.changelog.len());
        &self.changelog[start..]
    }

    /// Tombstones of entries deleted after `since`.
    pub fn tombstones_since(&self, since: Csn) -> impl Iterator<Item = &Tombstone> {
        self.tombstones.iter().filter(move |t| t.csn > since)
    }

    /// Looks up an entry by DN.
    pub fn get(&self, dn: &Dn) -> Option<&Entry> {
        self.entries.get(&path_key(dn))
    }

    /// True if an entry exists at `dn`.
    pub fn contains(&self, dn: &Dn) -> bool {
        self.entries.contains_key(&path_key(dn))
    }

    /// True if `dn` has at least one child entry.
    pub fn has_children(&self, dn: &Dn) -> bool {
        self.entries
            .range((Bound::Excluded(path_key(dn)), Bound::Unbounded))
            .next()
            .is_some_and(|(k, _)| dn.is_ancestor_or_self_of(&k.0))
    }

    /// Iterates all entries in DN (hierarchical) order.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.values()
    }

    /// Iterates entries in the subtree rooted at `base` (including `base`).
    pub fn subtree(&self, base: &Dn) -> impl Iterator<Item = &Entry> {
        let base = base.clone();
        self.entries
            .range((Bound::Included(path_key(&base)), Bound::Unbounded))
            .take_while(move |(k, _)| base.is_ancestor_or_self_of(&k.0))
            .map(|(_, e)| e)
    }

    /// Iterates immediate children of `base`.
    pub fn children(&self, base: &Dn) -> impl Iterator<Item = &Entry> {
        let depth = base.depth() + 1;
        self.subtree(base).filter(move |e| e.dn().depth() == depth)
    }

    // ---------------------------------------------------------------
    // LDIF import / export
    // ---------------------------------------------------------------

    /// Exports the whole store (or a subtree) as LDIF content records, in
    /// hierarchical order (parents before children, so the output
    /// re-imports cleanly).
    pub fn export_ldif(&self, base: Option<&Dn>) -> String {
        let entries: Vec<Entry> = match base {
            Some(b) => self.subtree(b).cloned().collect(),
            None => self.iter().cloned().collect(),
        };
        fbdr_ldap::ldif::to_ldif(&entries)
    }

    /// Imports LDIF content records, registering each record whose parent
    /// is absent as a suffix (so arbitrary dumps load). Returns the number
    /// of entries added.
    ///
    /// # Errors
    ///
    /// Returns the first [`DitError`] (e.g. a duplicate DN); entries added
    /// before the failure remain.
    pub fn import_ldif(&mut self, text: &str) -> Result<usize, ImportError> {
        let entries = fbdr_ldap::ldif::parse_ldif(text).map_err(ImportError::Ldif)?;
        let mut added = 0;
        for e in entries {
            match e.dn().parent() {
                Some(p) if self.contains(&p) => {}
                _ => self.add_suffix(e.dn().clone()),
            }
            self.add(e).map_err(ImportError::Dit)?;
            added += 1;
        }
        Ok(added)
    }

    // ---------------------------------------------------------------
    // Updates
    // ---------------------------------------------------------------

    /// Applies an update operation.
    ///
    /// # Errors
    ///
    /// Returns a [`DitError`] (and leaves the store unchanged) when the
    /// operation's preconditions fail; see the individual operations.
    pub fn apply(&mut self, op: UpdateOp) -> Result<ChangeRecord, DitError> {
        match op {
            UpdateOp::Add(e) => self.add(e),
            UpdateOp::Delete(dn) => self.delete(&dn),
            UpdateOp::Modify { dn, mods } => self.modify(&dn, mods),
            UpdateOp::ModifyDn { dn, new_rdn, new_superior } => {
                self.modify_dn(&dn, new_rdn, new_superior)
            }
        }
    }

    /// Adds an entry.
    ///
    /// # Errors
    ///
    /// * [`DitError::AlreadyExists`] if the DN is taken.
    /// * [`DitError::NoParent`] if the parent is absent and the DN is not a
    ///   registered suffix.
    pub fn add(&mut self, entry: Entry) -> Result<ChangeRecord, DitError> {
        let dn = entry.dn().clone();
        if self.contains(&dn) {
            return Err(DitError::AlreadyExists(dn));
        }
        let is_suffix = self.suffixes.contains(&dn);
        if !is_suffix {
            match dn.parent() {
                Some(p) if self.contains(&p) => {}
                _ => return Err(DitError::NoParent(dn)),
            }
        }
        for (a, vs) in entry.attrs() {
            for v in vs {
                self.indexes.insert(a, v, &dn);
            }
        }
        let changes = entry
            .attrs()
            .map(|(a, vs)| (a.clone(), vs.iter().cloned().collect()))
            .collect();
        self.entries.insert(path_key(&dn), entry);
        Ok(self.record(dn, ChangeKind::Add, changes, None))
    }

    /// Deletes a leaf entry.
    ///
    /// # Errors
    ///
    /// * [`DitError::NoSuchEntry`] if absent.
    /// * [`DitError::NotLeaf`] if the entry has children.
    pub fn delete(&mut self, dn: &Dn) -> Result<ChangeRecord, DitError> {
        if !self.contains(dn) {
            return Err(DitError::NoSuchEntry(dn.clone()));
        }
        if self.has_children(dn) {
            return Err(DitError::NotLeaf(dn.clone()));
        }
        let entry = self.entries.remove(&path_key(dn)).expect("checked contains");
        for (a, vs) in entry.attrs() {
            for v in vs {
                self.indexes.remove(a, v, dn);
            }
        }
        let rec = self.record(dn.clone(), ChangeKind::Delete, Vec::new(), None);
        self.tombstones.push(Tombstone { dn: dn.clone(), csn: rec.csn });
        Ok(rec)
    }

    /// Modifies an entry's attributes.
    ///
    /// # Errors
    ///
    /// * [`DitError::NoSuchEntry`] if absent.
    /// * [`DitError::NoSuchValue`] when deleting a value/attribute that is
    ///   not present (the store is left unchanged).
    pub fn modify(&mut self, dn: &Dn, mods: Vec<Modification>) -> Result<ChangeRecord, DitError> {
        let key = path_key(dn);
        let Some(entry) = self.entries.get_mut(&key) else {
            return Err(DitError::NoSuchEntry(dn.clone()));
        };
        // Snapshot only the touched attributes, apply in place, and roll
        // the snapshots back on failure — copying the whole entry and
        // diffing every attribute against the index made modify cost
        // scale with entry size rather than with the change.
        let touched: Vec<AttrName> = {
            let mut t: Vec<AttrName> = mods.iter().map(|m| m.attr().clone()).collect();
            t.dedup();
            t
        };
        let before: Vec<(AttrName, Vec<AttrValue>)> = touched
            .iter()
            .map(|a| (a.clone(), entry.values(a).cloned().collect()))
            .collect();
        let mut failed = None;
        'apply: for m in &mods {
            match m {
                Modification::AddValues(a, vs) => {
                    for v in vs {
                        entry.add(a.clone(), v.clone());
                    }
                }
                Modification::DeleteValues(a, vs) => {
                    for v in vs {
                        if !entry.remove_value(a, v) {
                            failed = Some(DitError::NoSuchValue(dn.clone(), format!("{a}: {v}")));
                            break 'apply;
                        }
                    }
                }
                Modification::DeleteAttr(a) => {
                    if !entry.remove_attr(a) {
                        failed = Some(DitError::NoSuchValue(dn.clone(), a.to_string()));
                        break 'apply;
                    }
                }
                Modification::Replace(a, vs) => {
                    entry.replace(a.clone(), vs.iter().cloned());
                }
            }
        }
        if let Some(err) = failed {
            for (a, vals) in before {
                // An empty snapshot means the attribute did not exist.
                entry.replace(a, vals);
            }
            return Err(err);
        }
        for (a, old_vals) in &before {
            for v in old_vals {
                if !entry.has_value(a, v) {
                    self.indexes.remove(a, v, dn);
                }
            }
            for v in entry.values(a) {
                if !old_vals.contains(v) {
                    self.indexes.insert(a, v, dn);
                }
            }
        }
        let changes = touched
            .into_iter()
            .map(|a| {
                let vals: Vec<AttrValue> = entry.values(&a).cloned().collect();
                (a, vals)
            })
            .collect();
        Ok(self.record(dn.clone(), ChangeKind::Modify, changes, None))
    }

    /// Renames and/or moves a leaf entry. Implements `deleteOldRDN=TRUE`
    /// semantics: the old RDN value is removed from the entry's attributes
    /// and the new one added.
    ///
    /// # Errors
    ///
    /// * [`DitError::NoSuchEntry`] if the source is absent.
    /// * [`DitError::NotLeaf`] if the source has children.
    /// * [`DitError::AlreadyExists`] if the destination DN is taken.
    /// * [`DitError::NoParent`] if the new superior does not exist.
    /// * [`DitError::MoveUnderSelf`] if the new superior is under the source.
    pub fn modify_dn(
        &mut self,
        dn: &Dn,
        new_rdn: fbdr_ldap::Rdn,
        new_superior: Option<Dn>,
    ) -> Result<ChangeRecord, DitError> {
        if !self.contains(dn) {
            return Err(DitError::NoSuchEntry(dn.clone()));
        }
        if self.has_children(dn) {
            return Err(DitError::NotLeaf(dn.clone()));
        }
        let parent = match new_superior {
            Some(p) => {
                if dn.is_ancestor_or_self_of(&p) {
                    return Err(DitError::MoveUnderSelf(dn.clone()));
                }
                if !self.contains(&p) && !self.suffixes.contains(&p) {
                    return Err(DitError::NoParent(p));
                }
                p
            }
            None => dn.parent().ok_or_else(|| DitError::NoSuchEntry(dn.clone()))?,
        };
        let new_dn = parent.child(new_rdn.clone());
        if self.contains(&new_dn) {
            return Err(DitError::AlreadyExists(new_dn));
        }
        let mut entry = self.entries.remove(&path_key(dn)).expect("checked contains");
        // Index removal under the old DN.
        for (a, vs) in entry.attrs() {
            for v in vs {
                self.indexes.remove(a, v, dn);
            }
        }
        // deleteOldRDN: drop the old naming value, add the new one.
        if let Some(old_rdn) = dn.rdn() {
            entry.remove_value(old_rdn.attr(), old_rdn.value());
        }
        entry.add(new_rdn.attr().clone(), new_rdn.value().clone());
        entry.set_dn(new_dn.clone());
        for (a, vs) in entry.attrs() {
            for v in vs {
                self.indexes.insert(a, v, &new_dn);
            }
        }
        let changes = vec![(
            new_rdn.attr().clone(),
            entry.values(new_rdn.attr()).cloned().collect(),
        )];
        self.entries.insert(path_key(&new_dn), entry);
        Ok(self.record(dn.clone(), ChangeKind::ModifyDn, changes, Some(new_dn)))
    }

    fn record(
        &mut self,
        dn: Dn,
        kind: ChangeKind,
        changes: Vec<(AttrName, Vec<AttrValue>)>,
        new_dn: Option<Dn>,
    ) -> ChangeRecord {
        self.csn = self.csn.next();
        let rec = ChangeRecord { csn: self.csn, dn, kind, changes, new_dn };
        self.changelog.push(rec.clone());
        rec
    }

    // ---------------------------------------------------------------
    // Search
    // ---------------------------------------------------------------

    /// Evaluates a search request, returning matching entries projected on
    /// the requested attributes, in DN order.
    pub fn search(&self, req: &SearchRequest) -> Vec<Entry> {
        self.search_refs(req).into_iter().map(|e| req.attrs().project(e)).collect()
    }

    /// Evaluates a search request and sorts the results server-side per
    /// an RFC 2891 sort control (the paper's §2.2 example of an LDAP
    /// control).
    pub fn search_sorted(&self, req: &SearchRequest, keys: &[fbdr_ldap::SortKey]) -> Vec<Entry> {
        let mut out = self.search(req);
        fbdr_ldap::sort_entries(&mut out, keys);
        out
    }

    /// Evaluates a search request, returning only the DNs of matches.
    pub fn search_dns(&self, req: &SearchRequest) -> Vec<Dn> {
        self.search_refs(req).into_iter().map(|e| e.dn().clone()).collect()
    }

    /// Number of entries matching a filter anywhere in the store — the
    /// "size" estimate used by filter selection (§6.2).
    pub fn count_matching(&self, filter: &Filter) -> usize {
        match self.plan(filter) {
            Some(cands) => cands
                .iter()
                .filter(|dn| self.get(dn).is_some_and(|e| filter.matches(e)))
                .count(),
            None => self.iter().filter(|e| filter.matches(e)).count(),
        }
    }

    /// Streams every entry matching a search request to `f`, answering
    /// through the indexed candidate plan where possible, **without**
    /// cloning entries or DNs and without materializing a result vector.
    ///
    /// Visit order is unspecified (the planned path visits candidates in
    /// index order, the scan fallback in hierarchical order) — callers
    /// needing DN order should collect and sort, or use
    /// [`DitStore::search`]. This is the bulk-enumeration seam the sync
    /// layer's session installation uses: it interns ids straight off the
    /// borrowed entries instead of paying for an owned result set.
    pub fn for_each_match(&self, req: &SearchRequest, mut f: impl FnMut(&Entry)) {
        match req.scope() {
            Scope::Base => {
                if let Some(e) = self.get(req.base()) {
                    if req.filter().matches(e) {
                        f(e);
                    }
                }
            }
            Scope::OneLevel => {
                for e in self.children(req.base()) {
                    if req.filter().matches(e) {
                        f(e);
                    }
                }
            }
            Scope::Subtree => match self.plan(req.filter()) {
                Some(cands) => {
                    for dn in cands.iter() {
                        if !req.scope().contains(req.base(), dn) {
                            continue;
                        }
                        if let Some(e) = self.get(dn) {
                            if req.filter().matches(e) {
                                f(e);
                            }
                        }
                    }
                }
                None => {
                    for e in self.subtree(req.base()) {
                        if req.filter().matches(e) {
                            f(e);
                        }
                    }
                }
            },
        }
    }

    fn search_refs(&self, req: &SearchRequest) -> Vec<&Entry> {
        match req.scope() {
            Scope::Base => {
                return self
                    .get(req.base())
                    .filter(|e| req.filter().matches(e))
                    .into_iter()
                    .collect();
            }
            Scope::OneLevel => {
                return self.children(req.base()).filter(|e| req.filter().matches(e)).collect();
            }
            Scope::Subtree => {}
        }
        if let Some(cands) = self.plan(req.filter()) {
            let mut out: Vec<&Entry> = cands
                .iter()
                .filter(|dn| req.scope().contains(req.base(), dn))
                .filter_map(|dn| self.get(dn))
                .filter(|e| req.filter().matches(e))
                .collect();
            out.sort_by_key(|e| path_key(e.dn()));
            out
        } else {
            self.subtree(req.base()).filter(|e| req.filter().matches(e)).collect()
        }
    }

    /// Index-based candidate planning: returns a superset of the DNs whose
    /// entries can match `filter`, or `None` when the index cannot help
    /// (e.g. negations) and a scan is required. Equality plans borrow the
    /// index's posting set directly (the common point-query shape copies
    /// nothing until projection).
    fn plan(&self, filter: &Filter) -> Option<Cow<'_, std::collections::BTreeSet<Dn>>> {
        match filter {
            Filter::Pred(p) => match p.comparison() {
                Comparison::Eq(v) => Some(
                    self.indexes
                        .lookup_eq(p.attr(), v)
                        .map_or_else(|| Cow::Owned(Default::default()), Cow::Borrowed),
                ),
                Comparison::Ge(v) => {
                    Some(Cow::Owned(self.indexes.lookup_range(p.attr(), Some(v), None)))
                }
                Comparison::Le(v) => {
                    Some(Cow::Owned(self.indexes.lookup_range(p.attr(), None, Some(v))))
                }
                Comparison::Present => Some(Cow::Owned(self.indexes.lookup_present(p.attr()))),
                Comparison::Substring(pat) => pat
                    .initial()
                    .map(|init| Cow::Owned(self.indexes.lookup_prefix(p.attr(), init))),
            },
            Filter::And(fs) => {
                // Any one conjunct's candidates form a superset of the
                // answer; take the smallest available.
                fs.iter().filter_map(|f| self.plan(f)).min_by_key(|s| s.len())
            }
            Filter::Or(fs) => {
                let mut out = std::collections::BTreeSet::new();
                for f in fs {
                    out.extend(self.plan(f)?.into_owned());
                }
                Some(Cow::Owned(out))
            }
            Filter::Not(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbdr_ldap::Rdn;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn base_store() -> DitStore {
        let mut s = DitStore::new();
        s.add_suffix(dn("o=xyz"));
        s.add(Entry::new(dn("o=xyz")).with("objectclass", "organization")).unwrap();
        s.add(Entry::new(dn("c=us,o=xyz")).with("objectclass", "country")).unwrap();
        s.add(Entry::new(dn("c=in,o=xyz")).with("objectclass", "country")).unwrap();
        for (cn, sn, c, mail) in [
            ("John Doe", "045612", "us", "john@us.xyz.com"),
            ("Jane Roe", "045699", "us", "jane@us.xyz.com"),
            ("Ravi Rao", "120001", "in", "ravi@in.xyz.com"),
        ] {
            s.add(
                Entry::new(dn(&format!("cn={cn},c={c},o=xyz")))
                    .with("objectclass", "inetOrgPerson")
                    .with("cn", cn)
                    .with("serialNumber", sn)
                    .with("mail", mail),
            )
            .unwrap();
        }
        s
    }

    fn sub(base: &str, f: &str) -> SearchRequest {
        SearchRequest::new(dn(base), Scope::Subtree, Filter::parse(f).unwrap())
    }

    #[test]
    fn add_requires_parent_or_suffix() {
        let mut s = DitStore::new();
        s.add_suffix(dn("o=xyz"));
        assert!(matches!(
            s.add(Entry::new(dn("cn=x,o=xyz"))),
            Err(DitError::NoParent(_))
        ));
        s.add(Entry::new(dn("o=xyz"))).unwrap();
        s.add(Entry::new(dn("cn=x,o=xyz"))).unwrap();
        assert!(matches!(
            s.add(Entry::new(dn("cn=x,o=xyz"))),
            Err(DitError::AlreadyExists(_))
        ));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn delete_leaf_only() {
        let mut s = base_store();
        assert!(matches!(s.delete(&dn("c=us,o=xyz")), Err(DitError::NotLeaf(_))));
        s.delete(&dn("cn=John Doe,c=us,o=xyz")).unwrap();
        assert!(!s.contains(&dn("cn=John Doe,c=us,o=xyz")));
        assert!(matches!(
            s.delete(&dn("cn=John Doe,c=us,o=xyz")),
            Err(DitError::NoSuchEntry(_))
        ));
        // Tombstone recorded.
        assert_eq!(s.tombstones_since(Csn::ZERO).count(), 1);
    }

    #[test]
    fn search_by_equality_uses_index() {
        let s = base_store();
        let hits = s.search(&sub("o=xyz", "(serialNumber=045612)"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].dn(), &dn("cn=John Doe,c=us,o=xyz"));
    }

    #[test]
    fn search_by_prefix() {
        let s = base_store();
        assert_eq!(s.search(&sub("o=xyz", "(serialNumber=0456*)")).len(), 2);
        assert_eq!(s.search(&sub("c=in,o=xyz", "(serialNumber=0456*)")).len(), 0);
        assert_eq!(s.search(&sub("o=xyz", "(serialNumber=12*)")).len(), 1);
    }

    #[test]
    fn for_each_match_agrees_with_search_dns() {
        let s = base_store();
        let reqs = [
            sub("o=xyz", "(serialNumber=045612)"),
            sub("o=xyz", "(serialNumber=0456*)"),
            sub("o=xyz", "(!(mail=*))"),
            sub("c=us,o=xyz", "(objectclass=inetOrgPerson)"),
            SearchRequest::new(dn("o=xyz"), Scope::OneLevel, Filter::match_all()),
            SearchRequest::new(dn("c=us,o=xyz"), Scope::Base, Filter::match_all()),
        ];
        for req in &reqs {
            let mut streamed: Vec<Dn> = Vec::new();
            s.for_each_match(req, |e| streamed.push(e.dn().clone()));
            streamed.sort();
            let mut expect = s.search_dns(req);
            expect.sort();
            assert_eq!(streamed, expect, "request {req:?}");
        }
    }

    #[test]
    fn search_scope_variants() {
        let s = base_store();
        let all = SearchRequest::new(dn("o=xyz"), Scope::Subtree, Filter::match_all());
        assert_eq!(s.search(&all).len(), 6);
        let one = SearchRequest::new(dn("o=xyz"), Scope::OneLevel, Filter::match_all());
        assert_eq!(s.search(&one).len(), 2); // c=us, c=in
        let base = SearchRequest::new(dn("c=us,o=xyz"), Scope::Base, Filter::match_all());
        assert_eq!(s.search(&base).len(), 1);
    }

    #[test]
    fn search_with_negation_scans() {
        let s = base_store();
        let hits = s.search(&sub("o=xyz", "(&(objectclass=inetOrgPerson)(!(mail=john@us.xyz.com)))"));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn search_matches_brute_force() {
        let s = base_store();
        for f in [
            "(objectclass=*)",
            "(serialNumber>=45650)",
            "(serialNumber<=45650)",
            "(|(cn=John Doe)(cn=Ravi Rao))",
            "(&(objectclass=inetOrgPerson)(mail=*xyz.com))",
            "(cn=J*)",
        ] {
            let req = sub("o=xyz", f);
            let brute: Vec<Dn> = s
                .iter()
                .filter(|e| req.matches(e))
                .map(|e| e.dn().clone())
                .collect();
            let mut got = s.search_dns(&req);
            got.sort();
            let mut want = brute;
            want.sort();
            assert_eq!(got, want, "mismatch for {f}");
        }
    }

    #[test]
    fn modify_updates_index() {
        let mut s = base_store();
        let target = dn("cn=John Doe,c=us,o=xyz");
        s.modify(
            &target,
            vec![Modification::Replace("mail".into(), vec!["doe@us.xyz.com".into()])],
        )
        .unwrap();
        assert_eq!(s.search(&sub("o=xyz", "(mail=john@us.xyz.com)")).len(), 0);
        assert_eq!(s.search(&sub("o=xyz", "(mail=doe@us.xyz.com)")).len(), 1);
    }

    #[test]
    fn modify_failure_leaves_store_unchanged() {
        let mut s = base_store();
        let target = dn("cn=John Doe,c=us,o=xyz");
        let before = s.get(&target).unwrap().clone();
        let err = s.modify(
            &target,
            vec![
                Modification::Replace("mail".into(), vec!["new@x".into()]),
                Modification::DeleteValues("fax".into(), vec!["123".into()]),
            ],
        );
        assert!(matches!(err, Err(DitError::NoSuchValue(_, _))));
        assert_eq!(s.get(&target).unwrap(), &before);
        assert_eq!(s.search(&sub("o=xyz", "(mail=john@us.xyz.com)")).len(), 1);
    }

    #[test]
    fn modify_dn_renames_and_reindexes() {
        let mut s = base_store();
        let old = dn("cn=John Doe,c=us,o=xyz");
        let rec = s
            .modify_dn(&old, Rdn::new("cn", "John M Doe"), None)
            .unwrap();
        assert_eq!(rec.kind, ChangeKind::ModifyDn);
        assert_eq!(rec.new_dn.as_ref().unwrap(), &dn("cn=John M Doe,c=us,o=xyz"));
        assert!(!s.contains(&old));
        let e = s.get(&dn("cn=John M Doe,c=us,o=xyz")).unwrap();
        // deleteOldRDN applied.
        assert!(!e.has_value(&"cn".into(), &"John Doe".into()));
        assert!(e.has_value(&"cn".into(), &"John M Doe".into()));
        // Index follows the rename.
        assert_eq!(s.search(&sub("o=xyz", "(cn=John M Doe)")).len(), 1);
        assert_eq!(s.search(&sub("o=xyz", "(cn=John Doe)")).len(), 0);
    }

    #[test]
    fn modify_dn_move_to_new_superior() {
        let mut s = base_store();
        let old = dn("cn=Ravi Rao,c=in,o=xyz");
        s.modify_dn(&old, Rdn::new("cn", "Ravi Rao"), Some(dn("c=us,o=xyz"))).unwrap();
        assert!(s.contains(&dn("cn=Ravi Rao,c=us,o=xyz")));
        // Subtree membership changed.
        assert_eq!(s.search(&sub("c=in,o=xyz", "(cn=Ravi Rao)")).len(), 0);
        assert_eq!(s.search(&sub("c=us,o=xyz", "(cn=Ravi Rao)")).len(), 1);
    }

    #[test]
    fn changelog_accumulates_in_csn_order() {
        let mut s = base_store();
        let n0 = s.changelog().len();
        let c0 = s.csn();
        s.delete(&dn("cn=Ravi Rao,c=in,o=xyz")).unwrap();
        s.modify(
            &dn("cn=Jane Roe,c=us,o=xyz"),
            vec![Modification::Replace("mail".into(), vec!["j@x".into()])],
        )
        .unwrap();
        assert_eq!(s.changelog().len(), n0 + 2);
        let since = s.changelog_since(c0);
        assert_eq!(since.len(), 2);
        assert!(since[0].csn < since[1].csn);
        assert_eq!(since[0].kind, ChangeKind::Delete);
        // Delete records carry no attributes — the changelog limitation.
        assert!(since[0].changes.is_empty());
    }

    #[test]
    fn count_matching() {
        let s = base_store();
        assert_eq!(s.count_matching(&Filter::parse("(objectclass=inetOrgPerson)").unwrap()), 3);
        assert_eq!(s.count_matching(&Filter::parse("(serialNumber=0456*)").unwrap()), 2);
        assert_eq!(s.count_matching(&Filter::parse("(!(objectclass=*))").unwrap()), 0);
    }

    #[test]
    fn sorted_search_control() {
        let s = base_store();
        let req = sub("o=xyz", "(objectclass=inetOrgPerson)");
        let sorted = s.search_sorted(&req, &[fbdr_ldap::SortKey::descending("serialNumber")]);
        let serials: Vec<String> = sorted
            .iter()
            .map(|e| e.first_value(&"serialNumber".into()).unwrap().raw().to_owned())
            .collect();
        assert_eq!(serials, ["120001", "045699", "045612"]);
    }

    #[test]
    fn store_serde_round_trip_preserves_behaviour() {
        let mut s = base_store();
        s.delete(&dn("cn=Ravi Rao,c=in,o=xyz")).unwrap();
        let json = serde_json::to_string(&s).expect("store serializes");
        let restored: DitStore = serde_json::from_str(&json).expect("store deserializes");
        assert_eq!(restored.len(), s.len());
        assert_eq!(restored.csn(), s.csn());
        assert_eq!(restored.changelog().len(), s.changelog().len());
        assert_eq!(
            restored.tombstones_since(Csn::ZERO).count(),
            s.tombstones_since(Csn::ZERO).count()
        );
        // Indexed searches behave identically after the round trip.
        for f in ["(serialNumber=0456*)", "(serialNumber>=45650)", "(mail=*xyz.com)"] {
            let q = sub("o=xyz", f);
            assert_eq!(restored.search_dns(&q), s.search_dns(&q), "{f}");
        }
    }

    #[test]
    fn ldif_export_import_round_trip() {
        let s = base_store();
        let text = s.export_ldif(None);
        let mut restored = DitStore::new();
        let n = restored.import_ldif(&text).unwrap();
        assert_eq!(n, s.len());
        assert_eq!(restored.len(), s.len());
        for e in s.iter() {
            assert_eq!(restored.get(e.dn()), Some(e));
        }
        // Searches behave identically on the restored store.
        let q = sub("o=xyz", "(serialNumber=0456*)");
        assert_eq!(restored.search(&q).len(), s.search(&q).len());
    }

    #[test]
    fn ldif_subtree_export() {
        let s = base_store();
        let base = dn("c=us,o=xyz");
        let text = s.export_ldif(Some(&base));
        let mut restored = DitStore::new();
        assert_eq!(restored.import_ldif(&text).unwrap(), 3);
        assert!(restored.contains(&dn("cn=John Doe,c=us,o=xyz")));
        assert!(!restored.contains(&dn("c=in,o=xyz")));
    }

    #[test]
    fn ldif_import_duplicate_fails() {
        let s = base_store();
        let text = s.export_ldif(None);
        let mut target = base_store();
        assert!(matches!(
            target.import_ldif(&text),
            Err(ImportError::Dit(DitError::AlreadyExists(_)))
        ));
    }

    #[test]
    fn subtree_and_children_iteration() {
        let s = base_store();
        assert_eq!(s.subtree(&dn("c=us,o=xyz")).count(), 3);
        assert_eq!(s.children(&dn("o=xyz")).count(), 2);
        assert_eq!(s.subtree(&dn("o=none")).count(), 0);
    }
}
