//! Attribute indexes: equality, ordering (range) and prefix (substring).
//!
//! Every attribute is indexed two ways:
//!
//! * `text` — normalized value text in lexicographic order, serving equality
//!   lookups and `initial` substring (prefix) scans;
//! * `ord` — values in [`AttrValue`] order (numeric-aware), serving `>=` /
//!   `<=` range scans with semantics identical to predicate evaluation.

use fbdr_ldap::{AttrName, AttrValue, Dn};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::ops::Bound;

#[derive(Debug, Default, Clone, Serialize, Deserialize)]
struct AttrIndex {
    text: BTreeMap<String, BTreeSet<Dn>>,
    #[serde(with = "crate::serde_util")]
    ord: BTreeMap<AttrValue, BTreeSet<Dn>>,
}

/// Index over all attributes of a store.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub(crate) struct Indexes {
    #[serde(with = "crate::serde_util")]
    by_attr: HashMap<AttrName, AttrIndex>,
}

impl Indexes {
    pub(crate) fn insert(&mut self, attr: &AttrName, value: &AttrValue, dn: &Dn) {
        let idx = self.by_attr.entry(attr.clone()).or_default();
        idx.text.entry(value.normalized().to_owned()).or_default().insert(dn.clone());
        idx.ord.entry(value.clone()).or_default().insert(dn.clone());
    }

    pub(crate) fn remove(&mut self, attr: &AttrName, value: &AttrValue, dn: &Dn) {
        if let Some(idx) = self.by_attr.get_mut(attr) {
            if let Some(set) = idx.text.get_mut(value.normalized()) {
                set.remove(dn);
                if set.is_empty() {
                    idx.text.remove(value.normalized());
                }
            }
            if let Some(set) = idx.ord.get_mut(value) {
                set.remove(dn);
                if set.is_empty() {
                    idx.ord.remove(value);
                }
            }
        }
    }

    /// DNs of entries having `attr = value` (normalized equality),
    /// borrowed straight from the index — `None` when no entry carries the
    /// value (callers treat it as the empty set).
    pub(crate) fn lookup_eq(&self, attr: &AttrName, value: &AttrValue) -> Option<&BTreeSet<Dn>> {
        self.by_attr.get(attr).and_then(|i| i.text.get(value.normalized()))
    }

    /// DNs of entries having a value of `attr` starting with `prefix`
    /// (normalized). A superset check for substring predicates with an
    /// `initial` component. An empty prefix matches every value, so it
    /// short-circuits to a presence lookup instead of walking (and
    /// `starts_with`-testing) every key in the text map.
    pub(crate) fn lookup_prefix(&self, attr: &AttrName, prefix: &str) -> BTreeSet<Dn> {
        if prefix.is_empty() {
            return self.lookup_present(attr);
        }
        let mut out = BTreeSet::new();
        if let Some(i) = self.by_attr.get(attr) {
            for (_k, dns) in i
                .text
                .range::<str, _>((Bound::Included(prefix), Bound::Unbounded))
                .take_while(|(k, _)| k.starts_with(prefix))
            {
                out.extend(dns.iter().cloned());
            }
        }
        out
    }

    /// DNs of entries having a value in `[ge, le]` (either bound
    /// optional). The result is a *superset* of the matching entries
    /// (callers verify with full predicate evaluation). Bounds dispatch on
    /// their type, mirroring typed range predicates:
    ///
    /// * integer-typed bounds scan the `ord` map (where all integers sort
    ///   numerically before all non-integers), widened to the neighbouring
    ///   integer because alternate spellings of the bound value ("0500"
    ///   for 500) sort before its canonical spelling — yet every spelling
    ///   of `i` sorts strictly after every spelling of `i - 1`;
    /// * string-typed bounds scan the `text` map, which is exactly the
    ///   lexicographic order the predicate uses.
    pub(crate) fn lookup_range(
        &self,
        attr: &AttrName,
        ge: Option<&AttrValue>,
        le: Option<&AttrValue>,
    ) -> BTreeSet<Dn> {
        let mut parts: Vec<BTreeSet<Dn>> = Vec::new();
        if let Some(v) = ge {
            parts.push(self.lookup_one_bound(attr, v, true));
        }
        if let Some(v) = le {
            parts.push(self.lookup_one_bound(attr, v, false));
        }
        match parts.len() {
            0 => self.lookup_present(attr),
            1 => parts.pop().expect("len checked"),
            _ => {
                let b = parts.pop().expect("len checked");
                let a = parts.pop().expect("len checked");
                a.intersection(&b).cloned().collect()
            }
        }
    }

    /// Candidates for a single `>=` (`is_lower`) or `<=` bound.
    fn lookup_one_bound(&self, attr: &AttrName, bound: &AttrValue, is_lower: bool) -> BTreeSet<Dn> {
        let mut out = BTreeSet::new();
        let Some(i) = self.by_attr.get(attr) else {
            return out;
        };
        match bound.as_int() {
            Some(n) => {
                // Integer-typed: only integer values can match; widen by
                // one to cover alternate spellings of the bound value.
                let (lo, hi) = if is_lower {
                    let b = if n > i64::MIN {
                        Bound::Excluded(AttrValue::new((n - 1).to_string()))
                    } else {
                        Bound::Unbounded
                    };
                    (b, Bound::Unbounded)
                } else {
                    let b = if n < i64::MAX {
                        Bound::Excluded(AttrValue::new((n + 1).to_string()))
                    } else {
                        Bound::Unbounded
                    };
                    (Bound::Unbounded, b)
                };
                for (_v, dns) in i.ord.range((lo, hi)) {
                    out.extend(dns.iter().cloned());
                }
            }
            None => {
                // String-typed: the text map is keyed by normalized text
                // in exactly the predicate's lexicographic order.
                let key = bound.normalized();
                let range: (Bound<&str>, Bound<&str>) = if is_lower {
                    (Bound::Included(key), Bound::Unbounded)
                } else {
                    (Bound::Unbounded, Bound::Included(key))
                };
                for (_k, dns) in i.text.range::<str, _>(range) {
                    out.extend(dns.iter().cloned());
                }
            }
        }
        out
    }

    /// DNs of entries where `attr` is present.
    pub(crate) fn lookup_present(&self, attr: &AttrName) -> BTreeSet<Dn> {
        let mut out = BTreeSet::new();
        if let Some(i) = self.by_attr.get(attr) {
            for dns in i.text.values() {
                out.extend(dns.iter().cloned());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dn(s: &str) -> Dn {
        s.parse().unwrap()
    }

    fn sample() -> Indexes {
        let mut ix = Indexes::default();
        let sn: AttrName = "serialNumber".into();
        ix.insert(&sn, &"045612".into(), &dn("cn=a,o=x"));
        ix.insert(&sn, &"045699".into(), &dn("cn=b,o=x"));
        ix.insert(&sn, &"120000".into(), &dn("cn=c,o=x"));
        ix
    }

    #[test]
    fn eq_lookup() {
        let ix = sample();
        let got = ix.lookup_eq(&"serialnumber".into(), &"045612".into()).expect("indexed");
        assert_eq!(got.len(), 1);
        assert!(got.contains(&dn("cn=a,o=x")));
        assert!(ix.lookup_eq(&"serialnumber".into(), &"999".into()).is_none());
        assert!(ix.lookup_eq(&"mail".into(), &"x".into()).is_none());
    }

    #[test]
    fn prefix_lookup() {
        let ix = sample();
        assert_eq!(ix.lookup_prefix(&"serialnumber".into(), "0456").len(), 2);
        assert_eq!(ix.lookup_prefix(&"serialnumber".into(), "04561").len(), 1);
        assert_eq!(ix.lookup_prefix(&"serialnumber".into(), "9").len(), 0);
        assert_eq!(ix.lookup_prefix(&"serialnumber".into(), "").len(), 3);
    }

    #[test]
    fn range_lookup_is_numeric_for_ints() {
        let ix = sample();
        // 45612 and 45699 and 120000 numerically.
        let ge = AttrValue::new("45650");
        assert_eq!(ix.lookup_range(&"serialnumber".into(), Some(&ge), None).len(), 2);
        let le = AttrValue::new("45650");
        assert_eq!(ix.lookup_range(&"serialnumber".into(), None, Some(&le)).len(), 1);
        assert_eq!(ix.lookup_range(&"serialnumber".into(), None, None).len(), 3);
    }

    #[test]
    fn present_lookup_and_removal() {
        let mut ix = sample();
        assert_eq!(ix.lookup_present(&"serialnumber".into()).len(), 3);
        ix.remove(&"serialNumber".into(), &"045612".into(), &dn("cn=a,o=x"));
        assert_eq!(ix.lookup_present(&"serialnumber".into()).len(), 2);
        assert!(ix.lookup_eq(&"serialnumber".into(), &"045612".into()).is_none());
    }

    #[test]
    fn multiple_dns_per_value() {
        let mut ix = Indexes::default();
        ix.insert(&"dept".into(), &"2406".into(), &dn("cn=a,o=x"));
        ix.insert(&"dept".into(), &"2406".into(), &dn("cn=b,o=x"));
        assert_eq!(ix.lookup_eq(&"dept".into(), &"2406".into()).unwrap().len(), 2);
        ix.remove(&"dept".into(), &"2406".into(), &dn("cn=a,o=x"));
        assert_eq!(ix.lookup_eq(&"dept".into(), &"2406".into()).unwrap().len(), 1);
    }
}
