//! Change sequence numbers, changelog records and tombstones.
//!
//! The paper (§5.2) contrasts ReSync's per-session history against two
//! widespread alternatives for tracking directory changes:
//!
//! * **changelogs** — the directory records, per update, *only the changed
//!   attributes* (draft-good-ldap-changelog). A changelog cannot always
//!   decide whether a deleted entry was inside the content of a filter:
//!   if an entry is first modified out of the content and then deleted, the
//!   delete record carries no attributes to test the filter against.
//! * **tombstones** — a hidden entry that keeps the *state but not the
//!   data* of a deleted entry, so every deleted DN must be shipped to every
//!   consumer.
//!
//! Both are implemented here so the resync crate can quantify the
//! difference.

use fbdr_ldap::{AttrName, AttrValue, Dn};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A change sequence number: totally ordered, monotonically increasing per
/// store. CSN 0 means "before any change".
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Csn(pub u64);

impl Csn {
    /// The zero CSN (before all changes).
    pub const ZERO: Csn = Csn(0);

    /// The next CSN.
    pub fn next(self) -> Csn {
        Csn(self.0 + 1)
    }
}

impl fmt::Display for Csn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "csn:{}", self.0)
    }
}

/// The kind of update a change record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChangeKind {
    /// Entry added.
    Add,
    /// Entry deleted.
    Delete,
    /// Attributes modified.
    Modify,
    /// Entry renamed / moved (modify DN).
    ModifyDn,
}

impl fmt::Display for ChangeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ChangeKind::Add => "add",
            ChangeKind::Delete => "delete",
            ChangeKind::Modify => "modify",
            ChangeKind::ModifyDn => "modifydn",
        })
    }
}

/// One changelog record, in the style of draft-good-ldap-changelog:
/// the target DN, the kind of change, and *only* the changed attribute
/// values — deliberately not the full entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChangeRecord {
    /// Sequence number of this change.
    pub csn: Csn,
    /// DN the operation targeted (the *old* DN for renames).
    pub dn: Dn,
    /// What kind of operation it was.
    pub kind: ChangeKind,
    /// For `Modify`: the attribute/value pairs that were added or removed
    /// (attribute name, new values after the change). For `Add`: all
    /// attributes of the new entry. Empty for `Delete`.
    pub changes: Vec<(AttrName, Vec<AttrValue>)>,
    /// For `ModifyDn`: the new DN.
    pub new_dn: Option<Dn>,
}

impl ChangeRecord {
    /// Estimated wire size in bytes (cost model for changelog shipping).
    pub fn estimated_size(&self) -> usize {
        let mut n = self.dn.to_string().len() + 12;
        for (a, vs) in &self.changes {
            for v in vs {
                n += a.as_str().len() + v.raw().len() + 4;
            }
        }
        if let Some(d) = &self.new_dn {
            n += d.to_string().len();
        }
        n
    }
}

/// A tombstone: the DN and deletion CSN of a deleted entry — no attribute
/// data, which is exactly why tombstone-based sync must ship every deleted
/// DN to every consumer (§5.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tombstone {
    /// The deleted entry's DN.
    pub dn: Dn,
    /// When it was deleted.
    pub csn: Csn,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csn_ordering_and_next() {
        assert!(Csn::ZERO < Csn(1));
        assert_eq!(Csn(4).next(), Csn(5));
        assert_eq!(Csn::ZERO.next(), Csn(1));
    }

    #[test]
    fn change_record_size_counts_changes() {
        let rec = ChangeRecord {
            csn: Csn(1),
            dn: "cn=a,o=xyz".parse().unwrap(),
            kind: ChangeKind::Modify,
            changes: vec![("mail".into(), vec!["a@b.c".into()])],
            new_dn: None,
        };
        let empty = ChangeRecord { changes: vec![], ..rec.clone() };
        assert!(rec.estimated_size() > empty.estimated_size());
    }
}
