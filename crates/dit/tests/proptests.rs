//! Property tests for the DIT store: indexed search must agree with a
//! brute-force scan after any sequence of updates, and the changelog must
//! replay to the same state.

use fbdr_dit::{diff_entries, ChangeKind, DitStore, Modification, UpdateOp};
use fbdr_ldap::{Dn, Entry, Filter, Rdn, Scope, SearchRequest};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Add { id: usize, dept: u8, serial: u16 },
    Delete { id: usize },
    SetDept { id: usize, dept: u8 },
    Rename { id: usize, new_id: usize },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..16, 0u8..5, 0u16..1000).prop_map(|(id, dept, serial)| Op::Add { id, dept, serial }),
        (0usize..16).prop_map(|id| Op::Delete { id }),
        (0usize..16, 0u8..5).prop_map(|(id, dept)| Op::SetDept { id, dept }),
        (0usize..16, 0usize..16).prop_map(|(id, new_id)| Op::Rename { id, new_id }),
    ]
}

fn dn_of(id: usize) -> Dn {
    format!("cn=p{id},o=xyz").parse().expect("valid dn")
}

fn fresh() -> DitStore {
    let mut d = DitStore::new();
    d.add_suffix("o=xyz".parse().expect("valid dn"));
    d.add(Entry::new("o=xyz".parse().expect("valid dn"))).expect("add root");
    d
}

fn apply(d: &mut DitStore, op: &Op) {
    let _ = match op {
        Op::Add { id, dept, serial } => d.apply(UpdateOp::Add(
            Entry::new(dn_of(*id))
                .with("objectclass", "person")
                .with("dept", &dept.to_string())
                .with("serialNumber", &format!("{serial:06}")),
        )),
        Op::Delete { id } => d.apply(UpdateOp::Delete(dn_of(*id))),
        Op::SetDept { id, dept } => d.apply(UpdateOp::Modify {
            dn: dn_of(*id),
            mods: vec![Modification::Replace("dept".into(), vec![dept.to_string().into()])],
        }),
        Op::Rename { id, new_id } => d.apply(UpdateOp::ModifyDn {
            dn: dn_of(*id),
            new_rdn: Rdn::new("cn", format!("p{new_id}")),
            new_superior: None,
        }),
    };
}

fn queries() -> Vec<SearchRequest> {
    let filters = [
        "(objectclass=person)",
        "(dept=2)",
        "(serialNumber=0001*)",
        "(serialNumber>=500)",
        "(serialNumber<=300)",
        "(|(dept=1)(dept=3))",
        "(&(objectclass=person)(!(dept=0)))",
        "(cn=p1*)",
        "(cn>=p1)",
        "(cn<=p12)",
        "(&(cn>=p1)(cn<=p5))",
    ];
    filters
        .iter()
        .map(|f| {
            SearchRequest::new(
                "o=xyz".parse().expect("valid dn"),
                Scope::Subtree,
                Filter::parse(f).expect("valid filter"),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Indexed search results equal a brute-force scan, after any op mix.
    #[test]
    fn search_equals_brute_force(ops in prop::collection::vec(op(), 0..60)) {
        let mut d = fresh();
        for o in &ops {
            apply(&mut d, o);
        }
        for req in queries() {
            let mut got = d.search_dns(&req);
            got.sort();
            let mut want: Vec<Dn> = d
                .iter()
                .filter(|e| req.matches(e))
                .map(|e| e.dn().clone())
                .collect();
            want.sort();
            prop_assert_eq!(got, want, "index/scan mismatch for {}", req);
        }
    }

    /// count_matching equals the brute-force count.
    #[test]
    fn count_matching_is_exact(ops in prop::collection::vec(op(), 0..60)) {
        let mut d = fresh();
        for o in &ops {
            apply(&mut d, o);
        }
        for req in queries() {
            let got = d.count_matching(req.filter());
            let want = d.iter().filter(|e| req.filter().matches(e)).count();
            prop_assert_eq!(got, want, "count mismatch for {}", req.filter());
        }
    }

    /// The changelog's CSNs increase strictly and deletes produce
    /// tombstones with matching CSNs.
    #[test]
    fn changelog_csn_monotone(ops in prop::collection::vec(op(), 0..60)) {
        let mut d = fresh();
        for o in &ops {
            apply(&mut d, o);
        }
        let mut last = fbdr_dit::Csn::ZERO;
        for rec in d.changelog() {
            prop_assert!(rec.csn > last);
            last = rec.csn;
        }
        let delete_csns: Vec<_> = d
            .changelog()
            .iter()
            .filter(|r| r.kind == ChangeKind::Delete)
            .map(|r| r.csn)
            .collect();
        let tombstone_csns: Vec<_> =
            d.tombstones_since(fbdr_dit::Csn::ZERO).map(|t| t.csn).collect();
        prop_assert_eq!(delete_csns, tombstone_csns);
    }

    /// `diff_entries(old, new)` applied to `old` yields exactly `new`.
    #[test]
    fn diff_entries_round_trip(
        old_attrs in prop::collection::vec(("[a-d]", prop::collection::vec("[0-9a-c]{1,3}", 1..3)), 0..4),
        new_attrs in prop::collection::vec(("[a-d]", prop::collection::vec("[0-9a-c]{1,3}", 1..3)), 0..4),
    ) {
        let mut d = fresh();
        let dn: Dn = "cn=t,o=xyz".parse().expect("dn");
        let mut old = Entry::new(dn.clone());
        for (a, vs) in &old_attrs {
            for v in vs {
                old.add(a.as_str(), v.as_str());
            }
        }
        let mut new = Entry::new(dn.clone());
        for (a, vs) in &new_attrs {
            for v in vs {
                new.add(a.as_str(), v.as_str());
            }
        }
        d.add(old.clone()).expect("add");
        let mods = diff_entries(&old, &new);
        if mods.is_empty() {
            prop_assert_eq!(&old, &new);
        } else {
            d.modify(&dn, mods).expect("diff mods are valid");
            prop_assert_eq!(d.get(&dn).expect("entry exists"), &new);
        }
    }

    /// Parent links stay intact: every entry except suffixes has a parent.
    #[test]
    fn tree_structure_invariant(ops in prop::collection::vec(op(), 0..60)) {
        let mut d = fresh();
        for o in &ops {
            apply(&mut d, o);
        }
        let suffix: Dn = "o=xyz".parse().expect("valid dn");
        for e in d.iter() {
            if e.dn() != &suffix {
                let p = e.dn().parent().expect("non-suffix entries have parents");
                prop_assert!(d.contains(&p), "orphan entry {}", e.dn());
            }
        }
    }
}
