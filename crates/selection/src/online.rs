//! Incremental, budgeted online filter selection.
//!
//! The paper's §6 selector recomputes the stored filter set in a
//! day-boundary *revolution*: a full candidate re-rank over the whole
//! statistics table, which is both a latency cliff and an adaptation gap
//! (a flash crowd mid-day serves stale filters for hours, then pays an
//! install storm at the boundary). [`OnlineSelector`] replaces the batch
//! recompute with a continuous loop:
//!
//! * [`observe`](OnlineSelector::observe) credits a decayed benefit to
//!   the query's generalizations and marks them *touched* — O(rules) per
//!   query, no ranking.
//! * Every `step_every` queries, [`step`](OnlineSelector::step) re-ranks
//!   only the **consideration set** — candidates touched since the last
//!   step, the stored set, and a capped carry-over of recent near-misses
//!   — through the same greedy benefit/size core the batch selector uses,
//!   then performs at most `move_budget` promote/evict moves. Work is
//!   O(changed candidates) per step, never O(all candidates) per query;
//!   the `fbdr_selection_revolve_moves` histogram pins the bound.
//! * *Hysteresis* keeps an incumbent stored filter unless a challenger
//!   clearly beats it, and `min_dwell_steps` gives fresh installs time to
//!   pay off — together they absorb the flapping that makes per-query
//!   evolution (§6.2, [`EvolutionSelector`](crate::EvolutionSelector))
//!   unsuitable when every install costs a content transfer.
//! * Benefit is *net of update-propagation cost*, in the spirit of
//!   interest-based propagation (Endris et al.): keeping a filter
//!   installed costs ReSync traffic proportional to its size times the
//!   master's observed update pressure, so under heavy churn a
//!   marginally-hot large region is no longer worth storing.
//!
//! With an unlimited move budget, zero hysteresis, no decay and no update
//! weighting, one [`step`](OnlineSelector::step) reproduces the batch
//! [`FilterSelector::select`](crate::FilterSelector::select) exactly —
//! the equivalence property `tests/online_equivalence.rs` checks.

use crate::generalize::Generalizer;
use crate::greedy::{candidate_key, greedy_pick, Scored};
use fbdr_ldap::SearchRequest;
use fbdr_obs::{event, span, Obs};
use fbdr_replica::FilterReplica;
use fbdr_resync::{SyncError, SyncMaster, SyncTraffic};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Rescale point for the lazy-decay trick: when the global scale passes
/// this, every stored weight is renormalized once (rare, amortized O(1)).
const RESCALE_AT: f64 = 1e12;

/// Configuration for the online selector.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Replica entry budget: stored filters' total estimated size must
    /// stay within it (the paper's replica size knob).
    pub entry_budget: usize,
    /// Queries between budgeted revolution steps (the online analogue of
    /// the paper's revolution interval `R`, typically 100× smaller).
    pub step_every: u64,
    /// Maximum promote + evict moves per step. This is the knob that
    /// bounds revolution work and install churn; `usize::MAX` recovers
    /// batch behaviour.
    pub move_budget: usize,
    /// A stored filter displaced by ranking is only evicted when the
    /// weakest incoming challenger beats its ratio by this fraction
    /// (0.25 = challenger must be 25% better). 0 disables hysteresis.
    pub hysteresis: f64,
    /// Per-step multiplicative benefit decay ∈ (0, 1]; 1.0 disables
    /// decay (benefits become all-time hit counts, as in the batch
    /// selector between revolutions).
    pub decay: f64,
    /// Weight of the update-propagation cost in net benefit. A stored
    /// filter of size `s` is charged `upd_weight × s × pressure / N`
    /// benefit units, where `pressure` is the decayed per-step master
    /// update count and `N` the directory size. 0 disables the charge.
    pub upd_weight: f64,
    /// Steps a fresh install is immune to eviction (lets its content
    /// load pay off before the ranking may swap it back out).
    pub min_dwell_steps: u64,
    /// Near-miss candidates carried into the next step's consideration
    /// set even if untouched — budget-starved risers are not forgotten.
    pub pending_cap: usize,
    /// Upper bound on candidates tracked; beyond it the bottom quartile
    /// by benefit is pruned (never the stored set).
    pub max_candidates: usize,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            entry_budget: 5000,
            step_every: 100,
            move_budget: 4,
            hysteresis: 0.25,
            decay: 0.9,
            upd_weight: 0.25,
            min_dwell_steps: 3,
            pending_cap: 64,
            max_candidates: 4096,
        }
    }
}

impl OnlineConfig {
    /// The batch-equivalent ablation: unlimited moves, no hysteresis, no
    /// dwell, no decay, no update charge. One [`OnlineSelector::step`]
    /// under this configuration reproduces
    /// [`FilterSelector::select`](crate::FilterSelector::select) on the
    /// same observations — the property the equivalence proptest pins.
    pub fn unbudgeted(entry_budget: usize) -> Self {
        OnlineConfig {
            entry_budget,
            move_budget: usize::MAX,
            hysteresis: 0.0,
            decay: 1.0,
            upd_weight: 0.0,
            min_dwell_steps: 0,
            ..OnlineConfig::default()
        }
    }
}

#[derive(Debug)]
struct OnlineCandidate {
    request: SearchRequest,
    /// Scaled benefit: effective benefit = `weight / scale`. Crediting
    /// adds the *current* scale, so one global multiplication per step
    /// decays every candidate without touching any of them.
    weight: f64,
    /// Lazily computed entry count at the master.
    size: Option<usize>,
}

/// Outcome of one budgeted step.
#[derive(Debug, Clone, Default)]
pub struct StepReport {
    /// Filters promoted into the replica this step.
    pub promoted: Vec<SearchRequest>,
    /// Filters evicted from the replica this step.
    pub evicted: Vec<SearchRequest>,
    /// Moves performed (promotions + evictions), ≤ `move_budget`.
    pub moves: usize,
    /// Candidates ranked this step (the consideration set, *not* the
    /// whole candidate table).
    pub considered: usize,
    /// Content-load traffic for the promotions.
    pub traffic: SyncTraffic,
}

/// Cumulative accounting for an online-selection run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OnlineReport {
    /// Budgeted steps performed.
    pub steps: u64,
    /// Filters installed (each cost a content load).
    pub installs: u64,
    /// Filters evicted.
    pub evictions: u64,
    /// Largest consideration set any step ranked.
    pub max_considered: usize,
    /// Largest move count any step performed.
    pub max_moves: usize,
    /// Total content-load traffic.
    pub traffic: SyncTraffic,
}

/// Incremental, budgeted online revolution: the stored filter set tracks
/// the workload continuously, a few moves at a time, instead of being
/// recomputed wholesale at day boundaries. See the module docs for the
/// mechanism and [`OnlineConfig`] for the knobs.
#[derive(Debug)]
pub struct OnlineSelector {
    config: OnlineConfig,
    generalizers: Vec<Box<dyn Generalizer + Send>>,
    candidates: HashMap<String, OnlineCandidate>,
    /// Candidates credited since the last step.
    touched: HashSet<String>,
    /// Near-miss carry-over from the last step.
    pending: HashSet<String>,
    /// Filters this selector installed, with the step they landed in;
    /// statically configured filters are never touched.
    managed: HashMap<String, u64>,
    queries_seen: u64,
    steps: u64,
    /// Global decay scale (see [`OnlineCandidate::weight`]).
    scale: f64,
    /// Decayed master updates per step (the update-pressure estimate
    /// behind the net-benefit charge).
    update_pressure: f64,
    last_ops_applied: u64,
    report: OnlineReport,
    obs: Obs,
}

impl OnlineSelector {
    /// Creates a selector with the given generalization rules.
    pub fn new(config: OnlineConfig, generalizers: Vec<Box<dyn Generalizer + Send>>) -> Self {
        OnlineSelector {
            config,
            generalizers,
            candidates: HashMap::new(),
            touched: HashSet::new(),
            pending: HashSet::new(),
            managed: HashMap::new(),
            queries_seen: 0,
            steps: 0,
            scale: 1.0,
            update_pressure: 0.0,
            last_ops_applied: 0,
            report: OnlineReport::default(),
            obs: Obs::off(),
        }
    }

    /// Attaches observability: every step records its move count into the
    /// `fbdr_selection_revolve_moves` histogram and its consideration-set
    /// size into `fbdr_selection_step_considered`, increments
    /// `fbdr_selection_online_{steps,promotions,evictions}_total`, and
    /// emits `selection.online_{step,promote,evict}` trace events.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The observability handle this selector records through.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The configuration this selector runs under.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// Queries observed so far.
    pub fn queries_seen(&self) -> u64 {
        self.queries_seen
    }

    /// Budgeted steps performed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of candidates currently tracked.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Number of filters currently installed by this selector.
    pub fn managed_count(&self) -> usize {
        self.managed.len()
    }

    /// Cumulative churn/traffic report.
    pub fn report(&self) -> OnlineReport {
        self.report
    }

    /// Observes one user query: generalizes it and credits a (decayed)
    /// benefit to every candidate that would have answered it. Amortized
    /// O(generalization rules) — no ranking, no sizing, no moves.
    pub fn observe(&mut self, query: &SearchRequest) {
        self.queries_seen += 1;
        for g in &self.generalizers {
            for cand in g.generalize(query) {
                let key = candidate_key(&cand);
                let entry = self
                    .candidates
                    .entry(key.clone())
                    .or_insert(OnlineCandidate { request: cand, weight: 0.0, size: None });
                entry.weight += self.scale;
                self.touched.insert(key);
            }
        }
        if self.candidates.len() > self.config.max_candidates {
            self.prune();
        }
    }

    /// True when a budgeted step is due (every `step_every` queries).
    pub fn step_due(&self) -> bool {
        self.queries_seen > 0 && self.queries_seen.is_multiple_of(self.config.step_every)
    }

    /// Performs one budgeted revolution step now: ranks the consideration
    /// set (touched ∪ pending ∪ stored) through the shared greedy core,
    /// then applies at most `move_budget` promote/evict moves against the
    /// replica, gated by hysteresis and dwell.
    ///
    /// # Errors
    ///
    /// Propagates [`SyncError`] from installing filters at the master.
    pub fn step(
        &mut self,
        master: &mut SyncMaster,
        replica: &mut FilterReplica,
    ) -> Result<StepReport, SyncError> {
        let _span = span!(self.obs, "selection", "online_step");
        self.steps += 1;

        // Update-pressure estimate: decayed master ops per step, read
        // from the counters the master already keeps.
        let ops = master.ops_applied();
        let delta = ops.saturating_sub(self.last_ops_applied);
        self.last_ops_applied = ops;
        self.update_pressure = self.update_pressure * self.config.decay + delta as f64;

        // Decay every benefit with one multiplication: effective benefit
        // is weight/scale, so growing the scale shrinks them all while
        // preserving relative order — untouched candidates cannot rise.
        self.scale /= self.config.decay;
        if self.scale > RESCALE_AT {
            let s = self.scale;
            for c in self.candidates.values_mut() {
                c.weight /= s;
            }
            self.scale = 1.0;
        }

        // The consideration set: only candidates whose standing can have
        // changed (credited since the last step), plus the stored set and
        // the carried near-misses. Never the whole candidate table.
        let mut consider: HashSet<String> = std::mem::take(&mut self.touched);
        consider.extend(self.pending.drain());
        consider.extend(self.managed.keys().cloned());

        let budget = self.config.entry_budget;
        let dit_len = master.dit().len().max(1) as f64;
        let charge_per_entry =
            self.config.upd_weight * self.update_pressure / dit_len;
        let mut scored: Vec<Scored> = Vec::new();
        let mut ratios: HashMap<String, f64> = HashMap::new();
        for key in &consider {
            let Some(c) = self.candidates.get_mut(key) else { continue };
            let benefit = c.weight / self.scale;
            if benefit <= 0.0 {
                continue;
            }
            let size =
                *c.size.get_or_insert_with(|| master.dit().count_matching(c.request.filter()));
            if size == 0 || size > budget {
                continue;
            }
            // Net benefit: query hits minus the ReSync cost of keeping
            // the region fresh under the observed update pressure.
            let net = benefit - charge_per_entry * size as f64;
            if net <= 0.0 {
                continue; // admission floor: not worth its update traffic
            }
            let ratio = net / size as f64;
            ratios.insert(key.clone(), ratio);
            scored.push(Scored {
                key: key.clone(),
                request: c.request.clone(),
                ratio,
                size,
            });
        }
        let considered = scored.len();
        let target = greedy_pick(scored, budget);
        let target_keys: HashSet<&str> = target.iter().map(|s| s.key.as_str()).collect();

        let mut report = StepReport { considered, ..StepReport::default() };

        // Entry accounting for the selector-owned set: installs may only
        // land in budget room actually freed — a hysteresis-kept
        // incumbent blocks the challenger that would displace it.
        let mut managed_sizes: HashMap<String, usize> = HashMap::new();
        for key in self.managed.keys() {
            let size = match self.candidates.get_mut(key) {
                Some(c) => *c
                    .size
                    .get_or_insert_with(|| master.dit().count_matching(c.request.filter())),
                None => 0,
            };
            managed_sizes.insert(key.clone(), size);
        }
        let mut used: usize = managed_sizes.values().sum();

        // Evictions first (worst ratio first), so a displacing install
        // never transiently overflows the entry budget.
        let current: Vec<SearchRequest> = replica.filters().map(|(r, _)| r.clone()).collect();
        let current_keys: HashSet<String> = current.iter().map(candidate_key).collect();
        let mut evictable: Vec<(String, f64)> = self
            .managed
            .iter()
            .filter(|(k, installed_at)| {
                !target_keys.contains(k.as_str())
                    && self.steps.saturating_sub(**installed_at) >= self.config.min_dwell_steps
            })
            .map(|(k, _)| (k.clone(), ratios.get(k).copied().unwrap_or(0.0)))
            .collect();
        evictable.sort_by(|a, b| {
            a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then_with(|| a.0.cmp(&b.0))
        });
        let installs: Vec<&Scored> =
            target.iter().filter(|s| !current_keys.contains(&s.key)).collect();
        // The weakest incoming challenger: what a displaced incumbent is
        // actually being traded against under the hysteresis gate.
        let weakest_install = installs.last().map(|s| s.ratio);
        let over_budget = used > budget;

        let move_budget = self.config.move_budget;
        let mut moves = 0usize;
        for (key, evict_ratio) in evictable {
            if moves >= move_budget {
                break;
            }
            // Hysteresis: a live incumbent stays unless the trade is
            // clearly favourable (or the stored set must shed entries).
            if self.config.hysteresis > 0.0 && evict_ratio > 0.0 && !over_budget {
                match weakest_install {
                    Some(w) if w > evict_ratio * (1.0 + self.config.hysteresis) => {}
                    _ => continue,
                }
            }
            let Some(c) = self.candidates.get(&key) else {
                self.managed.remove(&key);
                continue;
            };
            let request = c.request.clone();
            replica.remove_filter(master, &request);
            self.managed.remove(&key);
            used = used.saturating_sub(managed_sizes.get(&key).copied().unwrap_or(0));
            moves += 1;
            event!(self.obs, "selection", "online_evict", filter = key.as_str());
            report.evicted.push(request);
        }
        for s in installs {
            if moves >= move_budget {
                break;
            }
            if used + s.size > budget {
                continue; // room still held by a hysteresis-kept incumbent
            }
            let t = replica.install_filter(master, s.request.clone())?;
            self.managed.insert(s.key.clone(), self.steps);
            used += s.size;
            moves += 1;
            event!(
                self.obs,
                "selection",
                "online_promote",
                filter = s.key.as_str(),
                load_entries = t.full_entries,
            );
            report.traffic.absorb(&t);
            report.promoted.push(s.request.clone());
        }
        report.moves = moves;

        // Carry the best-ranked uninstalled targets (budget-starved this
        // step) and near-misses into the next consideration set.
        self.pending = target
            .iter()
            .filter(|s| !self.managed.contains_key(&s.key))
            .take(self.config.pending_cap)
            .map(|s| s.key.clone())
            .collect();

        self.report.steps += 1;
        self.report.installs += report.promoted.len() as u64;
        self.report.evictions += report.evicted.len() as u64;
        self.report.max_considered = self.report.max_considered.max(considered);
        self.report.max_moves = self.report.max_moves.max(moves);
        self.report.traffic.absorb(&report.traffic);
        if self.obs.is_active() {
            let reg = self.obs.registry();
            reg.histogram("fbdr_selection_revolve_moves").record(moves as u64);
            reg.histogram("fbdr_selection_step_considered").record(considered as u64);
            reg.counter("fbdr_selection_online_steps_total").inc();
            reg.counter("fbdr_selection_online_promotions_total")
                .add(report.promoted.len() as u64);
            reg.counter("fbdr_selection_online_evictions_total")
                .add(report.evicted.len() as u64);
        }
        event!(
            self.obs,
            "selection",
            "online_step",
            step = self.steps,
            considered = considered,
            moves = moves,
            promoted = report.promoted.len(),
            evicted = report.evicted.len(),
        );
        Ok(report)
    }

    /// Prunes the bottom quartile of candidates by benefit, never
    /// dropping the stored set.
    fn prune(&mut self) {
        let mut weights: Vec<f64> = self.candidates.values().map(|c| c.weight).collect();
        weights.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let cutoff = weights[weights.len() / 4];
        let managed = &self.managed;
        self.candidates.retain(|k, c| c.weight > cutoff || managed.contains_key(k));
        self.touched.retain(|k| self.candidates.contains_key(k));
        self.pending.retain(|k| self.candidates.contains_key(k));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generalize::ValuePrefix;
    use crate::{FilterSelector, SelectorConfig};
    use fbdr_ldap::{Entry, Filter};

    fn master() -> SyncMaster {
        let mut m = SyncMaster::new();
        m.dit_mut().add_suffix("o=xyz".parse().unwrap());
        m.dit_mut().add(Entry::new("o=xyz".parse().unwrap())).unwrap();
        // Four 10-entry serial clusters.
        for (t, pre) in [("a", "0456"), ("b", "1200"), ("c", "3300"), ("d", "7700")] {
            for i in 0..10 {
                m.dit_mut()
                    .add(
                        Entry::new(format!("cn={t}{i},o=xyz").parse().unwrap())
                            .with("objectclass", "person")
                            .with("serialNumber", &format!("{pre}0{i}")),
                    )
                    .unwrap();
            }
        }
        m
    }

    fn query(sn: &str) -> SearchRequest {
        SearchRequest::from_root(Filter::parse(&format!("(serialNumber={sn})")).unwrap())
    }

    fn gens() -> Vec<Box<dyn Generalizer + Send>> {
        vec![Box::new(ValuePrefix::new("serialNumber", vec![4]))]
    }

    #[test]
    fn step_installs_hot_region() {
        let mut m = master();
        let mut replica = FilterReplica::new(0);
        let mut s = OnlineSelector::new(
            OnlineConfig { entry_budget: 10, ..OnlineConfig::default() },
            gens(),
        );
        for i in 0..5 {
            s.observe(&query(&format!("04560{i}")));
        }
        let rep = s.step(&mut m, &mut replica).unwrap();
        assert_eq!(rep.promoted.len(), 1);
        assert_eq!(rep.moves, 1);
        assert!(replica.try_answer(&query("045609")).is_some());
        assert_eq!(s.managed_count(), 1);
    }

    #[test]
    fn move_budget_bounds_each_step() {
        let mut m = master();
        let mut replica = FilterReplica::new(0);
        let mut s = OnlineSelector::new(
            OnlineConfig {
                entry_budget: 40,
                move_budget: 1,
                min_dwell_steps: 0,
                ..OnlineConfig::default()
            },
            gens(),
        );
        // All four clusters are hot; budget fits all four, but each step
        // may only move once.
        for pre in ["0456", "1200", "3300", "7700"] {
            for i in 0..3 {
                s.observe(&query(&format!("{pre}0{i}")));
            }
        }
        let r1 = s.step(&mut m, &mut replica).unwrap();
        assert_eq!(r1.moves, 1, "budget of one move per step");
        assert_eq!(replica.filter_count(), 1);
        // Pending carry-over keeps the starved risers warm: subsequent
        // steps finish the job one move at a time without new queries.
        for _ in 0..3 {
            s.step(&mut m, &mut replica).unwrap();
        }
        assert_eq!(replica.filter_count(), 4);
        assert_eq!(s.report().max_moves, 1);
    }

    #[test]
    fn hysteresis_resists_flapping() {
        let run = |hysteresis: f64, min_dwell_steps: u64| {
            let mut m = master();
            let mut replica = FilterReplica::new(0);
            let mut s = OnlineSelector::new(
                OnlineConfig {
                    entry_budget: 10, // fits exactly one cluster
                    move_budget: 4,
                    step_every: 4,
                    decay: 0.5,
                    upd_weight: 0.0,
                    hysteresis,
                    min_dwell_steps,
                    ..OnlineConfig::default()
                },
                gens(),
            );
            // Alternate the hot cluster every 4 queries — the adversarial
            // pattern that makes per-query evolution churn.
            for round in 0..16 {
                let pre = if round % 2 == 0 { "0456" } else { "1200" };
                for i in 0..4 {
                    s.observe(&query(&format!("{pre}0{i}")));
                }
                if s.step_due() {
                    s.step(&mut m, &mut replica).unwrap();
                }
            }
            s.report().installs
        };
        let nervous = run(0.0, 0);
        let damped = run(1.0, 2);
        assert!(
            damped < nervous,
            "hysteresis must cut flip-flop installs: {damped} vs {nervous}"
        );
        assert!(damped <= 2, "a damped selector settles: {damped} installs");
    }

    #[test]
    fn update_pressure_vetoes_churny_region() {
        let mut m = master();
        let mut replica = FilterReplica::new(0);
        let mut s = OnlineSelector::new(
            OnlineConfig {
                entry_budget: 10,
                upd_weight: 50.0,
                ..OnlineConfig::default()
            },
            gens(),
        );
        // Heavy master churn between steps makes every region's net
        // benefit negative under a strong update weight.
        for i in 0..3 {
            s.observe(&query(&format!("04560{i}")));
        }
        for i in 0..30 {
            m.apply(fbdr_dit::UpdateOp::Modify {
                dn: format!("cn=a{},o=xyz", i % 10).parse().unwrap(),
                mods: vec![fbdr_dit::Modification::Replace(
                    "telephoneNumber".into(),
                    vec![format!("555-{i:04}").into()],
                )],
            })
            .unwrap();
        }
        let rep = s.step(&mut m, &mut replica).unwrap();
        assert!(rep.promoted.is_empty(), "net benefit must veto the install");
        // With no update charge the same stats install immediately.
        let mut s2 = OnlineSelector::new(
            OnlineConfig { entry_budget: 10, upd_weight: 0.0, ..OnlineConfig::default() },
            gens(),
        );
        for i in 0..3 {
            s2.observe(&query(&format!("04560{i}")));
        }
        let rep2 = s2.step(&mut m, &mut replica).unwrap();
        assert_eq!(rep2.promoted.len(), 1);
    }

    #[test]
    fn decay_swaps_to_the_new_hot_set() {
        let mut m = master();
        let mut replica = FilterReplica::new(0);
        let mut s = OnlineSelector::new(
            OnlineConfig {
                entry_budget: 10,
                decay: 0.5,
                hysteresis: 0.25,
                min_dwell_steps: 1,
                ..OnlineConfig::default()
            },
            gens(),
        );
        for i in 0..6 {
            s.observe(&query(&format!("04560{i}")));
        }
        s.step(&mut m, &mut replica).unwrap();
        assert!(replica.try_answer(&query("045600")).is_some());
        // The workload moves; the old region's decayed benefit loses to
        // the new one within a few steps.
        for _ in 0..4 {
            for i in 0..6 {
                s.observe(&query(&format!("12000{i}")));
            }
            s.step(&mut m, &mut replica).unwrap();
        }
        assert!(replica.try_answer(&query("120005")).is_some());
        assert!(replica.try_answer(&query("045600")).is_none(), "stale region evicted");
    }

    #[test]
    fn unbudgeted_step_matches_batch_select() {
        let mut m = master();
        let gens_b = gens();
        let mut batch = FilterSelector::new(
            SelectorConfig {
                revolution_interval: u64::MAX,
                entry_budget: 20,
                max_candidates: 4096,
            },
            gens_b,
        );
        let mut online = OnlineSelector::new(OnlineConfig::unbudgeted(20), gens());
        for (pre, n) in [("0456", 7), ("1200", 5), ("3300", 2), ("7700", 1)] {
            for i in 0..n {
                let q = query(&format!("{pre}0{i}"));
                batch.observe(&q);
                online.observe(&q);
            }
        }
        let batch_set: HashSet<String> =
            batch.select(m.dit()).iter().map(candidate_key).collect();
        let mut replica = FilterReplica::new(0);
        online.step(&mut m, &mut replica).unwrap();
        let online_set: HashSet<String> =
            replica.filters().map(|(r, _)| candidate_key(&r)).collect();
        assert_eq!(batch_set, online_set);
    }

    #[test]
    fn pruning_caps_candidates_but_keeps_managed() {
        let mut m = master();
        let mut replica = FilterReplica::new(0);
        let mut s = OnlineSelector::new(
            OnlineConfig { entry_budget: 10, max_candidates: 8, ..OnlineConfig::default() },
            gens(),
        );
        for i in 0..5 {
            s.observe(&query(&format!("04560{i}")));
        }
        s.step(&mut m, &mut replica).unwrap();
        assert_eq!(s.managed_count(), 1);
        for i in 0..40 {
            s.observe(&query(&format!("{:06}", i * 137)));
        }
        assert!(s.candidate_count() <= 31, "got {}", s.candidate_count());
        assert!(
            s.candidates.contains_key("(serialNumber=0456*) base=\"\" scope=subtree")
                || s.managed.keys().all(|k| s.candidates.contains_key(k)),
            "stored filters survive pruning"
        );
    }

    #[test]
    fn moves_histogram_is_recorded() {
        let obs = Obs::new();
        let mut m = master();
        let mut replica = FilterReplica::new(0);
        let mut s = OnlineSelector::new(
            OnlineConfig { entry_budget: 10, ..OnlineConfig::default() },
            gens(),
        )
        .with_obs(obs.clone());
        for i in 0..5 {
            s.observe(&query(&format!("04560{i}")));
        }
        s.step(&mut m, &mut replica).unwrap();
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counters["fbdr_selection_online_steps_total"], 1);
        assert_eq!(snap.counters["fbdr_selection_online_promotions_total"], 1);
        assert!(obs.registry().histogram("fbdr_selection_revolve_moves").count() >= 1);
    }
}
