//! Filter generalization rules (§6.1).
//!
//! User queries return too few entries to be efficient replication units;
//! generalized forms of them describe frequently accessed *regions*. The
//! paper's two guidelines are implemented as composable rules:
//!
//! 1. generalization based on attribute components — e.g.
//!    `(telephoneNumber=261-758xx)` → `(telephoneNumber=261-758*)`
//!    ([`ValuePrefix`]);
//! 2. generalization based on the natural hierarchy of filters — e.g.
//!    `(&(div=X)(dept=D))` → `(&(div=X)(dept=*))` ([`WidenToPresence`]),
//!    or mapping every `(location=L)` query to the whole location region
//!    ([`ConstantRegion`]).

use fbdr_ldap::{AttrName, Comparison, Filter, Predicate, SearchRequest, SubstringPattern};

/// A rule mapping a user query to zero or more generalized queries that
/// contain it.
pub trait Generalizer: std::fmt::Debug {
    /// Candidate generalized queries for `q` (empty when the rule does not
    /// apply).
    fn generalize(&self, q: &SearchRequest) -> Vec<SearchRequest>;
}

/// Generalizes equality predicates on one attribute to value prefixes:
/// `(serialNumber=045612)` → `(serialNumber=0456*)`.
///
/// One candidate per configured prefix length (shorter prefixes are
/// coarser regions with more entries).
#[derive(Debug, Clone)]
pub struct ValuePrefix {
    attr: AttrName,
    lens: Vec<usize>,
}

impl ValuePrefix {
    /// Creates the rule for `attr` with the given prefix lengths.
    pub fn new(attr: impl Into<AttrName>, lens: Vec<usize>) -> Self {
        ValuePrefix { attr: attr.into(), lens }
    }
}

impl Generalizer for ValuePrefix {
    fn generalize(&self, q: &SearchRequest) -> Vec<SearchRequest> {
        let mut out = Vec::new();
        for len in &self.lens {
            if let Some(f) = map_predicates(q.filter(), &mut |p| {
                if p.attr() == &self.attr {
                    if let Comparison::Eq(v) = p.comparison() {
                        let norm = v.normalized();
                        if norm.chars().count() > *len && *len > 0 {
                            let prefix: String = norm.chars().take(*len).collect();
                            return Some(Predicate::substring(
                                p.attr().clone(),
                                SubstringPattern::prefix(prefix),
                            ));
                        }
                    }
                }
                None
            }) {
                out.push(SearchRequest::with_attrs(
                    q.base().clone(),
                    q.scope(),
                    f,
                    q.attrs().clone(),
                ));
            }
        }
        out
    }
}

/// Widens the predicate on one attribute to a presence test, keeping the
/// rest of the query: `(&(div=X)(dept=D))` → `(&(div=X)(dept=*))` — the
/// "all departments of a division" region.
#[derive(Debug, Clone)]
pub struct WidenToPresence {
    attr: AttrName,
}

impl WidenToPresence {
    /// Creates the rule for `attr`.
    pub fn new(attr: impl Into<AttrName>) -> Self {
        WidenToPresence { attr: attr.into() }
    }
}

impl Generalizer for WidenToPresence {
    fn generalize(&self, q: &SearchRequest) -> Vec<SearchRequest> {
        match map_predicates(q.filter(), &mut |p| {
            if p.attr() == &self.attr && !matches!(p.comparison(), Comparison::Present) {
                Some(Predicate::present(p.attr().clone()))
            } else {
                None
            }
        }) {
            Some(f) => vec![SearchRequest::with_attrs(
                q.base().clone(),
                q.scope(),
                f,
                q.attrs().clone(),
            )],
            None => Vec::new(),
        }
    }
}

/// Maps every query whose filter mentions a trigger attribute to one fixed
/// region query — e.g. every `(location=L)` query to the whole location
/// tree (§7.2(c): the location tree is small and hot, so it is replicated
/// entirely).
#[derive(Debug, Clone)]
pub struct ConstantRegion {
    trigger: AttrName,
    region: SearchRequest,
}

impl ConstantRegion {
    /// Creates the rule: queries mentioning `trigger` generalize to
    /// `region`.
    pub fn new(trigger: impl Into<AttrName>, region: SearchRequest) -> Self {
        ConstantRegion { trigger: trigger.into(), region }
    }
}

impl Generalizer for ConstantRegion {
    fn generalize(&self, q: &SearchRequest) -> Vec<SearchRequest> {
        if q.filter().attr_names().iter().any(|a| **a == self.trigger) {
            vec![self.region.clone()]
        } else {
            Vec::new()
        }
    }
}

/// The identity "generalization": the user query itself becomes a
/// candidate replication unit. Useful where result sets are already
/// region-sized (e.g. one department's entries) and finer-grained
/// selection than [`WidenToPresence`] is wanted.
#[derive(Debug, Clone, Default)]
pub struct Identity;

impl Identity {
    /// Creates the rule.
    pub fn new() -> Self {
        Identity
    }
}

impl Generalizer for Identity {
    fn generalize(&self, q: &SearchRequest) -> Vec<SearchRequest> {
        vec![q.clone()]
    }
}

/// Rewrites predicates through `f`, returning `Some(filter)` only when at
/// least one predicate was rewritten (otherwise the rule does not apply).
fn map_predicates(
    filter: &Filter,
    f: &mut impl FnMut(&Predicate) -> Option<Predicate>,
) -> Option<Filter> {
    let mut changed = false;
    let out = walk(filter, f, &mut changed);
    changed.then_some(out)
}

fn walk(
    filter: &Filter,
    f: &mut impl FnMut(&Predicate) -> Option<Predicate>,
    changed: &mut bool,
) -> Filter {
    match filter {
        Filter::And(fs) => Filter::And(fs.iter().map(|s| walk(s, f, changed)).collect()),
        Filter::Or(fs) => Filter::Or(fs.iter().map(|s| walk(s, f, changed)).collect()),
        Filter::Not(s) => Filter::Not(Box::new(walk(s, f, changed))),
        Filter::Pred(p) => match f(p) {
            Some(np) => {
                *changed = true;
                Filter::Pred(np)
            }
            None => Filter::Pred(p.clone()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbdr_containment::query_contained;
    use fbdr_ldap::Scope;

    fn root_query(f: &str) -> SearchRequest {
        SearchRequest::from_root(Filter::parse(f).unwrap())
    }

    #[test]
    fn prefix_generalization() {
        let rule = ValuePrefix::new("serialNumber", vec![4, 3]);
        let q = root_query("(serialNumber=045612)");
        let gens = rule.generalize(&q);
        assert_eq!(gens.len(), 2);
        assert_eq!(gens[0].filter().to_string(), "(serialNumber=0456*)");
        assert_eq!(gens[1].filter().to_string(), "(serialNumber=045*)");
        // Every generalization contains the original query.
        for g in &gens {
            assert!(query_contained(&q, g), "{} should contain {}", g.filter(), q.filter());
        }
    }

    #[test]
    fn prefix_rule_skips_short_values_and_other_attrs() {
        let rule = ValuePrefix::new("serialNumber", vec![4]);
        assert!(rule.generalize(&root_query("(serialNumber=045)")).is_empty());
        assert!(rule.generalize(&root_query("(mail=a@b.c)")).is_empty());
        // Substring queries are not re-generalized.
        assert!(rule.generalize(&root_query("(serialNumber=0456*)")).is_empty());
    }

    #[test]
    fn widen_to_presence() {
        let rule = WidenToPresence::new("dept");
        let q = root_query("(&(dept=2406)(div=software))");
        let gens = rule.generalize(&q);
        assert_eq!(gens.len(), 1);
        assert_eq!(gens[0].filter().to_string(), "(&(dept=*)(div=software))");
        assert!(query_contained(&q, &gens[0]));
        assert!(rule.generalize(&root_query("(div=software)")).is_empty());
    }

    #[test]
    fn constant_region() {
        let region = SearchRequest::new(
            "ou=locations,o=xyz".parse().unwrap(),
            Scope::Subtree,
            Filter::match_all(),
        );
        let rule = ConstantRegion::new("location", region.clone());
        let q = root_query("(location=bangalore)");
        let gens = rule.generalize(&q);
        assert_eq!(gens.len(), 1);
        assert_eq!(gens[0], region);
        assert!(rule.generalize(&root_query("(sn=doe)")).is_empty());
    }

    #[test]
    fn paper_telephone_example() {
        let rule = ValuePrefix::new("telephoneNumber", vec![7]);
        let q = root_query("(telephoneNumber=261-7580)");
        let gens = rule.generalize(&q);
        assert_eq!(gens[0].filter().to_string(), "(telephoneNumber=261-758*)");
    }
}
