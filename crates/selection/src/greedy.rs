//! The greedy benefit/size selection core shared by every selector.
//!
//! [`FilterSelector`](crate::FilterSelector) runs it over the whole
//! candidate table at each periodic revolution;
//! [`OnlineSelector`](crate::OnlineSelector) runs it over the bounded
//! *consideration set* of each budgeted step. Keeping the ranking, the
//! tie-breaks and the containment skip in one place is what makes the
//! online ≡ batch equivalence property checkable at all.

use fbdr_containment::{ContainmentEngine, PreparedQuery};
use fbdr_ldap::SearchRequest;

/// One candidate entering greedy selection, already scored.
///
/// `ratio` is benefit (possibly net of update cost) divided by size;
/// `key` is the candidate's canonical spelling ([`candidate_key`]), used
/// both as identity and as the final deterministic tie-break.
#[derive(Debug, Clone)]
pub(crate) struct Scored {
    /// Canonical identity ([`candidate_key`] of `request`).
    pub key: String,
    /// The candidate filter.
    pub request: SearchRequest,
    /// Benefit-to-size ratio (higher is better).
    pub ratio: f64,
    /// Estimated entries the filter matches at the master.
    pub size: usize,
}

/// Greedy benefit/size pick within `budget` entries.
///
/// Candidates are ranked best ratio first; on ties the *larger* (coarser)
/// filter wins — so contained duplicates of equal value are the ones
/// skipped — then the shorter spelling, then lexicographic key, making
/// selection fully deterministic. A candidate that does not fit the
/// remaining budget is skipped (not a stopping point: a smaller candidate
/// further down may still fit), and a candidate semantically contained in
/// an already-picked filter is skipped — its entries (and hits) are
/// already covered, so picking it would double-count budget for zero
/// extra coverage. (The paper notes its size estimates ignore overlap;
/// full overlap is the cheap, detectable case.)
///
/// Callers pre-filter zero-benefit, zero-size and over-budget candidates.
/// Returns the picked candidates in pick (rank) order.
pub(crate) fn greedy_pick(mut scored: Vec<Scored>, budget: usize) -> Vec<Scored> {
    scored.sort_by(|a, b| {
        b.ratio
            .partial_cmp(&a.ratio)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.size.cmp(&a.size))
            .then_with(|| a.key.len().cmp(&b.key.len()))
            .then_with(|| a.key.cmp(&b.key))
    });
    let engine = ContainmentEngine::new();
    let mut picked_queries: Vec<PreparedQuery> = Vec::new();
    let mut used = 0usize;
    let mut out = Vec::new();
    for s in scored {
        if used + s.size > budget {
            continue;
        }
        let prepared = PreparedQuery::new(s.request.clone());
        if picked_queries.iter().any(|p| engine.query_contained(&prepared, p)) {
            continue; // fully covered by an already-selected filter
        }
        used += s.size;
        picked_queries.push(prepared);
        out.push(s);
    }
    out
}

/// Canonical identity of a candidate query — its `Display` form.
pub(crate) fn candidate_key(r: &SearchRequest) -> String {
    format!("{r}")
}
