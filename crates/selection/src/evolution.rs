//! The evolution/revolution baseline of Kapitskaia, Ng and Srivastava
//! (\[12\] in the paper).
//!
//! Their cache maintains two lists — *actual* (stored) and *candidate*
//! filters — and updates benefits on **every** user query. An *evolution*
//! may move filters in and out of the stored list immediately; when the
//! candidates' total benefit exceeds the actuals' by a threshold, a
//! *revolution* recomputes the stored set from the merged lists.
//!
//! The paper argues (§6.2) that per-query evolutions cause frequent
//! updates to the stored filter list and are therefore unsuitable for a
//! replication scenario, where every install costs a content transfer.
//! [`EvolutionSelector`] exists to quantify that churn against
//! [`FilterSelector`](crate::FilterSelector)'s periodic updates.

use crate::generalize::Generalizer;
use fbdr_ldap::SearchRequest;
use fbdr_replica::FilterReplica;
use fbdr_resync::{SyncError, SyncMaster, SyncTraffic};
use std::collections::HashMap;

/// Churn and traffic accounting for an evolution-based run.
#[derive(Debug, Clone, Copy, Default)]
pub struct EvolutionReport {
    /// Filters installed (each costs a content load).
    pub installs: u64,
    /// Filters evicted.
    pub evictions: u64,
    /// Revolutions triggered.
    pub revolutions: u64,
    /// Total content-load traffic.
    pub traffic: SyncTraffic,
}

#[derive(Debug, Clone)]
struct Scored {
    request: SearchRequest,
    benefit: f64,
    size: Option<usize>,
}

/// Simplified evolution/revolution cache manager in the style of \[12\].
#[derive(Debug)]
pub struct EvolutionSelector {
    generalizers: Vec<Box<dyn Generalizer + Send>>,
    /// Benefit-decay factor per query (recency weighting).
    decay: f64,
    /// Revolution trigger: candidates' benefit > actuals' benefit × (1+θ).
    threshold: f64,
    entry_budget: usize,
    actual: HashMap<String, Scored>,
    candidate: HashMap<String, Scored>,
    report: EvolutionReport,
}

impl EvolutionSelector {
    /// Creates the selector. `decay` ∈ (0,1]; `threshold` θ ≥ 0.
    pub fn new(
        generalizers: Vec<Box<dyn Generalizer + Send>>,
        entry_budget: usize,
        decay: f64,
        threshold: f64,
    ) -> Self {
        EvolutionSelector {
            generalizers,
            decay,
            threshold,
            entry_budget,
            actual: HashMap::new(),
            candidate: HashMap::new(),
            report: EvolutionReport::default(),
        }
    }

    /// Accumulated churn/traffic report.
    pub fn report(&self) -> EvolutionReport {
        self.report
    }

    /// Processes one query: update benefits of both lists, evolve (swap a
    /// candidate in for the weakest actual if it now scores higher), and
    /// revolve when the candidate list collectively overtakes the actuals.
    ///
    /// # Errors
    ///
    /// Propagates [`SyncError`] from content loads at the master.
    pub fn observe(
        &mut self,
        query: &SearchRequest,
        master: &mut SyncMaster,
        replica: &mut FilterReplica,
    ) -> Result<(), SyncError> {
        // Decay all benefits.
        for s in self.actual.values_mut().chain(self.candidate.values_mut()) {
            s.benefit *= self.decay;
        }
        // Credit generalizations of this query.
        for g in &self.generalizers {
            for cand in g.generalize(query) {
                let k = key(&cand);
                if let Some(s) = self.actual.get_mut(&k) {
                    s.benefit += 1.0;
                } else {
                    let s = self
                        .candidate
                        .entry(k)
                        .or_insert(Scored { request: cand, benefit: 0.0, size: None });
                    s.benefit += 1.0;
                }
            }
        }
        self.evolve(master, replica)?;
        if self.revolution_trigger() {
            self.revolve(master, replica)?;
        }
        Ok(())
    }

    /// Evolution step: the best candidate replaces the worst actual when
    /// its benefit/size ratio is higher.
    fn evolve(&mut self, master: &mut SyncMaster, replica: &mut FilterReplica) -> Result<(), SyncError> {
        let Some((best_key, best_ratio)) = self.best_candidate(master) else {
            return Ok(());
        };
        let worst = self
            .actual
            .iter()
            .map(|(k, s)| (k.clone(), ratio(s)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let evict = match &worst {
            Some((_, worst_ratio)) if self.over_budget(master) || best_ratio > *worst_ratio => worst.clone(),
            None => None,
            _ => return Ok(()),
        };
        // Install the candidate.
        let mut cand = self.candidate.remove(&best_key).expect("best candidate exists");
        let size = *cand
            .size
            .get_or_insert_with(|| master.dit().count_matching(cand.request.filter()));
        if size == 0 || size > self.entry_budget {
            return Ok(()); // useless or oversized; dropped from candidates
        }
        if let Some((k, _)) = evict {
            if self.actual.len() > 1 || ratio(&cand) > 0.0 {
                if let Some(old) = self.actual.remove(&k) {
                    replica.remove_filter(master, &old.request);
                    self.report.evictions += 1;
                    self.candidate.insert(k, old);
                }
            }
        }
        let t = replica.install_filter(master, cand.request.clone())?;
        self.report.installs += 1;
        self.report.traffic.absorb(&t);
        self.actual.insert(key(&cand.request), cand);
        Ok(())
    }

    fn best_candidate(&mut self, master: &SyncMaster) -> Option<(String, f64)> {
        let budget = self.entry_budget;
        self.candidate
            .iter_mut()
            .filter_map(|(k, s)| {
                if s.benefit <= 0.0 {
                    return None;
                }
                let size =
                    *s.size.get_or_insert_with(|| master.dit().count_matching(s.request.filter()));
                if size == 0 || size > budget {
                    return None;
                }
                Some((k.clone(), s.benefit / size as f64))
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    fn over_budget(&self, master: &SyncMaster) -> bool {
        let used: usize = self
            .actual
            .values()
            .map(|s| s.size.unwrap_or(0))
            .sum();
        let _ = master;
        used > self.entry_budget
    }

    fn revolution_trigger(&self) -> bool {
        let actual: f64 = self.actual.values().map(|s| s.benefit).sum();
        let cand: f64 = self.candidate.values().map(|s| s.benefit).sum();
        !self.actual.is_empty() && cand > actual * (1.0 + self.threshold)
    }

    /// Revolution: merge both lists and keep the best benefit/size set
    /// within budget.
    fn revolve(&mut self, master: &mut SyncMaster, replica: &mut FilterReplica) -> Result<(), SyncError> {
        self.report.revolutions += 1;
        let mut merged: Vec<Scored> = self.actual.values().cloned().collect();
        merged.extend(self.candidate.values().cloned());
        for s in &mut merged {
            if s.size.is_none() {
                s.size = Some(master.dit().count_matching(s.request.filter()));
            }
        }
        merged.retain(|s| {
            let sz = s.size.expect("size computed");
            sz > 0 && sz <= self.entry_budget && s.benefit > 0.0
        });
        merged.sort_by(|a, b| {
            ratio(b).partial_cmp(&ratio(a)).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut used = 0usize;
        let mut selected: HashMap<String, Scored> = HashMap::new();
        for s in merged {
            let sz = s.size.expect("size computed");
            if used + sz <= self.entry_budget {
                used += sz;
                selected.insert(key(&s.request), s);
            }
        }
        // Apply the diff.
        let old_keys: Vec<String> = self.actual.keys().cloned().collect();
        for k in old_keys {
            if !selected.contains_key(&k) {
                let old = self.actual.remove(&k).expect("key from actual");
                replica.remove_filter(master, &old.request);
                self.report.evictions += 1;
                self.candidate.insert(k, old);
            }
        }
        for (k, s) in selected {
            if !self.actual.contains_key(&k) {
                let t = replica.install_filter(master, s.request.clone())?;
                self.report.installs += 1;
                self.report.traffic.absorb(&t);
                self.candidate.remove(&k);
                self.actual.insert(k, s);
            }
        }
        Ok(())
    }
}

fn ratio(s: &Scored) -> f64 {
    match s.size {
        Some(sz) if sz > 0 => s.benefit / sz as f64,
        _ => 0.0,
    }
}

fn key(r: &SearchRequest) -> String {
    format!("{r}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generalize::ValuePrefix;
    use fbdr_ldap::{Entry, Filter};

    fn master() -> SyncMaster {
        let mut m = SyncMaster::new();
        m.dit_mut().add_suffix("o=xyz".parse().unwrap());
        m.dit_mut().add(Entry::new("o=xyz".parse().unwrap())).unwrap();
        for i in 0..10 {
            for (pre, tag) in [("0456", "a"), ("1200", "b")] {
                m.dit_mut()
                    .add(
                        Entry::new(format!("cn={tag}{i},o=xyz").parse().unwrap())
                            .with("objectclass", "person")
                            .with("serialNumber", &format!("{pre}0{i}")),
                    )
                    .unwrap();
            }
        }
        m
    }

    fn query(sn: &str) -> SearchRequest {
        SearchRequest::from_root(Filter::parse(&format!("(serialNumber={sn})")).unwrap())
    }

    fn selector(budget: usize) -> EvolutionSelector {
        EvolutionSelector::new(
            vec![Box::new(ValuePrefix::new("serialNumber", vec![4]))],
            budget,
            0.95,
            0.5,
        )
    }

    #[test]
    fn installs_popular_region() {
        let mut m = master();
        let mut replica = FilterReplica::new(0);
        let mut s = selector(10);
        for i in 0..5 {
            s.observe(&query(&format!("04560{i}")), &mut m, &mut replica).unwrap();
        }
        assert!(replica.filter_count() >= 1);
        assert!(replica.try_answer(&query("045609")).is_some());
        assert!(s.report().installs >= 1);
    }

    #[test]
    fn churns_more_than_periodic_selection() {
        // Alternating access pattern: evolutions keep swapping the two
        // regions in and out — the churn the paper warns about.
        let mut m = master();
        let mut replica = FilterReplica::new(0);
        let mut s = selector(10); // budget fits only one region
        for round in 0..20 {
            let pre = if round % 2 == 0 { "0456" } else { "1200" };
            for i in 0..3 {
                s.observe(&query(&format!("{pre}0{i}")), &mut m, &mut replica).unwrap();
            }
        }
        let rep = s.report();
        assert!(
            rep.installs >= 4,
            "expected churn from alternating pattern, got {} installs",
            rep.installs
        );
        assert!(rep.traffic.full_entries >= 4 * 10);
    }

    #[test]
    fn respects_budget() {
        let mut m = master();
        let mut replica = FilterReplica::new(0);
        let mut s = selector(10);
        for i in 0..5 {
            s.observe(&query(&format!("04560{i}")), &mut m, &mut replica).unwrap();
            s.observe(&query(&format!("12000{i}")), &mut m, &mut replica).unwrap();
        }
        // Only one 10-entry region fits the 10-entry budget.
        assert!(replica.filter_count() <= 1, "got {}", replica.filter_count());
        assert!(replica.entry_count() <= 10);
    }
}
